"""Sliding-window synopses and window operators.

Covers three Table 1 rows and a Section 2 technique:
"Basic Counting" (DGIM), "Significant One Counting" (Lee–Ting), sliding
window statistics (exponential histograms), plus the tumbling / sliding /
session window managers used by the streaming platform.
"""

from repro.windowing.decay import DecayedCounter, DecayedFrequencies
from repro.windowing.dgim import DGIM
from repro.windowing.extrema import SlidingExtrema
from repro.windowing.exponential_histogram import EHSum, EHVariance
from repro.windowing.significant_one import SignificantOneCounter
from repro.windowing.windows import (
    SessionWindow,
    SlidingTimeWindow,
    TumblingWindow,
    Window,
    windowed,
)

__all__ = [
    "SlidingExtrema",
    "DGIM",
    "DecayedCounter",
    "DecayedFrequencies",
    "EHSum",
    "EHVariance",
    "SessionWindow",
    "SignificantOneCounter",
    "SlidingTimeWindow",
    "TumblingWindow",
    "Window",
    "windowed",
]
