"""Sliding-window minimum / maximum in amortised O(1) per element.

The monotonic-deque technique: retain only elements that could still
become the window extremum (a decreasing sequence for max). Each element
enters and leaves the deque at most once, so updates are amortised O(1)
and memory is at most the window size but typically far smaller — one of
the "maintaining statistics over sliding windows" primitives Section 2
groups with variance and correlated aggregates.
"""

from __future__ import annotations

from collections import deque

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class SlidingExtrema(SynopsisBase):
    """Sliding-window min and max over the last *window* elements."""

    def __init__(self, window: int):
        if window <= 0:
            raise ParameterError("window must be positive")
        self.window = window
        self.count = 0
        # Deques of (position, value); maxima decreasing, minima increasing.
        self._max: deque[tuple[int, float]] = deque()
        self._min: deque[tuple[int, float]] = deque()

    def update(self, item: float) -> None:
        value = float(item)
        pos = self.count
        self.count += 1
        cutoff = pos - self.window
        while self._max and self._max[0][0] <= cutoff:
            self._max.popleft()
        while self._min and self._min[0][0] <= cutoff:
            self._min.popleft()
        while self._max and self._max[-1][1] <= value:
            self._max.pop()
        self._max.append((pos, value))
        while self._min and self._min[-1][1] >= value:
            self._min.pop()
        self._min.append((pos, value))

    def max(self) -> float:
        """Maximum of the last *window* elements."""
        if not self._max:
            raise ParameterError("extrema of an empty window")
        return self._max[0][1]

    def min(self) -> float:
        """Minimum of the last *window* elements."""
        if not self._min:
            raise ParameterError("extrema of an empty window")
        return self._min[0][1]

    def range(self) -> float:
        """max - min over the window."""
        return self.max() - self.min()

    @property
    def retained(self) -> int:
        """Elements currently held across both deques (memory gauge)."""
        return len(self._max) + len(self._min)

    def _merge_key(self) -> tuple:
        return (self.window,)

    def _merge_into(self, other: "SlidingExtrema") -> None:
        raise NotImplementedError("sliding windows are position-bound; not mergeable")
