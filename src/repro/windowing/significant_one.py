"""Significant-one counting over sliding windows [Lee & Ting, SODA 2006].

Table 1's last row: estimate the number *m* of 1-bits in the last *n* bits
such that the answer is epsilon-accurate **whenever m >= theta * n** — a
weaker guarantee than DGIM's, bought with less memory. Since only counts
above ``theta * n`` matter, absolute error ``epsilon * theta * n`` suffices,
so it is enough to track 1-positions at granularity
``b = max(1, floor(epsilon * theta * n / 2))``: a queue of "blocks", each
recording where its ``b``-th one completed. Memory is ``O(1/(epsilon *
theta))`` block records versus DGIM's ``O((1/epsilon) log^2 n)`` — the
trade-off the paper's Table 1 cites for traffic accounting.
"""

from __future__ import annotations

from collections import deque

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class SignificantOneCounter(SynopsisBase):
    """(epsilon, theta)-approximate count of 1s in the last *window* bits."""

    def __init__(self, window: int, theta: float = 0.1, epsilon: float = 0.1):
        if window <= 0:
            raise ParameterError("window must be positive")
        if not 0 < theta < 1:
            raise ParameterError("theta must lie in (0, 1)")
        if not 0 < epsilon <= 1:
            raise ParameterError("epsilon must lie in (0, 1]")
        self.window = window
        self.theta = theta
        self.epsilon = epsilon
        self.block_size = max(1, int(epsilon * theta * window / 2.0))
        self.count = 0
        self._partial = 0  # ones in the currently filling block
        # Completed blocks: timestamp at which the block's last one arrived.
        self._blocks: deque[int] = deque()

    def update(self, item: int | bool) -> None:
        """Shift in one bit (truthy = 1)."""
        self.count += 1
        cutoff = self.count - self.window
        while self._blocks and self._blocks[0] <= cutoff:
            self._blocks.popleft()
        if item:
            self._partial += 1
            if self._partial == self.block_size:
                self._blocks.append(self.count)
                self._partial = 0

    def estimate(self) -> int:
        """Estimated 1-count; epsilon-accurate whenever the true count
        is at least ``theta * window``."""
        # The oldest surviving block may be partially expired: discount half.
        full = len(self._blocks) * self.block_size
        if self._blocks:
            full -= self.block_size // 2
        return full + self._partial

    def is_significant(self) -> bool:
        """True when the estimate clears the significance bar theta*window."""
        return self.estimate() >= self.theta * self.window

    @property
    def n_blocks(self) -> int:
        """Retained block records (space gauge, O(1/(epsilon*theta)))."""
        return len(self._blocks)

    def _merge_key(self) -> tuple:
        return (self.window, self.theta, self.epsilon)

    def _merge_into(self, other: "SignificantOneCounter") -> None:
        raise NotImplementedError("position-bound; count per partition instead")
