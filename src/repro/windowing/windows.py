"""Window managers: tumbling, sliding and session windows.

These are the time-window operators Section 2 lists among "common streaming
operators". They consume ``(timestamp, item)`` pairs and emit completed
windows; the platform's window bolt delegates to them, and they are usable
standalone over any iterable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.common.exceptions import ParameterError


@dataclass(frozen=True)
class Window:
    """A completed window: half-open span ``[start, end)`` and its items."""

    start: float
    end: float
    items: tuple = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.items)


class TumblingWindow:
    """Fixed-size, non-overlapping time windows.

    ``add(ts, item)`` returns the list of windows that *closed* as a result
    (empty windows between sparse events are skipped). Call ``flush()`` at
    end of stream for the final partial window.
    """

    def __init__(self, size: float):
        if size <= 0:
            raise ParameterError("window size must be positive")
        self.size = size
        self._start: float | None = None
        self._items: list[Any] = []

    def add(self, timestamp: float, item: Any) -> list[Window]:
        """Record *item* at *timestamp*; returns windows that closed."""
        closed: list[Window] = []
        if self._start is None:
            self._start = (timestamp // self.size) * self.size
        while timestamp >= self._start + self.size:
            closed.append(Window(self._start, self._start + self.size, tuple(self._items)))
            self._items = []
            self._start += self.size
            if not closed[-1].items and timestamp >= self._start + self.size:
                # Jump over a run of empty windows in one step.
                self._start = (timestamp // self.size) * self.size
                break
        self._items.append(item)
        return [w for w in closed if w.items]

    def flush(self) -> list[Window]:
        """Close and return the current partial window (if non-empty)."""
        if self._start is None or not self._items:
            return []
        window = Window(self._start, self._start + self.size, tuple(self._items))
        self._items = []
        self._start = None
        return [window]


class SlidingTimeWindow:
    """Overlapping windows of *size* advancing by *step*.

    Emits a window each time the watermark crosses a step boundary; an item
    may appear in up to ``size/step`` windows.
    """

    def __init__(self, size: float, step: float):
        if size <= 0 or step <= 0:
            raise ParameterError("size and step must be positive")
        if step > size:
            raise ParameterError("step must not exceed size")
        self.size = size
        self.step = step
        self._buffer: list[tuple[float, Any]] = []
        self._next_emit: float | None = None

    def add(self, timestamp: float, item: Any) -> list[Window]:
        """Record *item* at *timestamp*; returns windows that closed."""
        closed: list[Window] = []
        if self._next_emit is None:
            self._next_emit = (timestamp // self.step) * self.step + self.step
        while timestamp >= self._next_emit:
            end = self._next_emit
            start = end - self.size
            items = tuple(it for ts, it in self._buffer if start <= ts < end)
            if items:
                closed.append(Window(start, end, items))
            self._next_emit += self.step
            self._buffer = [(ts, it) for ts, it in self._buffer if ts >= self._next_emit - self.size]
        self._buffer.append((timestamp, item))
        return closed


class SessionWindow:
    """Gap-based session windows: a session closes after *gap* of inactivity."""

    def __init__(self, gap: float):
        if gap <= 0:
            raise ParameterError("gap must be positive")
        self.gap = gap
        self._items: list[Any] = []
        self._start: float | None = None
        self._last: float | None = None

    def add(self, timestamp: float, item: Any) -> list[Window]:
        """Record *item* at *timestamp*; returns sessions that closed."""
        closed: list[Window] = []
        if self._last is not None and timestamp - self._last > self.gap:
            closed.append(Window(self._start, self._last, tuple(self._items)))
            self._items = []
            self._start = None
        if self._start is None:
            self._start = timestamp
        self._items.append(item)
        self._last = timestamp
        return closed

    def flush(self) -> list[Window]:
        """Close and return the in-progress session (if any)."""
        if not self._items:
            return []
        window = Window(self._start, self._last, tuple(self._items))
        self._items = []
        self._start = self._last = None
        return [window]


def windowed(
    events: Iterable[tuple[float, Any]],
    manager: TumblingWindow | SlidingTimeWindow | SessionWindow,
) -> Iterator[Window]:
    """Drive *manager* over ``(timestamp, item)`` events, yielding windows."""
    for timestamp, item in events:
        yield from manager.add(timestamp, item)
    flush: Callable[[], list[Window]] | None = getattr(manager, "flush", None)
    if flush is not None:
        yield from flush()
