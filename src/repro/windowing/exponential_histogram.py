"""Exponential histograms for sliding-window sums and variance.

Generalises DGIM from bits to bounded non-negative integers (sum) and to
variance, following [Datar et al. 2002] and [Babcock, Datar, Motwani &
O'Callaghan 2003] ("maintaining variance and k-medians over data stream
windows"). Buckets hold aggregates; capacities double with age; at most
``k_per_size`` buckets of each capacity are kept. The straddling oldest
bucket contributes half its aggregate, bounding relative error.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


@dataclass
class _VarBucket:
    end_ts: int
    n: int
    mean: float
    m2: float  # sum of squared deviations from the bucket mean


class EHSum(SynopsisBase):
    """Sliding-window sum of non-negative integers within relative error."""

    def __init__(self, window: int, epsilon: float = 0.1, max_value: int = 1 << 16):
        if window <= 0:
            raise ParameterError("window must be positive")
        if not 0 < epsilon <= 1:
            raise ParameterError("epsilon must lie in (0, 1]")
        if max_value <= 0:
            raise ParameterError("max_value must be positive")
        self.window = window
        self.epsilon = epsilon
        self.max_value = max_value
        self.k_per_size = max(2, int(1.0 / epsilon) + 1)
        self.count = 0
        self._buckets: deque[tuple[int, int]] = deque()  # (end_ts, sum), newest first

    def update(self, item: int) -> None:
        value = int(item)
        if not 0 <= value <= self.max_value:
            raise ParameterError(f"value {value} outside [0, {self.max_value}]")
        self.count += 1
        while self._buckets and self._buckets[-1][0] <= self.count - self.window:
            self._buckets.pop()
        if value == 0:
            return
        # Decompose the value into power-of-two buckets (Datar et al. treat
        # a value v as v simultaneous unit arrivals; its binary expansion
        # yields the same canonical bucket set in O(log v) pieces).
        bit = 1
        while value:
            if value & bit:
                self._buckets.appendleft((self.count, bit))
                value ^= bit
            bit <<= 1
        self._cascade()

    def _cascade(self) -> None:
        """Merge the two oldest buckets of any size class exceeding its quota.

        All bucket sums are powers of two, so merging two same-class buckets
        produces exactly the next class, as in DGIM.
        """
        buckets = list(self._buckets)  # newest first
        changed = True
        while changed:
            changed = False
            by_class: dict[int, list[int]] = {}
            for idx, (__, s) in enumerate(buckets):
                by_class.setdefault(s.bit_length(), []).append(idx)
            for indices in by_class.values():
                if len(indices) > self.k_per_size:
                    # Oldest two are the largest indices (newest-first order).
                    old_i, old_j = indices[-1], indices[-2]  # old_i > old_j
                    merged = (buckets[old_j][0], buckets[old_i][1] + buckets[old_j][1])
                    del buckets[old_i]
                    buckets[old_j] = merged
                    changed = True
                    break
        self._buckets = deque(buckets)

    def estimate(self) -> float:
        """Estimated sum of the last *window* values."""
        total = 0
        oldest = 0
        cutoff = self.count - self.window
        for end_ts, s in self._buckets:
            if end_ts > cutoff:
                total += s
                oldest = s
        return total - oldest / 2.0 if oldest else 0.0

    @property
    def n_buckets(self) -> int:
        """Retained buckets (space gauge)."""
        return len(self._buckets)

    def _merge_key(self) -> tuple:
        return (self.window, self.epsilon, self.max_value)

    def _merge_into(self, other: "EHSum") -> None:
        raise NotImplementedError("position-bound; sum per partition instead")


class EHVariance(SynopsisBase):
    """Sliding-window variance via exponential-histogram buckets.

    Buckets carry ``(n, mean, M2)`` and combine with Chan's parallel
    variance formula; bucket counts double with age as in EHSum. The
    straddling bucket is included whole, so the estimate is over a window of
    size between ``window`` and ``window + oldest_bucket_n`` — the classic
    EH boundary slack, bounded by epsilon relative error on n.
    """

    def __init__(self, window: int, epsilon: float = 0.1):
        if window <= 0:
            raise ParameterError("window must be positive")
        if not 0 < epsilon <= 1:
            raise ParameterError("epsilon must lie in (0, 1]")
        self.window = window
        self.epsilon = epsilon
        self.k_per_size = max(2, int(1.0 / epsilon) + 1)
        self.count = 0
        self._buckets: deque[_VarBucket] = deque()  # newest first

    def update(self, item: float) -> None:
        value = float(item)
        self.count += 1
        while self._buckets and self._buckets[-1].end_ts <= self.count - self.window:
            self._buckets.pop()
        self._buckets.appendleft(_VarBucket(self.count, 1, value, 0.0))
        self._cascade()

    @staticmethod
    def _combine(a: _VarBucket, b: _VarBucket) -> _VarBucket:
        n = a.n + b.n
        delta = b.mean - a.mean
        mean = a.mean + delta * b.n / n
        m2 = a.m2 + b.m2 + delta * delta * a.n * b.n / n
        return _VarBucket(max(a.end_ts, b.end_ts), n, mean, m2)

    def _cascade(self) -> None:
        buckets = list(self._buckets)
        i = 0
        while i < len(buckets):
            cls = buckets[i].n.bit_length()
            j = i
            while j < len(buckets) and buckets[j].n.bit_length() == cls:
                j += 1
            if j - i > self.k_per_size:
                merged = self._combine(buckets[j - 1], buckets[j - 2])
                merged.end_ts = buckets[j - 2].end_ts
                buckets[j - 2 : j] = [merged]
            else:
                i = j
        self._buckets = deque(buckets)

    def _live(self) -> _VarBucket | None:
        cutoff = self.count - self.window
        acc: _VarBucket | None = None
        for bucket in self._buckets:
            if bucket.end_ts > cutoff:
                acc = bucket if acc is None else self._combine(acc, bucket)
        return acc

    def estimate_variance(self) -> float:
        """Estimated population variance over the last *window* values."""
        acc = self._live()
        if acc is None or acc.n == 0:
            return 0.0
        return acc.m2 / acc.n

    def estimate_mean(self) -> float:
        """Estimated mean over the last *window* values."""
        acc = self._live()
        return 0.0 if acc is None else acc.mean

    @property
    def n_buckets(self) -> int:
        """Retained buckets (space gauge)."""
        return len(self._buckets)

    def _merge_key(self) -> tuple:
        return (self.window, self.epsilon)

    def _merge_into(self, other: "EHVariance") -> None:
        raise NotImplementedError("position-bound; aggregate per partition instead")
