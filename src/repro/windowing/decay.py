"""Exponentially decayed counters — smooth alternatives to hard windows.

Where sliding windows forget abruptly, decayed counters age out smoothly:
a count recorded ``dt`` ago contributes ``2^(-dt/half_life)``. Updates are
O(1) by keeping the value normalised to the last update time.
"""

from __future__ import annotations

import math
from typing import Any, Hashable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class DecayedCounter(SynopsisBase):
    """A single exponentially decayed count."""

    def __init__(self, half_life: float):
        if half_life <= 0:
            raise ParameterError("half_life must be positive")
        self.half_life = half_life
        self.count = 0
        self._value = 0.0
        self._as_of = 0.0

    def update(self, item: Any = 1.0) -> None:
        self.add(float(item), self._as_of)

    def add(self, amount: float, timestamp: float) -> None:
        """Add *amount* at *timestamp* (timestamps must not go backwards)."""
        if timestamp < self._as_of:
            raise ParameterError("timestamps must be non-decreasing")
        self._value = self.value_at(timestamp) + amount
        self._as_of = timestamp
        self.count += 1

    def value_at(self, timestamp: float) -> float:
        """The decayed value as of *timestamp*."""
        if timestamp < self._as_of:
            raise ParameterError("cannot query the past")
        dt = timestamp - self._as_of
        return self._value * math.pow(2.0, -dt / self.half_life)

    def _merge_key(self) -> tuple:
        return (self.half_life,)

    def _merge_into(self, other: "DecayedCounter") -> None:
        now = max(self._as_of, other._as_of)
        self._value = self.value_at(now) + other.value_at(now)
        self._as_of = now
        self.count += other.count


class DecayedFrequencies(SynopsisBase):
    """Per-key decayed counts with lazy normalisation (trending scores)."""

    def __init__(self, half_life: float, max_keys: int = 100_000):
        if half_life <= 0:
            raise ParameterError("half_life must be positive")
        if max_keys <= 0:
            raise ParameterError("max_keys must be positive")
        self.half_life = half_life
        self.max_keys = max_keys
        self.count = 0
        self._values: dict[Hashable, float] = {}
        self._as_of: dict[Hashable, float] = {}
        self._now = 0.0

    def add(self, key: Hashable, timestamp: float, amount: float = 1.0) -> None:
        """Record *amount* for *key* at *timestamp*."""
        if timestamp < self._now:
            raise ParameterError("timestamps must be non-decreasing")
        self._now = timestamp
        self.count += 1
        self._values[key] = self.value(key, timestamp) + amount
        self._as_of[key] = timestamp
        if len(self._values) > self.max_keys:
            self._evict()

    def update(self, item: Hashable) -> None:
        self.add(item, self._now)

    def value(self, key: Hashable, timestamp: float | None = None) -> float:
        """Decayed score of *key* as of *timestamp* (default: latest)."""
        timestamp = self._now if timestamp is None else timestamp
        base = self._values.get(key)
        if base is None:
            return 0.0
        dt = timestamp - self._as_of[key]
        return base * math.pow(2.0, -dt / self.half_life)

    def top(self, n: int) -> list[tuple[Hashable, float]]:
        """The *n* keys with the highest current decayed scores."""
        scored = [(key, self.value(key)) for key in self._values]
        scored.sort(key=lambda kv: -kv[1])
        return scored[:n]

    def _evict(self) -> None:
        """Drop the weakest half of the keys (amortised bound on memory)."""
        scored = sorted(self._values, key=lambda k: self.value(k))
        for key in scored[: len(scored) // 2]:
            del self._values[key]
            del self._as_of[key]

    def _merge_key(self) -> tuple:
        return (self.half_life, self.max_keys)

    def _merge_into(self, other: "DecayedFrequencies") -> None:
        now = max(self._now, other._now)
        for key in other._values:
            mine = self.value(key, now)
            theirs = other.value(key, now)
            self._values[key] = mine + theirs
            self._as_of[key] = now
        self._now = now
        self.count += other.count
