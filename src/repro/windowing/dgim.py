"""DGIM basic counting over sliding windows.

[Datar, Gionis, Indyk & Motwani, SICOMP 2002] — Table 1's "Basic Counting"
row: estimate the number of 1-bits among the last *n* stream bits within
relative error epsilon, using O((1/epsilon) log^2 n) bits.

The structure keeps buckets of exponentially growing sizes (each bucket
covers a run of the window containing ``size`` ones); at most
``ceil(1/epsilon) + 1`` buckets of each size are allowed, and overflow
merges the two oldest of a size into one of double size. The estimate sums
complete buckets plus half of the straddling oldest bucket.
"""

from __future__ import annotations

from collections import deque

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class DGIM(SynopsisBase):
    """Count of 1s in the last *window* bits, within ``epsilon`` relative error."""

    def __init__(self, window: int, epsilon: float = 0.5):
        if window <= 0:
            raise ParameterError("window must be positive")
        if not 0 < epsilon <= 1:
            raise ParameterError("epsilon must lie in (0, 1]")
        self.window = window
        self.epsilon = epsilon
        self.max_per_size = max(2, int(1.0 / epsilon) + 1)
        self.count = 0  # stream position (timestamp)
        # Buckets as (end_timestamp, size), newest first.
        self._buckets: deque[tuple[int, int]] = deque()

    def update(self, item: int | bool) -> None:
        """Shift in one bit (truthy = 1)."""
        self.count += 1
        # Expire the oldest bucket if it fell fully out of the window.
        if self._buckets and self._buckets[-1][0] <= self.count - self.window:
            self._buckets.pop()
        if not item:
            return
        self._buckets.appendleft((self.count, 1))
        self._cascade()

    def _cascade(self) -> None:
        """Merge oldest same-size pairs while any size overflows."""
        buckets = list(self._buckets)
        i = 0
        while i < len(buckets):
            size = buckets[i][1]
            # Find the run of buckets with this size (they are contiguous).
            j = i
            while j < len(buckets) and buckets[j][1] == size:
                j += 1
            if j - i > self.max_per_size:
                # Merge the two *oldest* (largest index) of this size.
                older = buckets[j - 1]
                newer = buckets[j - 2]
                merged = (newer[0], size * 2)
                buckets[j - 2 : j] = [merged]
            else:
                i = j
        self._buckets = deque(buckets)

    def estimate(self) -> int:
        """Estimated number of 1s in the last *window* bits."""
        total = 0
        oldest_size = 0
        cutoff = self.count - self.window
        for end_ts, size in self._buckets:
            if end_ts > cutoff:
                total += size
                oldest_size = size
        if oldest_size:
            total -= oldest_size // 2  # half the straddling bucket
        return total

    @property
    def n_buckets(self) -> int:
        """Retained buckets (space gauge, O((1/eps) log(eps * window)))."""
        return len(self._buckets)

    def _merge_key(self) -> tuple:
        return (self.window, self.epsilon)

    def _merge_into(self, other: "DGIM") -> None:
        raise NotImplementedError(
            "DGIM buckets are bound to stream positions; count per partition "
            "and add the estimates instead"
        )
