"""XOR acker — Storm's constant-space tuple-tree tracking.

Every tuple tree rooted at a spout message keeps one 64-bit "ack val": the
XOR of every anchored tuple id and every acked tuple id. Emitting XORs an
id in; acking XORs it out; the tree is complete exactly when the value
returns to zero (ids are unique, so partial trees cannot cancel). This is
how Storm tracks millions of in-flight tuples in O(1) memory per root
(Section 3's at-least-once machinery).
"""

from __future__ import annotations

from repro.common.exceptions import ExecutionError


class Acker:
    """Tracks completion of tuple trees by XOR of tuple ids."""

    def __init__(self):
        self._pending: dict[int, int] = {}  # msg_id -> xor value
        self._age: dict[int, int] = {}  # msg_id -> logical time registered
        self.completed: list[int] = []
        self.failed: list[int] = []
        self._clock = 0

    def register(self, msg_id: int, root_tuple_id: int) -> None:
        """Start tracking the tree rooted at *msg_id*."""
        if msg_id in self._pending:
            raise ExecutionError(f"message {msg_id} already tracked")
        self._clock += 1
        self._pending[msg_id] = root_tuple_id
        self._age[msg_id] = self._clock

    def anchor(self, msg_id: int, tuple_id: int) -> None:
        """A new tuple joined the tree (emitted downstream)."""
        if msg_id in self._pending:
            self._pending[msg_id] ^= tuple_id

    def ack(self, msg_id: int, tuple_id: int) -> bool:
        """A tuple finished processing; True if the whole tree completed."""
        if msg_id not in self._pending:
            return False
        self._pending[msg_id] ^= tuple_id
        if self._pending[msg_id] == 0:
            del self._pending[msg_id]
            del self._age[msg_id]
            self.completed.append(msg_id)
            return True
        return False

    def fail(self, msg_id: int) -> None:
        """Abort tracking of *msg_id* (tuple lost or processing error)."""
        if msg_id in self._pending:
            del self._pending[msg_id]
            del self._age[msg_id]
            self.failed.append(msg_id)

    def timed_out(self, max_age: int) -> list[int]:
        """Messages older than *max_age* registrations ago (to be failed)."""
        cutoff = self._clock - max_age
        return [m for m, age in self._age.items() if age <= cutoff]

    @property
    def n_pending(self) -> int:
        return len(self._pending)
