"""Samza-style log-backed stream applications.

Table 2 / Section 3: Samza applications are single computational tasks
wired together *through Kafka* — every intermediate stream is persisted,
which buys durability and restartability "at the cost of increased
latency". This module reproduces that architecture over
:class:`~repro.platform.log.InMemoryLog`:

* a :class:`LoggedStage` consumes one input log from its *committed*
  offset and appends to an output log;
* progress (offset + task state [+ pending output]) commits atomically
  every ``commit_interval`` records;
* :meth:`LoggedStage.crash` discards everything since the last commit —
  restart resumes exactly there.

Two delivery modes, mirroring Kafka without/with transactions:

* ``transactional=False`` — outputs append immediately (lower latency);
  a crash replays uncommitted inputs, so downstream may see duplicates
  (at-least-once).
* ``transactional=True`` — outputs buffer and append atomically *with*
  the commit, so downstream sees each input's outputs exactly once.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Any

from repro.common.exceptions import ParameterError
from repro.platform.log import InMemoryLog


class LoggedTask(ABC):
    """User logic of one stage: record in, zero or more records out."""

    @abstractmethod
    def process(self, record: Any) -> list[Any]:
        """Transform one record into output records."""

    def snapshot(self) -> Any:
        """Checkpointable state (deep-copied at commit). Default stateless."""
        return None

    def restore(self, state: Any) -> None:
        """Restore from a checkpoint. Default stateless."""


class LoggedStage:
    """One Samza-style task instance bound to an input and output log."""

    def __init__(
        self,
        name: str,
        task: LoggedTask,
        input_log: InMemoryLog,
        output_log: InMemoryLog | None = None,
        commit_interval: int = 100,
        transactional: bool = False,
    ):
        if commit_interval <= 0:
            raise ParameterError("commit_interval must be positive")
        self.name = name
        self.task = task
        self.input_log = input_log
        self.output_log = output_log
        self.commit_interval = commit_interval
        self.transactional = transactional
        self.processed = 0
        self.commits = 0
        self.restarts = 0
        # Durable store: last committed (offset, task state).
        self._committed_offset = 0
        self._committed_state = copy.deepcopy(task.snapshot())
        # Volatile position/state since last commit.
        self._offset = 0
        self._pending_outputs: list[Any] = []

    def run(self, max_records: int | None = None) -> int:
        """Process up to *max_records* available records; returns how many."""
        done = 0
        while self._offset < self.input_log.end_offset:
            if max_records is not None and done >= max_records:
                break
            record = self.input_log.read(self._offset)
            outputs = self.task.process(record)
            self._offset += 1
            self.processed += 1
            done += 1
            if self.output_log is not None:
                if self.transactional:
                    self._pending_outputs.extend(outputs)
                else:
                    self.output_log.append_many(outputs)
            if (self._offset - self._committed_offset) >= self.commit_interval:
                self.commit()
        return done

    def commit(self) -> None:
        """Atomically persist offset + state (+ buffered output)."""
        if self.transactional and self.output_log is not None:
            self.output_log.append_many(self._pending_outputs)
        self._pending_outputs = []
        self._committed_offset = self._offset
        self._committed_state = copy.deepcopy(self.task.snapshot())
        self.commits += 1

    def crash(self) -> None:
        """Simulate task failure: lose all progress since the last commit."""
        self.restarts += 1
        self._offset = self._committed_offset
        self._pending_outputs = []
        self.task.restore(copy.deepcopy(self._committed_state))

    @property
    def lag(self) -> int:
        """Input records not yet processed."""
        return self.input_log.end_offset - self._offset

    @property
    def uncommitted(self) -> int:
        """Processed records not yet committed (lost on crash)."""
        return self._offset - self._committed_offset


class SamzaPipeline:
    """A chain of logged stages; each pair communicates through a log."""

    def __init__(self):
        self.stages: list[LoggedStage] = []

    def add_stage(
        self,
        name: str,
        task: LoggedTask,
        input_log: InMemoryLog,
        output_log: InMemoryLog | None = None,
        **kwargs,
    ) -> LoggedStage:
        """Append a stage; returns it for later inspection/crashing."""
        stage = LoggedStage(name, task, input_log, output_log, **kwargs)
        self.stages.append(stage)
        return stage

    def run_until_quiescent(self, batch: int = 200, max_rounds: int = 10_000) -> None:
        """Round-robin the stages until nothing progresses even after a
        commit round (transactional commits release buffered output that
        downstream stages still need to consume)."""
        for __ in range(max_rounds):
            progressed = sum(stage.run(max_records=batch) for stage in self.stages)
            if progressed == 0:
                for stage in self.stages:
                    stage.commit()
                progressed = sum(stage.run(max_records=batch) for stage in self.stages)
                if progressed == 0:
                    return
        raise ParameterError("pipeline did not quiesce (cycle in logs?)")
