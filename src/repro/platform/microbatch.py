"""Spark-Streaming-style micro-batch execution (discretized streams).

Table 2 / Section 3 on Spark: "Spark Streaming provides a high-level
abstraction called discretized stream or DStream ... internally
represented as a sequence of RDDs". The model's defining properties,
reproduced here:

* the stream is chopped into *batch intervals*; operators run per batch
  over materialised collections (not per tuple);
* failure recovery is **recompute-from-lineage**: each output batch is a
  pure function of source batches, so a lost batch is simply rebuilt —
  exactly-once without an acker;
* the price is latency: a record waits up to one batch interval before
  any operator sees it (the shape bench T2.4 measures against the
  tuple-at-a-time executor).

Stateful operators (``reduce_by_key`` with ``stateful=True``) carry state
between batches via checkpointed snapshots, like Spark's
``updateStateByKey``.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Hashable, Iterable

from repro.common.exceptions import ExecutionError, ParameterError


class DStream:
    """A discretized stream: a lazy per-batch transformation pipeline.

    Build with :meth:`MicroBatchContext.source`, chain transformations,
    then :meth:`MicroBatchContext.run` executes batch by batch. Each
    transformation is pure per batch (state is explicit), which is what
    makes lineage recomputation valid.
    """

    def __init__(self, context: "MicroBatchContext", parent: "DStream | None", op):
        self._context = context
        self._parent = parent
        self._op = op  # (batch_index, records, state) -> (records, state)
        self._state: Any = None
        self._collected: list[list] = []
        context._register(self)

    # -- transformations ---------------------------------------------------

    def _derive(self, op) -> "DStream":
        return DStream(self._context, self, op)

    def map(self, fn: Callable[[Any], Any]) -> "DStream":
        """Apply *fn* to every record."""
        return self._derive(lambda i, recs, st: ([fn(r) for r in recs], st))

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "DStream":
        """Expand every record to zero or more records."""
        return self._derive(
            lambda i, recs, st: ([out for r in recs for out in fn(r)], st)
        )

    def filter(self, predicate: Callable[[Any], bool]) -> "DStream":
        """Keep records satisfying *predicate*."""
        return self._derive(lambda i, recs, st: ([r for r in recs if predicate(r)], st))

    def reduce_by_key(
        self,
        reducer: Callable[[Any, Any], Any],
        key_fn: Callable[[Any], Hashable] = None,
        value_fn: Callable[[Any], Any] = None,
        stateful: bool = False,
    ) -> "DStream":
        """Per-batch keyed reduction; ``stateful=True`` carries the keyed
        accumulator across batches (updateStateByKey). Emits (key, value)
        pairs each batch."""
        key_fn = key_fn or (lambda r: r[0])
        value_fn = value_fn or (lambda r: r[1])

        def op(i, recs, state):
            acc: dict = dict(state) if (stateful and state) else {}
            for r in recs:
                k, v = key_fn(r), value_fn(r)
                acc[k] = reducer(acc[k], v) if k in acc else v
            out = list(acc.items())
            return out, (dict(acc) if stateful else None)

        return self._derive(op)

    def sketch(
        self,
        factory: Callable[[], Any],
        extract: Callable[[Any], Any] | None = None,
    ) -> "DStream":
        """Feed every batch into a synopsis via ``update_many``.

        This is the discretized-stream shape of synopsis ingest: operators
        see whole materialised batches, so the synopsis takes one vectorized
        ``update_many`` call per batch interval instead of one Python-level
        ``update`` per record — state is identical, ingest is far faster.
        The live synopsis is the stream's state (checkpoint snapshots
        deep-copy it, so lineage recovery rebuilds it exactly); it is also
        emitted downstream once per batch, and exposed via
        :meth:`last_synopsis` after a run.
        """

        def op(i, recs, state):
            synopsis = state if state is not None else factory()
            synopsis.update_many(
                [extract(r) for r in recs] if extract else list(recs)
            )
            return [synopsis], synopsis

        return self._derive(op)

    def last_synopsis(self) -> Any:
        """The operator state after :meth:`MicroBatchContext.run` — for
        :meth:`sketch` streams this is the fully-updated synopsis."""
        return self._state

    def window(self, n_batches: int) -> "DStream":
        """Sliding window over the last *n_batches* batches' records."""
        if n_batches <= 0:
            raise ParameterError("n_batches must be positive")

        def op(i, recs, state):
            history: list[list] = list(state) if state else []
            history.append(list(recs))
            history = history[-n_batches:]
            return [r for batch in history for r in batch], history

        return self._derive(op)

    # -- execution plumbing ------------------------------------------------

    def _compute(self, batch_index: int, upstream: list) -> list:
        out, self._state = self._op(batch_index, upstream, self._state)
        return out

    def collect(self) -> "DStream":
        """Mark this stream for collection; results via :meth:`batches`."""
        self._context._collected.append(self)
        return self

    def batches(self) -> list[list]:
        """The collected per-batch outputs (after run)."""
        return [list(b) for b in self._collected]

    def results(self) -> list:
        """All collected records flattened across batches."""
        return [r for batch in self._collected for r in batch]


class MicroBatchContext:
    """Drives DStream pipelines batch by batch with lineage recovery."""

    def __init__(self, batch_size: int = 100, checkpoint_every: int = 5):
        if batch_size <= 0:
            raise ParameterError("batch_size must be positive")
        if checkpoint_every <= 0:
            raise ParameterError("checkpoint_every must be positive")
        self.batch_size = batch_size
        self.checkpoint_every = checkpoint_every
        self.batches_run = 0
        self.recomputations = 0
        self._streams: list[DStream] = []
        self._collected: list[DStream] = []
        self._source_records: list | None = None
        self._source_stream: DStream | None = None
        self._checkpoint: tuple[int, list] | None = None  # (batch idx, states)

    def _register(self, stream: DStream) -> None:
        self._streams.append(stream)

    def source(self, records: list) -> DStream:
        """The root DStream over a replayable record list."""
        if self._source_stream is not None:
            raise ParameterError("this context already has a source")
        self._source_records = list(records)
        self._source_stream = DStream(self, None, lambda i, recs, st: (recs, st))
        return self._source_stream

    def _source_batch(self, index: int) -> list:
        lo = index * self.batch_size
        return self._source_records[lo : lo + self.batch_size]

    @property
    def n_batches(self) -> int:
        if self._source_records is None:
            return 0
        return (len(self._source_records) + self.batch_size - 1) // self.batch_size

    def _run_batch(self, index: int, record_output: bool) -> None:
        # Topological order == registration order (parents register first).
        outputs: dict[int, list] = {}
        for stream in self._streams:
            upstream = (
                self._source_batch(index)
                if stream._parent is None
                else outputs[id(stream._parent)]
            )
            out = stream._compute(index, upstream)
            outputs[id(stream)] = out
            if record_output and stream in self._collected:
                stream._collected.append(out)

    def _take_checkpoint(self, index: int) -> None:
        states = [copy.deepcopy(s._state) for s in self._streams]
        self._checkpoint = (index, states)

    def _recover(self, failed_index: int, record_output: bool = False) -> None:
        """Lineage recovery: restore the last checkpoint and recompute the
        batches between it and the failure."""
        self.recomputations += 1
        if self._checkpoint is None:
            start = 0
            for stream in self._streams:
                stream._state = None
        else:
            start, states = self._checkpoint
            start += 1
            for stream, state in zip(self._streams, states):
                stream._state = copy.deepcopy(state)
        for index in range(start, failed_index + 1):
            self._run_batch(index, record_output=False)

    def run(self, fail_at: int | None = None) -> None:
        """Execute every batch; ``fail_at`` simulates losing that batch's
        results mid-run (recovered by recomputation)."""
        if self._source_stream is None:
            raise ExecutionError("no source attached")
        for index in range(self.n_batches):
            if fail_at is not None and index == fail_at:
                # Worker crash: all in-memory operator state is lost.
                for stream in self._streams:
                    stream._state = None
                # Lineage recovery: restore the checkpoint and recompute
                # the intervening batches, then continue normally.
                self._recover(index - 1)
                fail_at = None
            self._run_batch(index, record_output=True)
            self.batches_run += 1
            if (index + 1) % self.checkpoint_every == 0:
                self._take_checkpoint(index)
