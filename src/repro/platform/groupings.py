"""Stream groupings: how tuples are routed between component instances.

Storm's grouping vocabulary (Section 3): *shuffle* balances load,
*fields* sends equal keys to the same task (required by stateful
aggregations), *global* funnels everything to one task, *all* broadcasts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.common.exceptions import ParameterError
from repro.common.hashing import hash64
from repro.common.rng import make_rng
from repro.platform.tuples import StreamTuple


class Grouping(ABC):
    """Chooses destination task indices for each tuple."""

    @abstractmethod
    def targets(self, tup: StreamTuple, n_tasks: int) -> list[int]:
        """Task indices (in ``range(n_tasks)``) that receive *tup*."""

    def targets_batch(self, payloads: list[tuple], n_tasks: int) -> list[list[int]]:
        """Target lists for a whole batch of raw payload tuples.

        Must be *exactly* equivalent to calling :meth:`targets` once per
        payload in order (stateful groupings advance their state the same
        way), so batched and per-tuple feeds route identically. The
        default adapts per-payload; hash groupings override with a
        cached/vectorized path.
        """
        return [self.targets(_PayloadView(p), n_tasks) for p in payloads]

    def route_batch(
        self, payloads: list[tuple], n_tasks: int
    ) -> tuple[list[list[int]], list[int | None] | None]:
        """Batched routing plus the hashed keys that drove it.

        Returns ``(targets, khashes)`` where ``targets`` is exactly
        :meth:`targets_batch` and ``khashes`` is a parallel list of
        ``hash64(key)`` values for key-partitioned groupings (``None``
        for groupings with no key hash). The shm transport ships the
        hashes as a ``uint64`` column so downstream consumers (elastic
        rescaling, key-range diagnostics) never re-hash.
        """
        return self.targets_batch(payloads, n_tasks), None


class _PayloadView:
    """Minimal stand-in exposing ``.values`` for batch routing (groupings
    only ever read the payload values)."""

    __slots__ = ("values",)

    def __init__(self, values: tuple):
        self.values = values


class ShuffleGrouping(Grouping):
    """Round-robin load balancing (deterministic given the seed)."""

    def __init__(self, seed: int = 0):
        self._rng = make_rng(seed)

    def targets(self, tup: StreamTuple, n_tasks: int) -> list[int]:
        return [self._rng.randrange(n_tasks)]


class FieldsGrouping(Grouping):
    """Hash-partition on a subset of value positions (key affinity)."""

    def __init__(self, *indices: int):
        if not indices:
            raise ParameterError("fields grouping needs at least one field index")
        self.indices = indices

    def targets(self, tup: StreamTuple, n_tasks: int) -> list[int]:
        key = tuple(tup.values[i] for i in self.indices)
        return [hash64(key) % n_tasks]

    def targets_batch(self, payloads: list[tuple], n_tasks: int) -> list[list[int]]:
        """Batched routing with key-level caching.

        Computes exactly ``hash64(key) % n_tasks`` per payload — identical
        to :meth:`targets` — but hashes each distinct key once per batch,
        which on skewed (Zipf) workloads collapses most of the hashing
        work. Stateless, so caching cannot change the routing.
        """
        indices = self.indices
        cache: dict[tuple, list[int]] = {}
        out: list[list[int]] = []
        for payload in payloads:
            key = tuple(payload[i] for i in indices)
            route = cache.get(key)
            if route is None:
                route = [hash64(key) % n_tasks]
                cache[key] = route
            out.append(route)
        return out

    def route_batch(
        self, payloads: list[tuple], n_tasks: int
    ) -> tuple[list[list[int]], list[int | None] | None]:
        """Batched routing that also surfaces the key hashes.

        Same key-level cache as :meth:`targets_batch`; the cache maps a
        key to its ``(route, hash64(key))`` pair so each distinct key is
        hashed exactly once per batch.
        """
        indices = self.indices
        cache: dict[tuple, tuple[list[int], int]] = {}
        targets: list[list[int]] = []
        khashes: list[int | None] = []
        for payload in payloads:
            key = tuple(payload[i] for i in indices)
            hit = cache.get(key)
            if hit is None:
                h = hash64(key)
                hit = ([h % n_tasks], h)
                cache[key] = hit
            targets.append(hit[0])
            khashes.append(hit[1])
        return targets, khashes


class GlobalGrouping(Grouping):
    """Everything to task 0 (global aggregation point)."""

    def targets(self, tup: StreamTuple, n_tasks: int) -> list[int]:
        return [0]

    def targets_batch(self, payloads: list[tuple], n_tasks: int) -> list[list[int]]:
        route = [0]
        return [route] * len(payloads)


class AllGrouping(Grouping):
    """Broadcast to every task (e.g. config/update distribution)."""

    def targets(self, tup: StreamTuple, n_tasks: int) -> list[int]:
        return list(range(n_tasks))

    def targets_batch(self, payloads: list[tuple], n_tasks: int) -> list[list[int]]:
        route = list(range(n_tasks))
        return [route] * len(payloads)
