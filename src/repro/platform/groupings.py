"""Stream groupings: how tuples are routed between component instances.

Storm's grouping vocabulary (Section 3): *shuffle* balances load,
*fields* sends equal keys to the same task (required by stateful
aggregations), *global* funnels everything to one task, *all* broadcasts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.common.exceptions import ParameterError
from repro.common.hashing import hash64
from repro.common.rng import make_rng
from repro.platform.tuples import StreamTuple


class Grouping(ABC):
    """Chooses destination task indices for each tuple."""

    @abstractmethod
    def targets(self, tup: StreamTuple, n_tasks: int) -> list[int]:
        """Task indices (in ``range(n_tasks)``) that receive *tup*."""


class ShuffleGrouping(Grouping):
    """Round-robin load balancing (deterministic given the seed)."""

    def __init__(self, seed: int = 0):
        self._rng = make_rng(seed)

    def targets(self, tup: StreamTuple, n_tasks: int) -> list[int]:
        return [self._rng.randrange(n_tasks)]


class FieldsGrouping(Grouping):
    """Hash-partition on a subset of value positions (key affinity)."""

    def __init__(self, *indices: int):
        if not indices:
            raise ParameterError("fields grouping needs at least one field index")
        self.indices = indices

    def targets(self, tup: StreamTuple, n_tasks: int) -> list[int]:
        key = tuple(tup.values[i] for i in self.indices)
        return [hash64(key) % n_tasks]


class GlobalGrouping(Grouping):
    """Everything to task 0 (global aggregation point)."""

    def targets(self, tup: StreamTuple, n_tasks: int) -> list[int]:
        return [0]


class AllGrouping(Grouping):
    """Broadcast to every task (e.g. config/update distribution)."""

    def targets(self, tup: StreamTuple, n_tasks: int) -> list[int]:
        return list(range(n_tasks))
