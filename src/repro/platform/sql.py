"""A Pulsar-style streaming SQL interface.

Table 2 highlights eBay's Pulsar for letting "non-technical business
folks" express real-time analytics as SQL instead of topology code. This
module provides that surface over the library: a small SQL dialect is
compiled into synopsis-backed incremental operators.

Grammar (case-insensitive keywords)::

    SELECT <item> [, <item> ...]
    FROM stream
    [WHERE <column> <op> <literal> [AND ...]]        op: = != < <= > >=
    [GROUP BY <column>]
    [WINDOW TUMBLING <seconds>]                      requires a 'timestamp' field

Select items: a plain column (must be the GROUP BY column), or one of
``COUNT(*)``, ``SUM(col)``, ``AVG(col)``, ``MIN(col)``, ``MAX(col)``,
``APPROX_DISTINCT(col)``, ``APPROX_QUANTILE(col, q)``,
``APPROX_TOPK(col, k)``.

Usage::

    q = StreamingQuery("SELECT page, COUNT(*), APPROX_DISTINCT(user) "
                       "FROM stream GROUP BY page")
    for record in events:          # records are dicts
        q.update(record)
    q.results()                    # -> list of result rows (dicts)
"""

from __future__ import annotations

import re
from typing import Any, Callable

from repro.common.exceptions import ParameterError
from repro.cardinality.hyperloglog import HyperLogLog
from repro.frequency.space_saving import SpaceSaving
from repro.quantiles.tdigest import TDigest

_AGG_RE = re.compile(
    r"^(?P<fn>COUNT|SUM|AVG|MIN|MAX|APPROX_DISTINCT|APPROX_QUANTILE|APPROX_TOPK)"
    r"\(\s*(?P<args>[^)]*)\s*\)$",
    re.IGNORECASE,
)
_WHERE_RE = re.compile(
    r"^(?P<col>\w+)\s*(?P<op>!=|>=|<=|=|<|>)\s*(?P<lit>.+)$"
)

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _parse_literal(text: str) -> Any:
    text = text.strip()
    if text.startswith("'") and text.endswith("'"):
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ParameterError(f"cannot parse literal {text!r}")


class _Aggregate:
    """One aggregate column: state factory + update + finalize."""

    def __init__(self, fn: str, args: str, seed: int):
        self.fn = fn.upper()
        parts = [a.strip() for a in args.split(",")] if args.strip() else []
        self.label = f"{self.fn}({args.strip()})" if args.strip() else f"{self.fn}(*)"
        self.column = None
        self.param = None
        if self.fn == "COUNT":
            if parts not in ([], ["*"]):
                raise ParameterError("COUNT takes only '*'")
        elif self.fn in ("SUM", "AVG", "MIN", "MAX", "APPROX_DISTINCT"):
            if len(parts) != 1:
                raise ParameterError(f"{self.fn} takes exactly one column")
            self.column = parts[0]
        elif self.fn in ("APPROX_QUANTILE", "APPROX_TOPK"):
            if len(parts) != 2:
                raise ParameterError(f"{self.fn} takes (column, parameter)")
            self.column = parts[0]
            self.param = float(parts[1])
            if self.fn == "APPROX_QUANTILE" and not 0 <= self.param <= 1:
                raise ParameterError("quantile must lie in [0, 1]")
            if self.fn == "APPROX_TOPK" and self.param < 1:
                raise ParameterError("top-k count must be >= 1")
        else:  # pragma: no cover - regex restricts fn
            raise ParameterError(f"unknown aggregate {self.fn}")
        self._seed = seed

    def new_state(self) -> Any:
        if self.fn == "COUNT":
            return 0
        if self.fn == "SUM":
            return 0.0
        if self.fn == "AVG":
            return [0.0, 0]
        if self.fn in ("MIN", "MAX"):
            return None
        if self.fn == "APPROX_DISTINCT":
            return HyperLogLog(precision=12, seed=self._seed)
        if self.fn == "APPROX_QUANTILE":
            return TDigest(delta=100)
        return SpaceSaving(k=max(64, int(self.param) * 8))  # APPROX_TOPK

    def update(self, state: Any, record: dict) -> Any:
        if self.fn == "COUNT":
            return state + 1
        value = record.get(self.column)
        if value is None:
            raise ParameterError(f"record missing column {self.column!r}")
        if self.fn == "SUM":
            return state + value
        if self.fn == "AVG":
            state[0] += value
            state[1] += 1
            return state
        if self.fn == "MIN":
            return value if state is None else min(state, value)
        if self.fn == "MAX":
            return value if state is None else max(state, value)
        state.update(value)
        return state

    def finalize(self, state: Any) -> Any:
        if self.fn == "AVG":
            return state[0] / state[1] if state[1] else 0.0
        if self.fn == "APPROX_DISTINCT":
            return round(state.estimate())
        if self.fn == "APPROX_QUANTILE":
            return state.quantile(self.param)
        if self.fn == "APPROX_TOPK":
            return state.top(int(self.param))
        return state


class StreamingQuery:
    """A compiled streaming SQL query; feed records, read results."""

    def __init__(self, sql: str, seed: int = 0):
        self.sql = sql
        self._seed = seed
        self._parse(sql)
        # group key -> [aggregate states]
        self._groups: dict[Any, list[Any]] = {}
        self._window_start: float | None = None
        self._closed_windows: list[dict] = []

    # -- parsing -------------------------------------------------------------

    def _parse(self, sql: str) -> None:
        text = " ".join(sql.strip().rstrip(";").split())
        pattern = re.compile(
            r"^SELECT\s+(?P<select>.+?)\s+FROM\s+stream"
            r"(?:\s+WHERE\s+(?P<where>.+?))?"
            r"(?:\s+GROUP\s+BY\s+(?P<group>\w+))?"
            r"(?:\s+WINDOW\s+TUMBLING\s+(?P<window>[\d.]+))?$",
            re.IGNORECASE,
        )
        match = pattern.match(text)
        if not match:
            raise ParameterError(f"cannot parse query: {sql!r}")
        self.group_by = match.group("group")
        self.window = float(match.group("window")) if match.group("window") else None
        if self.window is not None and self.window <= 0:
            raise ParameterError("window length must be positive")

        self._filters: list[tuple[str, Callable, Any]] = []
        if match.group("where"):
            for clause in re.split(r"\s+AND\s+", match.group("where"), flags=re.IGNORECASE):
                cond = _WHERE_RE.match(clause.strip())
                if not cond:
                    raise ParameterError(f"cannot parse WHERE clause {clause!r}")
                self._filters.append(
                    (cond.group("col"), _OPS[cond.group("op")], _parse_literal(cond.group("lit")))
                )

        self.aggregates: list[_Aggregate] = []
        self.select_columns: list[str] = []
        for item in self._split_select(match.group("select")):
            agg = _AGG_RE.match(item)
            if agg:
                self.aggregates.append(
                    _Aggregate(agg.group("fn"), agg.group("args"), self._seed)
                )
            else:
                if not re.fullmatch(r"\w+", item):
                    raise ParameterError(f"cannot parse select item {item!r}")
                self.select_columns.append(item)
        if not self.aggregates:
            raise ParameterError("query must contain at least one aggregate")
        for col in self.select_columns:
            if col != self.group_by:
                raise ParameterError(
                    f"plain column {col!r} must be the GROUP BY column"
                )

    @staticmethod
    def _split_select(select: str) -> list[str]:
        items, depth, current = [], 0, []
        for ch in select:
            if ch == "," and depth == 0:
                items.append("".join(current).strip())
                current = []
                continue
            depth += ch == "("
            depth -= ch == ")"
            current.append(ch)
        items.append("".join(current).strip())
        return [i for i in items if i]

    # -- execution -------------------------------------------------------

    def update(self, record: dict) -> None:
        """Feed one record (a dict of column -> value)."""
        if self.window is not None:
            ts = record.get("timestamp")
            if ts is None:
                raise ParameterError("windowed queries need a 'timestamp' field")
            if self._window_start is None:
                self._window_start = (ts // self.window) * self.window
            while ts >= self._window_start + self.window:
                self._close_window()
                self._window_start += self.window
        for col, op, literal in self._filters:
            if col not in record or not op(record[col], literal):
                return
        key = record[self.group_by] if self.group_by else None
        states = self._groups.get(key)
        if states is None:
            states = [agg.new_state() for agg in self.aggregates]
            self._groups[key] = states
        for i, agg in enumerate(self.aggregates):
            states[i] = agg.update(states[i], record)

    def update_many(self, records) -> None:
        """Feed every record in *records* in order."""
        for record in records:
            self.update(record)

    def _rows(self) -> list[dict]:
        rows = []
        for key, states in self._groups.items():
            row: dict[str, Any] = {}
            if self.group_by:
                row[self.group_by] = key
            for agg, state in zip(self.aggregates, states):
                row[agg.label] = agg.finalize(state)
            rows.append(row)
        return rows

    def _close_window(self) -> None:
        if self._groups:
            self._closed_windows.append(
                {
                    "window_start": self._window_start,
                    "window_end": self._window_start + self.window,
                    "rows": self._rows(),
                }
            )
        self._groups = {}

    def results(self) -> list[dict]:
        """Current result rows (unwindowed queries) — callable at any time."""
        if self.window is not None:
            raise ParameterError("windowed queries: use windows() after flush()")
        return self._rows()

    def flush(self) -> None:
        """Close the in-progress window at end of stream."""
        if self.window is not None and self._groups:
            self._close_window()

    def windows(self) -> list[dict]:
        """Closed windows, each with window bounds and result rows."""
        if self.window is None:
            raise ParameterError("not a windowed query; use results()")
        return list(self._closed_windows)


def query(sql: str, records, seed: int = 0) -> list[dict]:
    """One-shot convenience: run *sql* over *records* and return rows."""
    q = StreamingQuery(sql, seed=seed)
    q.update_many(records)
    if q.window is not None:
        q.flush()
        return q.windows()
    return q.results()
