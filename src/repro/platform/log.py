"""In-memory append-only log — the Kafka stand-in.

Samza "uses Kafka to manage the input and output streams" and inherits its
persistence (Section 3); MillWheel checkpoints against BigTable. This log
provides the same contract those substrates provide: durable append,
replay from any offset, and truncation — enough to drive replay-based
at-least-once and checkpoint-based exactly-once delivery in the executor.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.common.exceptions import ParameterError


class InMemoryLog:
    """Append-only record log addressable by offset."""

    def __init__(self):
        self._records: list[Any] = []

    def append(self, record: Any) -> int:
        """Append *record*; returns its offset."""
        self._records.append(record)
        return len(self._records) - 1

    def append_many(self, records) -> None:
        """Append every record in *records* in order."""
        for record in records:
            self.append(record)

    def read(self, offset: int) -> Any:
        """The record at *offset*."""
        if not 0 <= offset < len(self._records):
            raise ParameterError(f"offset {offset} out of range")
        return self._records[offset]

    def read_from(self, offset: int) -> Iterator[tuple[int, Any]]:
        """Iterate ``(offset, record)`` pairs from *offset* to the end."""
        if offset < 0:
            raise ParameterError("offset must be non-negative")
        for i in range(offset, len(self._records)):
            yield i, self._records[i]

    @property
    def end_offset(self) -> int:
        """Offset one past the last record."""
        return len(self._records)

    def __len__(self) -> int:
        return len(self._records)
