"""The tuple model: the unit of data flowing through a topology.

Mirrors Storm's model (Section 3): a tuple carries a payload of named
values, belongs to a stream, and—when reliability is on—an anchor tree
rooted at a spout message id so the acker can track completion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.common.rng import derive_seed

_tuple_counter = itertools.count(1)


def next_tuple_id() -> int:
    """Globally unique, well-scrambled 64-bit tuple id.

    Ids must look random: the acker tracks tuple trees as the XOR of their
    member ids, and sequential ids would make accidental cancellation
    (``id1 ^ id2 == id3``) likely, silently completing incomplete trees.
    Storm uses random 64-bit ids for the same reason; SplitMix64 over a
    counter gives the same collision behaviour deterministically.
    """
    return derive_seed(0x7CB1E5, next(_tuple_counter))


@dataclass
class StreamTuple:
    """One message in flight.

    ``values`` is the payload; ``msg_id`` identifies the *root* spout
    message this tuple descends from (None when reliability is off);
    ``anchors`` are the acker-tracked tuple ids this tuple is anchored to.

    The trailing fields carry the *trace context* for sampled tuples
    (``repro.obs``): ``trace_id`` marks the tuple as traced,
    ``parent_span`` is the span that emitted it, ``attempt`` numbers
    re-emissions of the root message across replay/recovery, and
    ``enqueued_at`` is the perf-counter instant it entered its input
    queue (for queue-wait spans). All default to the untraced state, so
    unsampled tuples pay nothing beyond the defaults.
    """

    values: tuple
    stream: str = "default"
    msg_id: int | None = None
    tuple_id: int = field(default_factory=next_tuple_id)
    anchors: tuple[int, ...] = ()
    timestamp: float = 0.0
    trace_id: int | None = None
    parent_span: int | None = None
    attempt: int = 0
    enqueued_at: float = 0.0

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __len__(self) -> int:
        return len(self.values)
