"""S4-style keyed processing elements (PEs).

Table 2 / Section 3 on S4: "S4 streaming applications are modeled as a
graph with vertices representing computation (processing elements) ...
events are routed to the appropriate nodes according to their key." The
defining trait versus Storm's bolts: a PE instance exists **per key
value**, created lazily on the first event for that key and reclaimed when
idle — the pattern this module reproduces, including S4's lossy
eviction-under-pressure behaviour.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Hashable

from repro.common.exceptions import ParameterError


class ProcessingElement(ABC):
    """User logic bound to a single key value.

    One instance handles every event for its key; per-key state is plain
    instance attributes. ``on_event`` may emit ``(stream, key, value)``
    triples downstream via the supplied callable.
    """

    def __init__(self, key: Hashable):
        self.key = key

    @abstractmethod
    def on_event(self, value: Any, emit: Callable[[str, Hashable, Any], None]) -> None:
        """Handle one event for this PE's key."""

    def on_evict(self) -> None:
        """Called when the container reclaims this PE (flush side state)."""


class PEContainer:
    """An S4 node: lazily instantiates one PE per (prototype, key).

    ``prototype(stream)`` registers a PE class for a stream name. Events
    are dispatched as ``process(stream, key, value)``; unknown streams are
    dropped (S4's best-effort posture). A bounded PE budget evicts the
    least-recently-used instances, which is precisely how S4 sheds state
    under pressure (and why its delivery is at-most-once).
    """

    def __init__(self, max_pes: int = 10_000):
        if max_pes <= 0:
            raise ParameterError("max_pes must be positive")
        self.max_pes = max_pes
        self.events = 0
        self.evictions = 0
        self._prototypes: dict[str, Callable[[Hashable], ProcessingElement]] = {}
        self._instances: dict[tuple[str, Hashable], ProcessingElement] = {}
        self._lru: dict[tuple[str, Hashable], int] = {}
        self._clock = 0
        self._emitted: list[tuple[str, Hashable, Any]] = []

    def prototype(
        self, stream: str, factory: Callable[[Hashable], ProcessingElement]
    ) -> "PEContainer":
        """Register *factory* as the PE prototype for *stream*."""
        if stream in self._prototypes:
            raise ParameterError(f"stream {stream!r} already has a prototype")
        self._prototypes[stream] = factory
        return self

    def process(self, stream: str, key: Hashable, value: Any) -> None:
        """Route one keyed event to its PE (creating it if needed)."""
        self.events += 1
        factory = self._prototypes.get(stream)
        if factory is None:
            return  # S4 drops events with no consumer
        slot = (stream, key)
        pe = self._instances.get(slot)
        if pe is None:
            pe = factory(key)
            self._instances[slot] = pe
            if len(self._instances) > self.max_pes:
                self._evict_lru()
        self._clock += 1
        self._lru[slot] = self._clock
        pe.on_event(value, self._emit)
        # Deliver anything the PE emitted (depth-first, like S4's local path).
        while self._emitted:
            out_stream, out_key, out_value = self._emitted.pop(0)
            self.process(out_stream, out_key, out_value)

    def _emit(self, stream: str, key: Hashable, value: Any) -> None:
        self._emitted.append((stream, key, value))

    def _evict_lru(self) -> None:
        victim = min(self._lru, key=self._lru.get)
        self._instances.pop(victim).on_evict()
        del self._lru[victim]
        self.evictions += 1

    def get_pe(self, stream: str, key: Hashable) -> ProcessingElement | None:
        """The live PE for (stream, key), if instantiated."""
        return self._instances.get((stream, key))

    def pes_for(self, stream: str) -> list[ProcessingElement]:
        """All live PEs of one prototype."""
        return [pe for (s, __), pe in self._instances.items() if s == stream]

    @property
    def n_instances(self) -> int:
        return len(self._instances)
