"""Single-process streaming platform: the Table 2 design space, runnable.

Spouts/bolts/topologies (Storm), XOR acking (Storm at-least-once),
checkpoint/restore (MillWheel/Flink exactly-once), stream groupings,
backpressure, fault injection and metrics.
"""

from repro.platform.ack import Acker
from repro.platform.actors import Actor, ActorRef, ActorSystem, Future
from repro.platform.executor import LocalExecutor
from repro.platform.faults import FaultInjector
from repro.platform.groupings import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    Grouping,
    ShuffleGrouping,
)
from repro.platform.log import InMemoryLog
from repro.platform.metrics import ComponentMetrics, ExecutionMetrics
from repro.platform.operators import (
    CollectorBolt,
    CountBolt,
    FilterBolt,
    FlatMapBolt,
    JoinBolt,
    MapBolt,
    SynopsisBolt,
    TumblingWindowBolt,
)
from repro.platform.delta import (
    DeltaIterationResult,
    bulk_connected_components,
    connected_components,
    delta_iterate,
)
from repro.platform.microbatch import DStream, MicroBatchContext
from repro.platform.photon import IdRegistry, Joined, PhotonJoiner
from repro.platform.rules import Alert, Rule, RuleContext, RuleEngine
from repro.platform.s4 import PEContainer, ProcessingElement
from repro.platform.samza import LoggedStage, LoggedTask, SamzaPipeline
from repro.platform.sql import StreamingQuery, query
from repro.platform.topology import (
    Bolt,
    ListSpout,
    LogSpout,
    Spout,
    Topology,
    TopologyBuilder,
)
from repro.platform.tuples import StreamTuple

__all__ = [
    "Actor",
    "ActorRef",
    "ActorSystem",
    "Future",
    "DeltaIterationResult",
    "PEContainer",
    "ProcessingElement",
    "bulk_connected_components",
    "connected_components",
    "delta_iterate",
    "DStream",
    "IdRegistry",
    "Joined",
    "MicroBatchContext",
    "PhotonJoiner",
    "Alert",
    "Rule",
    "RuleContext",
    "RuleEngine",
    "query",
    "StreamingQuery",
    "SamzaPipeline",
    "LoggedTask",
    "LoggedStage",
    "Acker",
    "AllGrouping",
    "Bolt",
    "CollectorBolt",
    "ComponentMetrics",
    "CountBolt",
    "ExecutionMetrics",
    "FaultInjector",
    "FieldsGrouping",
    "FilterBolt",
    "FlatMapBolt",
    "GlobalGrouping",
    "Grouping",
    "InMemoryLog",
    "JoinBolt",
    "ListSpout",
    "LocalExecutor",
    "LogSpout",
    "MapBolt",
    "ShuffleGrouping",
    "Spout",
    "StreamTuple",
    "SynopsisBolt",
    "Topology",
    "TopologyBuilder",
    "TumblingWindowBolt",
]
