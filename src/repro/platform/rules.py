"""A streaming rule engine (footnote 1 of the paper).

"A rule engine typically accepts condition/action pairs ... As streaming
data enters the system, it is immediately matched against the existing
rules. When the condition of a rule is matched, the rule is said to
'fire'. The corresponding actions may produce alerts/outputs to external
applications or may simply modify the state of internal variables, which
may in turn lead to further rule firings."

This module implements exactly that contract: record rules match each
arriving record, actions can emit alerts, derive new records (re-matched,
depth-capped) and mutate engine state; state rules fire when the state
they watch changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.exceptions import ExecutionError, ParameterError


@dataclass(frozen=True)
class Alert:
    """An externally visible rule firing."""

    rule: str
    message: str
    record: Any = None


class RuleContext:
    """What an action can do: alert, emit derived records, mutate state."""

    def __init__(self, engine: "RuleEngine"):
        self._engine = engine
        self.emitted: list[Any] = []
        self.alerts: list[Alert] = []

    def alert(self, rule: str, message: str, record: Any = None) -> None:
        """Raise an alert visible in ``engine.alerts``."""
        self.alerts.append(Alert(rule=rule, message=message, record=record))

    def emit(self, record: Any) -> None:
        """Derive a new record; it will be matched against all rules."""
        self.emitted.append(record)

    def set_state(self, key: str, value: Any) -> None:
        """Mutate engine state (may trigger state rules)."""
        self._engine._pending_state[key] = value

    def get_state(self, key: str, default: Any = None) -> Any:
        """Read engine state (pending writes are visible next round)."""
        return self._engine.state.get(key, default)


@dataclass
class Rule:
    """One condition/action pair.

    ``condition(record, state) -> bool``; ``action(record, ctx)``.
    ``on`` is ``"record"`` (matched per arriving/derived record) or
    ``"state"`` (matched when state changes; record is None).
    """

    name: str
    condition: Callable[[Any, dict], bool]
    action: Callable[[Any, RuleContext], None]
    priority: int = 0
    on: str = "record"

    def __post_init__(self):
        if self.on not in ("record", "state"):
            raise ParameterError("rule 'on' must be 'record' or 'state'")


class RuleEngine:
    """Priority-ordered forward-chaining rule evaluation over a stream."""

    def __init__(self, max_depth: int = 8):
        if max_depth <= 0:
            raise ParameterError("max_depth must be positive")
        self.max_depth = max_depth
        self.state: dict[str, Any] = {}
        self.alerts: list[Alert] = []
        self.fired: dict[str, int] = {}
        self._rules: list[Rule] = []
        self._pending_state: dict[str, Any] = {}

    def add_rule(self, rule: Rule) -> "RuleEngine":
        """Register *rule*; duplicate names are rejected."""
        if any(r.name == rule.name for r in self._rules):
            raise ParameterError(f"duplicate rule name {rule.name!r}")
        self._rules.append(rule)
        self._rules.sort(key=lambda r: -r.priority)
        return self

    def when(
        self,
        name: str,
        condition: Callable[[Any, dict], bool],
        action: Callable[[Any, RuleContext], None],
        priority: int = 0,
    ) -> "RuleEngine":
        """Convenience: add a record rule."""
        return self.add_rule(Rule(name, condition, action, priority=priority))

    def on_state(
        self,
        name: str,
        condition: Callable[[Any, dict], bool],
        action: Callable[[Any, RuleContext], None],
        priority: int = 0,
    ) -> "RuleEngine":
        """Convenience: add a state rule."""
        return self.add_rule(Rule(name, condition, action, priority=priority, on="state"))

    def process(self, record: Any) -> list[Alert]:
        """Match *record* (and any derived records / state changes) against
        all rules; returns the alerts raised by this record."""
        produced: list[Alert] = []
        queue: list[tuple[Any, int]] = [(record, 0)]
        while queue:
            current, depth = queue.pop(0)
            if depth > self.max_depth:
                raise ExecutionError(
                    f"rule chain exceeded max depth {self.max_depth} "
                    "(cyclic emits?)"
                )
            ctx = RuleContext(self)
            for rule in self._rules:
                if rule.on != "record":
                    continue
                if rule.condition(current, self.state):
                    self.fired[rule.name] = self.fired.get(rule.name, 0) + 1
                    rule.action(current, ctx)
            produced.extend(ctx.alerts)
            queue.extend((r, depth + 1) for r in ctx.emitted)
            produced.extend(self._apply_state_changes(depth))
        self.alerts.extend(produced)
        return produced

    def _apply_state_changes(self, depth: int) -> list[Alert]:
        out: list[Alert] = []
        rounds = 0
        while self._pending_state:
            rounds += 1
            if rounds > self.max_depth:
                raise ExecutionError("state-rule chain exceeded max depth")
            changes, self._pending_state = self._pending_state, {}
            self.state.update(changes)
            ctx = RuleContext(self)
            for rule in self._rules:
                if rule.on != "state":
                    continue
                if rule.condition(None, self.state):
                    self.fired[rule.name] = self.fired.get(rule.name, 0) + 1
                    rule.action(None, ctx)
            out.extend(ctx.alerts)
            for record in ctx.emitted:
                self.process(record)  # derived records re-enter matching
        return out

    def process_many(self, records) -> list[Alert]:
        """Process every record; returns all alerts raised."""
        out: list[Alert] = []
        for record in records:
            out.extend(self.process(record))
        return out
