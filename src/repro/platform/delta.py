"""Flink-style delta iterations.

Table 2 / Section 3 on Flink: "a special kind of iterations called
delta-iterations that can significantly reduce the amount of computation
as iterations go on". The model: a *solution set* (keyed state) and a
*workset* (the elements that changed); each superstep processes only the
workset, updates the solution set, and produces the next (usually much
smaller) workset — converging when the workset empties.

:func:`delta_iterate` is the generic engine; :func:`connected_components`
is the canonical application (and the one Flink ships as its example),
with per-superstep workset sizes recorded so the "work shrinks as
iterations go on" claim is directly measurable.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.common.exceptions import ParameterError


@dataclass
class DeltaIterationResult:
    """Solution set plus convergence telemetry."""

    solution: dict[Hashable, Any]
    supersteps: int
    workset_sizes: list[int] = field(default_factory=list)

    @property
    def total_work(self) -> int:
        """Total workset elements processed (the cost delta-iteration cuts)."""
        return sum(self.workset_sizes)


def delta_iterate(
    initial_solution: dict[Hashable, Any],
    initial_workset: list,
    step: Callable[[dict, list], tuple[dict, list]],
    max_supersteps: int = 1_000,
) -> DeltaIterationResult:
    """Run delta iterations until the workset empties.

    ``step(solution, workset) -> (updates, next_workset)``: *updates* is a
    dict of solution entries to overwrite; *next_workset* the changed
    elements to process next round. The engine applies updates and loops.
    """
    if max_supersteps <= 0:
        raise ParameterError("max_supersteps must be positive")
    solution = dict(initial_solution)
    workset = list(initial_workset)
    sizes: list[int] = []
    steps = 0
    while workset:
        if steps >= max_supersteps:
            raise ParameterError(
                f"delta iteration did not converge in {max_supersteps} supersteps"
            )
        sizes.append(len(workset))
        updates, workset = step(solution, workset)
        solution.update(updates)
        steps += 1
    return DeltaIterationResult(solution=solution, supersteps=steps, workset_sizes=sizes)


def connected_components(
    edges: list[tuple[Hashable, Hashable]], max_supersteps: int = 1_000
) -> DeltaIterationResult:
    """Connected components via delta-iterated label propagation.

    Every vertex starts labelled with itself; a vertex joins the workset
    only when its component label *changed* last superstep, so work decays
    geometrically instead of touching all vertices every round (the
    bulk-iteration baseline the bench compares against).
    """
    adjacency: dict[Hashable, set[Hashable]] = defaultdict(set)
    for u, v in edges:
        if u == v:
            continue
        adjacency[u].add(v)
        adjacency[v].add(u)
    vertices = list(adjacency)
    solution = {v: v for v in vertices}
    # Canonical label ordering needs comparable vertices; repr for mixed.
    rank = {v: i for i, v in enumerate(sorted(vertices, key=repr))}

    def step(sol: dict, workset: list) -> tuple[dict, list]:
        updates: dict[Hashable, Any] = {}
        for vertex in workset:
            label = sol[vertex]
            if vertex in updates and rank[updates[vertex]] < rank[label]:
                label = updates[vertex]
            for neighbour in adjacency[vertex]:
                current = updates.get(neighbour, sol[neighbour])
                if rank[label] < rank[current]:
                    updates[neighbour] = label
        changed = [v for v, lab in updates.items() if lab != sol[v]]
        return updates, changed

    return delta_iterate(solution, vertices, step, max_supersteps=max_supersteps)


def bulk_connected_components(
    edges: list[tuple[Hashable, Hashable]], max_supersteps: int = 1_000
) -> DeltaIterationResult:
    """Baseline: bulk label propagation (every vertex, every superstep)."""
    adjacency: dict[Hashable, set[Hashable]] = defaultdict(set)
    for u, v in edges:
        if u == v:
            continue
        adjacency[u].add(v)
        adjacency[v].add(u)
    vertices = list(adjacency)
    solution = {v: v for v in vertices}
    rank = {v: i for i, v in enumerate(sorted(vertices, key=repr))}
    sizes: list[int] = []
    for step_index in range(max_supersteps):
        sizes.append(len(vertices))
        changed = False
        updates: dict[Hashable, Any] = {}
        for vertex in vertices:
            best = solution[vertex]
            for neighbour in adjacency[vertex]:
                if rank[solution[neighbour]] < rank[best]:
                    best = solution[neighbour]
            if best != solution[vertex]:
                updates[vertex] = best
                changed = True
        solution.update(updates)
        if not changed:
            return DeltaIterationResult(
                solution=solution, supersteps=step_index + 1, workset_sizes=sizes
            )
    raise ParameterError("bulk iteration did not converge")
