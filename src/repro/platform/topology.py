"""Topology model: spouts, bolts and the builder.

A topology is a DAG of *spouts* (sources) and *bolts* (computations),
exactly Storm's model (Section 3). Components declare parallelism; edges
declare a stream grouping. The builder validates acyclicity and
connectivity before the executor will run it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.exceptions import TopologyError
from repro.platform.groupings import Grouping, ShuffleGrouping
from repro.platform.log import InMemoryLog


class Spout(ABC):
    """A replayable stream source."""

    @abstractmethod
    def next_tuple(self) -> tuple | None:
        """The next payload, or None when (currently) exhausted."""

    def ack(self, msg_id: int) -> None:
        """Called when the tuple tree rooted at *msg_id* fully processed."""

    def fail(self, msg_id: int) -> None:
        """Called when the tuple tree rooted at *msg_id* failed/timed out."""

    def rewind(self, offset: int) -> None:
        """Reset the read position (exactly-once recovery). Optional."""
        raise TopologyError(f"{type(self).__name__} does not support rewind")

    @property
    def offset(self) -> int:
        """Current read position (for checkpointing). Optional."""
        raise TopologyError(f"{type(self).__name__} does not track offsets")

    # -- batch / partition protocol (optional) ----------------------------

    def next_batch(self, max_items: int) -> list[tuple]:
        """Up to *max_items* payloads in one call (the high-throughput feed
        path). Equivalent to repeated :meth:`next_tuple`; subclasses
        backed by indexable storage override with a slicing fast path."""
        batch: list[tuple] = []
        while len(batch) < max_items:
            payload = self.next_tuple()
            if payload is None:
                break
            batch.append(payload)
        return batch

    def split(self, n: int) -> list["Spout"]:
        """Partition this source into *n* independent spouts (Samza/Kafka
        partitions). Sources that cannot be partitioned keep the default,
        which raises — :func:`is_partitionable` probes for support."""
        raise TopologyError(f"{type(self).__name__} is not partitionable")


def is_partitionable(spout: Spout) -> bool:
    """True when *spout* overrides :meth:`Spout.split`."""
    return type(spout).split is not Spout.split


class ListSpout(Spout):
    """Spout over a fixed list; replays failed messages (at-least-once)."""

    def __init__(self, records: list):
        self._records = list(records)
        self._next = 0
        self._pending: dict[int, int] = {}  # msg offset -> retries
        self._retry_queue: list[int] = []

    def next_tuple(self) -> tuple | None:
        if self._retry_queue:
            offset = self._retry_queue.pop(0)
            self._last_offset = offset
            return self._wrap(self._records[offset])
        if self._next >= len(self._records):
            return None
        offset = self._next
        self._next += 1
        self._last_offset = offset
        return self._wrap(self._records[offset])

    def _wrap(self, record) -> tuple:
        return record if isinstance(record, tuple) else (record,)

    @property
    def last_offset(self) -> int:
        return self._last_offset

    def fail(self, msg_id: int) -> None:
        # msg_id is the record offset by executor convention.
        self._retry_queue.append(msg_id)

    def rewind(self, offset: int) -> None:
        self._next = offset
        self._retry_queue.clear()

    @property
    def offset(self) -> int:
        return self._next

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._records) and not self._retry_queue

    def next_batch(self, max_items: int) -> list[tuple]:
        """Slicing fast path: one list slice instead of ``max_items`` calls.

        Falls back to the per-tuple loop while replays are queued so retry
        ordering stays identical to repeated :meth:`next_tuple`.
        """
        if self._retry_queue:
            return super().next_batch(max_items)
        start = self._next
        stop = min(start + max_items, len(self._records))
        if start >= stop:
            return []
        self._next = stop
        self._last_offset = stop - 1
        wrap = self._wrap
        return [wrap(r) for r in self._records[start:stop]]

    def split(self, n: int) -> list[Spout]:
        """Round-robin partitions: partition *i* reads records ``i::n``,
        preserving each record's relative order within its partition."""
        if n <= 0:
            raise TopologyError("partition count must be positive")
        return [ListSpout(self._records[i::n]) for i in range(n)]


class LogSpout(ListSpout):
    """Spout reading an :class:`InMemoryLog` (the Kafka-consumer analogue)."""

    def __init__(self, log: InMemoryLog):
        self._log = log
        self._next = 0
        self._pending = {}
        self._retry_queue = []

    @property
    def _records(self) -> list:
        return self._log._records


class Bolt(ABC):
    """A stream computation. Emits via the collector passed to process."""

    def prepare(self, task_index: int, n_tasks: int) -> None:
        """Called once before any tuple; override for per-task setup."""

    @abstractmethod
    def process(self, values: tuple, emit: Callable[..., None]) -> None:
        """Handle one payload; call ``emit(*values)`` zero or more times."""

    def snapshot(self) -> Any:
        """State to checkpoint (must be deep-copyable). Default: stateless."""
        return None

    def restore(self, state: Any) -> None:
        """Restore checkpointed state. Default: stateless."""

    def flush(self, emit: Callable[..., None]) -> None:
        """Called at end-of-stream; emit any buffered output (windows)."""


@dataclass
class _Component:
    name: str
    kind: str  # "spout" | "bolt"
    factory: Callable[[], Any]
    parallelism: int
    inputs: list[tuple[str, Grouping]] = field(default_factory=list)


class TopologyBuilder:
    """Declarative topology assembly with validation."""

    def __init__(self):
        self._components: dict[str, _Component] = {}

    def set_spout(
        self,
        name: str,
        factory: Callable[[], Spout],
        parallelism: int = 1,
    ) -> "TopologyBuilder":
        """Register a spout; *factory* builds a fresh instance per run.

        ``parallelism > 1`` is a *hint* for partition-aware executors: the
        spout must be partitionable (:meth:`Spout.split`) and is split
        into that many independent partitions at run time. The
        single-process executor reads the unsplit source directly.
        """
        self._check_new(name)
        if parallelism <= 0:
            raise TopologyError("parallelism must be positive")
        self._components[name] = _Component(name, "spout", factory, parallelism)
        return self

    def set_bolt(
        self,
        name: str,
        factory: Callable[[], Bolt],
        parallelism: int = 1,
    ) -> "_BoltDeclarer":
        """Register a bolt; chain ``.shuffle(...)``/``.fields(...)`` to wire
        inputs."""
        self._check_new(name)
        if parallelism <= 0:
            raise TopologyError("parallelism must be positive")
        comp = _Component(name, "bolt", factory, parallelism)
        self._components[name] = comp
        return _BoltDeclarer(self, comp)

    def _check_new(self, name: str) -> None:
        if name in self._components:
            raise TopologyError(f"duplicate component name {name!r}")

    def build(self) -> "Topology":
        """Validate and freeze the topology."""
        spouts = [c for c in self._components.values() if c.kind == "spout"]
        if not spouts:
            raise TopologyError("a topology needs at least one spout")
        for comp in self._components.values():
            if comp.kind == "bolt" and not comp.inputs:
                raise TopologyError(f"bolt {comp.name!r} has no inputs")
            for src, __ in comp.inputs:
                if src not in self._components:
                    raise TopologyError(f"{comp.name!r} consumes unknown {src!r}")
        self._check_acyclic()
        return Topology(dict(self._components))

    def _check_acyclic(self) -> None:
        colors: dict[str, int] = {}

        def visit(name: str) -> None:
            colors[name] = 1
            for other in self._components.values():
                if any(src == name for src, __ in other.inputs):
                    state = colors.get(other.name, 0)
                    if state == 1:
                        raise TopologyError("topology contains a cycle")
                    if state == 0:
                        visit(other.name)
            colors[name] = 2

        for comp in self._components.values():
            if colors.get(comp.name, 0) == 0:
                visit(comp.name)


class _BoltDeclarer:
    """Fluent input wiring for a bolt being declared."""

    def __init__(self, builder: TopologyBuilder, component: _Component):
        self._builder = builder
        self._component = component

    def grouping(self, source: str, grouping: Grouping) -> "_BoltDeclarer":
        self._component.inputs.append((source, grouping))
        return self

    def shuffle(self, source: str, seed: int = 0) -> "_BoltDeclarer":
        return self.grouping(source, ShuffleGrouping(seed))

    def fields(self, source: str, *indices: int) -> "_BoltDeclarer":
        from repro.platform.groupings import FieldsGrouping

        return self.grouping(source, FieldsGrouping(*indices))

    def global_(self, source: str) -> "_BoltDeclarer":
        from repro.platform.groupings import GlobalGrouping

        return self.grouping(source, GlobalGrouping())

    def all(self, source: str) -> "_BoltDeclarer":
        from repro.platform.groupings import AllGrouping

        return self.grouping(source, AllGrouping())


class Topology:
    """A validated, immutable topology description."""

    def __init__(self, components: dict[str, _Component]):
        self.components = components

    @property
    def spout_names(self) -> list[str]:
        return [c.name for c in self.components.values() if c.kind == "spout"]

    @property
    def bolt_names(self) -> list[str]:
        return [c.name for c in self.components.values() if c.kind == "bolt"]

    def parallelism_of(self, name: str) -> int:
        """Declared parallelism of component *name*."""
        return self.components[name].parallelism

    @property
    def total_tasks(self) -> int:
        """Total bolt task count across the topology (shard-plan input)."""
        return sum(c.parallelism for c in self.components.values() if c.kind == "bolt")

    def consumers_of(self, source: str) -> list[tuple[str, Grouping]]:
        """(bolt name, grouping) pairs consuming *source*'s output."""
        out = []
        for comp in self.components.values():
            for src, grouping in comp.inputs:
                if src == source:
                    out.append((comp.name, grouping))
        return out
