"""Fault injection: the lossy network / crashing worker simulator.

The delivery-semantics benches need *controlled* imperfection ("stream
imperfections ... are commonly present in data streams in production",
Section 3). A :class:`FaultInjector` drops in-flight tuples with a given
probability and/or schedules a worker crash after N processed tuples; the
executor consults it on every hop.
"""

from __future__ import annotations

from repro.common.exceptions import ParameterError
from repro.common.rng import make_rng


class FaultInjector:
    """Deterministic (seeded) fault plan for one execution."""

    def __init__(
        self,
        drop_probability: float = 0.0,
        crash_after: int | None = None,
        seed: int = 0,
    ):
        if not 0 <= drop_probability < 1:
            raise ParameterError("drop_probability must lie in [0, 1)")
        if crash_after is not None and crash_after <= 0:
            raise ParameterError("crash_after must be positive")
        self.drop_probability = drop_probability
        self.crash_after = crash_after
        self._rng = make_rng(seed)
        self.dropped = 0
        self.crashes = 0
        self._processed = 0

    def should_drop(self) -> bool:
        """Whether to lose the tuple currently in transit."""
        if self.drop_probability and self._rng.random() < self.drop_probability:
            self.dropped += 1
            return True
        return False

    def note_processed(self) -> bool:
        """Record one processed tuple; True when a crash should fire now."""
        self._processed += 1
        if self.crash_after is not None and self._processed >= self.crash_after:
            self.crash_after = None  # one-shot
            self.crashes += 1
            return True
        return False


NO_FAULTS = FaultInjector()
