"""Photon-style fault-tolerant joining of continuous streams.

[Ananthanarayanan et al., SIGMOD 2013 — cited in the paper's platform
survey]: Google's Photon joins the query log with the click log
exactly-once despite worker restarts. The keys of the design reproduced
here:

* the *primary* stream (clicks) drives the join; the *secondary* stream
  (queries) is an indexed lookup;
* an **IdRegistry** — a durable set of already-joined primary ids — makes
  the join idempotent: a replayed click is recognised and skipped;
* unmatched primaries wait (bounded) for their secondary to arrive
  (out-of-order tolerance), and give up after ``timeout`` ticks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.common.exceptions import ParameterError
from repro.platform.log import InMemoryLog


@dataclass(frozen=True)
class Joined:
    """One join output: the primary record enriched with its secondary."""

    key: Hashable
    primary: Any
    secondary: Any


class IdRegistry:
    """Durable registry of joined primary ids (the Photon dedup core).

    ``claim(id)`` returns True exactly once per id — the idempotence
    primitive that makes replays safe.
    """

    def __init__(self):
        self._ids: set[Hashable] = set()

    def claim(self, primary_id: Hashable) -> bool:
        """Claim *primary_id*; True exactly once per id."""
        if primary_id in self._ids:
            return False
        self._ids.add(primary_id)
        return True

    def __contains__(self, primary_id: Hashable) -> bool:
        return primary_id in self._ids

    def __len__(self) -> int:
        return len(self._ids)


class PhotonJoiner:
    """Exactly-once stream-stream join with an id registry.

    ``add_secondary(key, record)`` indexes the lookup stream;
    ``add_primary(id, key, record)`` attempts the join. Unmatched
    primaries are parked and retried as secondaries arrive; ``tick()``
    ages parked primaries and drops them after ``timeout`` ticks
    (recorded in ``expired``). Join outputs append to an output log, so
    downstream consumption is replayable.
    """

    def __init__(self, timeout: int = 100, output: InMemoryLog | None = None):
        if timeout <= 0:
            raise ParameterError("timeout must be positive")
        self.timeout = timeout
        self.output = output if output is not None else InMemoryLog()
        self.registry = IdRegistry()
        self.expired: list[Hashable] = []
        self.duplicates_skipped = 0
        self._secondary: dict[Hashable, Any] = {}
        self._waiting: dict[Hashable, tuple[Hashable, Any, int]] = {}  # id -> (key, rec, age)

    def add_secondary(self, key: Hashable, record: Any) -> list[Joined]:
        """Index a secondary record; joins any parked primaries for *key*."""
        self._secondary[key] = record
        out = []
        for pid, (k, primary, __) in list(self._waiting.items()):
            if k == key:
                del self._waiting[pid]
                joined = self._emit(pid, key, primary, record)
                if joined is not None:
                    out.append(joined)
        return out

    def add_primary(self, primary_id: Hashable, key: Hashable, record: Any) -> Joined | None:
        """Attempt to join a primary record (idempotent by *primary_id*)."""
        if primary_id in self.registry:
            self.duplicates_skipped += 1
            return None
        if key in self._secondary:
            return self._emit(primary_id, key, record, self._secondary[key])
        if primary_id not in self._waiting:
            self._waiting[primary_id] = (key, record, 0)
        return None

    def _emit(self, primary_id, key, primary, secondary) -> Joined | None:
        if not self.registry.claim(primary_id):
            self.duplicates_skipped += 1
            return None
        joined = Joined(key=key, primary=primary, secondary=secondary)
        self.output.append(joined)
        return joined

    def tick(self) -> None:
        """Advance the out-of-order clock; expire overdue parked primaries."""
        for pid in list(self._waiting):
            key, record, age = self._waiting[pid]
            if age + 1 >= self.timeout:
                del self._waiting[pid]
                self.expired.append(pid)
            else:
                self._waiting[pid] = (key, record, age + 1)

    @property
    def pending(self) -> int:
        """Primaries parked waiting for their secondary."""
        return len(self._waiting)

    @property
    def joined_count(self) -> int:
        return len(self.output)
