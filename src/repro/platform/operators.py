"""Built-in bolts: the "common streaming operators" of Section 2.

Filtering, transformation, keyed aggregation, time windows, joins and
synopsis attachment — enough to express the benches' topologies (word
count, trending hashtags, windowed aggregation) declaratively.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

from repro.common.exceptions import ParameterError
from repro.platform.topology import Bolt
from repro.windowing.windows import TumblingWindow


class MapBolt(Bolt):
    """Apply a function to each payload: ``emit(*fn(values))``.

    *fn* returns the new payload tuple (or None to drop).
    """

    def __init__(self, fn: Callable[[tuple], tuple | None]):
        self.fn = fn

    def process(self, values: tuple, emit) -> None:
        out = self.fn(values)
        if out is not None:
            emit(*out)


class FlatMapBolt(Bolt):
    """Apply a function producing zero or more payloads per input."""

    def __init__(self, fn: Callable[[tuple], list[tuple]]):
        self.fn = fn

    def process(self, values: tuple, emit) -> None:
        for out in self.fn(values):
            emit(*out)


class FilterBolt(Bolt):
    """Pass through payloads satisfying the predicate."""

    def __init__(self, predicate: Callable[[tuple], bool]):
        self.predicate = predicate

    def process(self, values: tuple, emit) -> None:
        if self.predicate(values):
            emit(*values)


class CountBolt(Bolt):
    """Keyed counting (word count): counts values[key_index] occurrences.

    State is checkpointable, so the bolt is exactly-once safe. Each update
    emits ``(key, count)``.
    """

    def __init__(self, key_index: int = 0, emit_updates: bool = True):
        self.key_index = key_index
        self.emit_updates = emit_updates
        self.counts: dict[Any, int] = defaultdict(int)

    def process(self, values: tuple, emit) -> None:
        key = values[self.key_index]
        self.counts[key] += 1
        if self.emit_updates:
            emit(key, self.counts[key])

    def snapshot(self):
        return dict(self.counts)

    def restore(self, state) -> None:
        self.counts = defaultdict(int, state or {})


class SynopsisBolt(Bolt):
    """Attach any library synopsis to a stream position.

    ``factory`` builds the synopsis; ``extract`` maps a payload to the item
    fed to the synopsis (default: first element). Items are buffered and
    flushed through ``synopsis.update_many`` every *batch_size* tuples so
    array-backed sketches hit their vectorized ingest path; the buffer is
    drained before every checkpoint snapshot and at end-of-stream, so the
    observable synopsis state is identical to per-tuple updates.

    The live synopsis is available as ``.synopsis`` after the run; snapshots
    deep-copy it, so sketch state participates in exactly-once checkpoints.

    Observability: pass ``instrument=True`` (or a name string) to wrap the
    synopsis in an :class:`~repro.obs.instrument.InstrumentedSynopsis`
    publishing update/batch-size/memory metrics into *registry* (default:
    the process-wide registry). The wrapper is transparent to checkpoints
    — snapshots copy only the underlying sketch state, and instrument
    counters deliberately survive restores (observed work stays observed).
    """

    def __init__(
        self,
        factory: Callable[[], Any],
        extract: Callable[[tuple], Any] = None,
        batch_size: int = 256,
        instrument: bool | str = False,
        registry: Any = None,
    ):
        if batch_size <= 0:
            raise ParameterError("batch_size must be positive")
        self.factory = factory
        self.extract = extract or (lambda values: values[0])
        self.batch_size = batch_size
        self.instrument = instrument
        self.registry = registry
        self._synopsis = self._wrap(factory())
        self._buffer: list[Any] = []

    def _wrap(self, synopsis: Any) -> Any:
        if not self.instrument:
            return synopsis
        from repro.obs.instrument import InstrumentedSynopsis

        name = self.instrument if isinstance(self.instrument, str) else None
        return InstrumentedSynopsis(synopsis, registry=self.registry, name=name)

    def _unwrap(self) -> Any:
        from repro.obs.instrument import InstrumentedSynopsis

        if isinstance(self._synopsis, InstrumentedSynopsis):
            return self._synopsis.synopsis
        return self._synopsis

    @property
    def synopsis(self) -> Any:
        """The synopsis with every buffered item applied."""
        self._drain()
        return self._synopsis

    def _drain(self) -> None:
        if self._buffer:
            self._synopsis.update_many(self._buffer)
            self._buffer = []

    def process(self, values: tuple, emit) -> None:
        self._buffer.append(self.extract(values))
        if len(self._buffer) >= self.batch_size:
            self._drain()

    def flush(self, emit) -> None:
        self._drain()

    def snapshot(self):
        import copy

        self._drain()
        return copy.deepcopy(self._unwrap())

    def restore(self, state) -> None:
        import copy

        # Buffered tuples are pre-checkpoint state: drop them — the spout
        # replays everything after the restored snapshot.
        self._buffer = []
        restored = copy.deepcopy(state) if state is not None else self.factory()
        self._synopsis = self._wrap(restored)


class TumblingWindowBolt(Bolt):
    """Group ``(timestamp, value)`` payloads into tumbling windows.

    Emits ``(window_start, window_end, aggregate)`` per closed window,
    where *aggregate* is ``agg(list_of_values)``.
    """

    def __init__(self, size: float, agg: Callable[[list], Any] = len):
        if size <= 0:
            raise ParameterError("window size must be positive")
        self.size = size
        self.agg = agg
        self._window = TumblingWindow(size)

    def process(self, values: tuple, emit) -> None:
        timestamp, value = values[0], values[1]
        for window in self._window.add(float(timestamp), value):
            emit(window.start, window.end, self.agg(list(window.items)))

    def flush(self, emit) -> None:
        for window in self._window.flush():
            emit(window.start, window.end, self.agg(list(window.items)))

    def snapshot(self):
        import copy

        return copy.deepcopy(self._window)

    def restore(self, state) -> None:
        import copy

        self._window = copy.deepcopy(state) if state is not None else TumblingWindow(self.size)


class JoinBolt(Bolt):
    """Hash join of two keyed streams within a per-key buffer.

    Payloads are ``(side, key, value)`` with side 0 or 1; on a match the
    bolt emits ``(key, left_value, right_value)`` for every buffered
    counterpart (one-to-many streaming equi-join, Photon-style).
    """

    def __init__(self, buffer_limit: int = 10_000):
        if buffer_limit <= 0:
            raise ParameterError("buffer_limit must be positive")
        self.buffer_limit = buffer_limit
        self._buffers: tuple[dict, dict] = (defaultdict(list), defaultdict(list))
        self._buffered = 0

    def process(self, values: tuple, emit) -> None:
        side, key, value = values
        if side not in (0, 1):
            raise ParameterError("join side must be 0 or 1")
        other = self._buffers[1 - side]
        for counterpart in other.get(key, ()):
            left, right = (value, counterpart) if side == 0 else (counterpart, value)
            emit(key, left, right)
        if self._buffered < self.buffer_limit:
            self._buffers[side][key].append(value)
            self._buffered += 1

    def snapshot(self):
        return (
            {k: list(v) for k, v in self._buffers[0].items()},
            {k: list(v) for k, v in self._buffers[1].items()},
            self._buffered,
        )

    def restore(self, state) -> None:
        if state is None:
            self._buffers = (defaultdict(list), defaultdict(list))
            self._buffered = 0
        else:
            left, right, buffered = state
            self._buffers = (defaultdict(list, left), defaultdict(list, right))
            self._buffered = buffered


class CollectorBolt(Bolt):
    """Terminal sink buffering everything it receives.

    The buffer is checkpointed state, which makes the sink transactional:
    after an exactly-once recovery, outputs since the last checkpoint are
    rolled back rather than duplicated.
    """

    def __init__(self):
        self.results: list[tuple] = []

    def process(self, values: tuple, emit) -> None:
        self.results.append(values)

    def snapshot(self):
        return list(self.results)

    def restore(self, state) -> None:
        self.results = list(state or [])
