"""Execution metrics: the observability layer every Table 2 system ships.

Counters per component (emitted/processed/acked/failed), end-to-end
latency samples summarised by a t-digest (so the report can quote p50/p99
without storing every sample), and queue-depth high-water marks for
backpressure analysis.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.quantiles.tdigest import TDigest


@dataclass
class ComponentMetrics:
    """Counters for one component."""

    emitted: int = 0
    processed: int = 0
    acked: int = 0
    failed: int = 0
    queue_high_water: int = 0


@dataclass
class ExecutionMetrics:
    """Aggregated metrics for one topology run."""

    components: dict[str, ComponentMetrics] = field(
        default_factory=lambda: defaultdict(ComponentMetrics)
    )
    latency: TDigest = field(default_factory=lambda: TDigest(delta=100))
    replays: int = 0
    checkpoints: int = 0
    recoveries: int = 0
    wall_seconds: float = 0.0

    def record_latency(self, seconds: float) -> None:
        """Add one end-to-end latency sample (seconds)."""
        self.latency.update(seconds)

    def latency_quantile(self, q: float) -> float:
        """Latency quantile in seconds (0 when nothing completed)."""
        if self.latency.count == 0:
            return 0.0
        return self.latency.quantile(q)

    def throughput(self) -> float:
        """Source tuples per wall-clock second."""
        emitted = sum(
            m.emitted for name, m in self.components.items() if name.startswith("spout:")
        )
        return emitted / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def summary(self) -> dict:
        """Flat dict for reports."""
        return {
            "throughput_tps": round(self.throughput(), 1),
            "latency_p50_ms": round(self.latency_quantile(0.5) * 1e3, 3),
            "latency_p99_ms": round(self.latency_quantile(0.99) * 1e3, 3),
            "replays": self.replays,
            "checkpoints": self.checkpoints,
            "recoveries": self.recoveries,
        }
