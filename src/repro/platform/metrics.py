"""Execution metrics: a thin façade over the ``repro.obs`` metric registry.

The executor's counters (emitted/processed/acked/failed per component),
end-to-end latency t-digest, queue-depth high-water marks and reliability
counters all live in a :class:`~repro.obs.metrics.MetricRegistry` as
labeled instruments — so one topology run's metrics can be exported as
Prometheus text or JSON lines, shared with synopsis instrumentation, and
scraped mid-run. This module keeps the ergonomic attribute API the
executor and tests always used (``metrics.components["bolt:x"].processed
+= 1``) while writing through to the registry underneath.
"""

from __future__ import annotations

from typing import Iterator

from repro.obs.metrics import MetricRegistry

_COMPONENT_COUNTERS = ("emitted", "processed", "acked", "failed")


class ComponentMetrics:
    """Counters for one component — attribute reads/writes hit the registry."""

    __slots__ = ("_counters", "_queue_hw")

    def __init__(self, registry: MetricRegistry, component: str):
        self._counters = {
            field: registry.counter(
                f"repro_component_{field}_total",
                f"Tuples {field} per component.",
                labelnames=("component",),
            ).labels(component=component)
            for field in _COMPONENT_COUNTERS
        }
        self._queue_hw = registry.gauge(
            "repro_component_queue_high_water",
            "Deepest input queue observed per component (backpressure).",
            labelnames=("component",),
        ).labels(component=component)

    def _get(self, field: str) -> int:
        return int(self._counters[field].value)

    def _set(self, field: str, value: int) -> None:
        # ``metrics.x += 1`` reads then assigns; write-through keeps the
        # registry authoritative while preserving the attribute API.
        self._counters[field]._set(value)

    @property
    def emitted(self) -> int:
        return self._get("emitted")

    @emitted.setter
    def emitted(self, value: int) -> None:
        self._set("emitted", value)

    @property
    def processed(self) -> int:
        return self._get("processed")

    @processed.setter
    def processed(self, value: int) -> None:
        self._set("processed", value)

    @property
    def acked(self) -> int:
        return self._get("acked")

    @acked.setter
    def acked(self, value: int) -> None:
        self._set("acked", value)

    @property
    def failed(self) -> int:
        return self._get("failed")

    @failed.setter
    def failed(self, value: int) -> None:
        self._set("failed", value)

    @property
    def queue_high_water(self) -> int:
        return int(self._queue_hw.value)

    @queue_high_water.setter
    def queue_high_water(self, value: int) -> None:
        self._queue_hw.set(value)

    def as_dict(self) -> dict[str, int]:
        """Flat counter snapshot (reports)."""
        out = {field: self._get(field) for field in _COMPONENT_COUNTERS}
        out["queue_high_water"] = self.queue_high_water
        return out

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ComponentMetrics({inner})"


class _ComponentMap(dict):
    """``defaultdict``-style map creating registry-backed entries on demand."""

    def __init__(self, registry: MetricRegistry):
        super().__init__()
        self._registry = registry

    def __missing__(self, component: str) -> ComponentMetrics:
        entry = ComponentMetrics(self._registry, component)
        self[component] = entry
        return entry


class ExecutionMetrics:
    """Aggregated metrics for one topology run (registry-backed).

    Constructed with no arguments the metrics own a private registry (runs
    stay isolated, as before); pass a shared registry — e.g.
    :func:`repro.obs.metrics.get_default_registry` or the one inside an
    :class:`~repro.obs.context.Observability` — to co-publish with the
    rest of the process.
    """

    def __init__(self, registry: MetricRegistry | None = None):
        self.registry = registry if registry is not None else MetricRegistry()
        self.components: dict[str, ComponentMetrics] = _ComponentMap(self.registry)
        self.latency = self.registry.histogram(
            "repro_latency_seconds",
            "End-to-end tuple-tree completion latency (seconds).",
        )
        self._replays = self.registry.counter(
            "repro_replays_total", "Spout messages replayed after failure."
        )
        self._checkpoints = self.registry.counter(
            "repro_checkpoints_total", "Consistent checkpoints taken."
        )
        self._recoveries = self.registry.counter(
            "repro_recoveries_total", "Checkpoint recoveries performed."
        )
        self._wall = self.registry.gauge(
            "repro_wall_seconds", "Wall-clock duration of the run (seconds)."
        )
        # Transport pressure (cluster runs; stays 0 under LocalExecutor):
        # comparable next to the per-component queue_high_water marks.
        self._backpressure = self.registry.counter(
            "repro_transport_backpressure_waits_total",
            "Times a full transport buffer made the sender wait.",
        )
        self._ring_occupancy = self.registry.gauge(
            "repro_transport_ring_occupancy",
            "Fullest shm ring fraction observed at last sample (0..1).",
        )

    # -- reliability counters (attribute API preserved) --------------------

    @property
    def replays(self) -> int:
        return int(self._replays.value)

    @replays.setter
    def replays(self, value: int) -> None:
        self._replays._set(value)

    @property
    def checkpoints(self) -> int:
        return int(self._checkpoints.value)

    @checkpoints.setter
    def checkpoints(self, value: int) -> None:
        self._checkpoints._set(value)

    @property
    def recoveries(self) -> int:
        return int(self._recoveries.value)

    @recoveries.setter
    def recoveries(self, value: int) -> None:
        self._recoveries._set(value)

    @property
    def wall_seconds(self) -> float:
        return self._wall.value

    @wall_seconds.setter
    def wall_seconds(self, value: float) -> None:
        self._wall.set(value)

    @property
    def backpressure_waits(self) -> int:
        return int(self._backpressure.value)

    @backpressure_waits.setter
    def backpressure_waits(self, value: int) -> None:
        self._backpressure._set(value)

    @property
    def ring_occupancy(self) -> float:
        return self._ring_occupancy.value

    @ring_occupancy.setter
    def ring_occupancy(self, value: float) -> None:
        self._ring_occupancy.set(value)

    # -- latency -----------------------------------------------------------

    def record_latency(self, seconds: float) -> None:
        """Add one end-to-end latency sample (seconds)."""
        self.latency.observe(seconds)

    def latency_quantile(self, q: float) -> float:
        """Latency quantile in seconds (0 when nothing completed)."""
        return self.latency.quantile(q)

    # -- derived -----------------------------------------------------------

    def throughput(self) -> float:
        """Source tuples per wall-clock second."""
        emitted = sum(
            m.emitted for name, m in self.components.items() if name.startswith("spout:")
        )
        wall = self.wall_seconds
        return emitted / wall if wall > 0 else 0.0

    def _component_items(self) -> Iterator[tuple[str, ComponentMetrics]]:
        return iter(sorted(self.components.items()))

    def summary(self) -> dict:
        """Flat dict for reports, including per-component counters and the
        queue high-water marks ``_route`` collects (backpressure)."""
        return {
            "throughput_tps": round(self.throughput(), 1),
            "latency_p50_ms": round(self.latency_quantile(0.5) * 1e3, 3),
            "latency_p99_ms": round(self.latency_quantile(0.99) * 1e3, 3),
            "replays": self.replays,
            "checkpoints": self.checkpoints,
            "recoveries": self.recoveries,
            "backpressure_waits": self.backpressure_waits,
            "ring_occupancy": round(self.ring_occupancy, 4),
            "components": {
                name: entry.as_dict() for name, entry in self._component_items()
            },
        }
