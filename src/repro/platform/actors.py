"""An Akka-style actor toolkit (Table 2's Akka column).

Section 3 on Akka: "an Akka application consists of a set of Actors and
messages passed between those Actors ... each actor instance is guaranteed
to be run using at most one thread at a time ... a unique feature is that
actors can reply to incoming messages, giving it a request-response
capability that's usually not present." Reproduced here:

* lightweight actors with mailboxes, processed one message at a time by a
  cooperative single-threaded scheduler (the at-most-one-thread guarantee
  by construction);
* ``tell`` (fire-and-forget) and ``ask`` (request-response via futures) —
  the feature the paper singles out;
* supervision: an actor that raises is restarted (fresh state) up to a
  retry budget, then stopped — Akka's one-for-one restart strategy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.exceptions import ExecutionError, ParameterError


@dataclass
class Envelope:
    """One queued message, with an optional reply slot (for ask)."""

    message: Any
    sender: "ActorRef | None" = None
    future: "Future | None" = None


class Future:
    """A reply slot filled when the target actor responds."""

    _UNSET = object()

    def __init__(self):
        self._value: Any = Future._UNSET

    @property
    def done(self) -> bool:
        return self._value is not Future._UNSET

    def set(self, value: Any) -> None:
        """Fill the slot (idempotent: the first value wins)."""
        if not self.done:
            self._value = value

    def result(self) -> Any:
        """The reply; raises if not yet resolved."""
        if not self.done:
            raise ExecutionError("future not resolved; run the system first")
        return self._value


class Actor(ABC):
    """User behaviour. ``receive`` handles one message at a time.

    Inside ``receive``: ``self.reply(value)`` answers an ask;
    ``self.context.tell(ref, msg)`` messages another actor; raising an
    exception triggers supervision (restart with fresh state).
    """

    def __init__(self):
        self.context: "ActorSystem | None" = None
        self.ref: "ActorRef | None" = None
        self._current: Envelope | None = None

    @abstractmethod
    def receive(self, message: Any, sender: "ActorRef | None") -> None:
        """Handle one message."""

    def reply(self, value: Any) -> None:
        """Answer the current message's ask-future (no-op for tells)."""
        if self._current is not None and self._current.future is not None:
            self._current.future.set(value)

    def pre_restart(self) -> None:
        """Hook called on the failing instance before it is replaced."""


@dataclass
class ActorRef:
    """Address of an actor within a system."""

    name: str
    system: "ActorSystem" = field(repr=False)

    def tell(self, message: Any, sender: "ActorRef | None" = None) -> None:
        """Fire-and-forget send."""
        self.system._enqueue(self, Envelope(message, sender=sender))

    def ask(self, message: Any) -> Future:
        """Request-response send; the Future resolves during run()."""
        future = Future()
        self.system._enqueue(self, Envelope(message, future=future))
        return future


class ActorSystem:
    """Single-threaded cooperative actor runtime with supervision."""

    def __init__(self, max_restarts: int = 3):
        if max_restarts < 0:
            raise ParameterError("max_restarts must be non-negative")
        self.max_restarts = max_restarts
        self.processed = 0
        self.restarts = 0
        self._factories: dict[str, Callable[[], Actor]] = {}
        self._actors: dict[str, Actor] = {}
        self._mailboxes: dict[str, deque[Envelope]] = {}
        self._restart_counts: dict[str, int] = {}
        self._stopped: set[str] = set()

    def spawn(self, name: str, factory: Callable[[], Actor]) -> ActorRef:
        """Create an actor; *factory* builds (and rebuilds) instances."""
        if name in self._factories:
            raise ParameterError(f"actor name {name!r} already in use")
        self._factories[name] = factory
        ref = ActorRef(name=name, system=self)
        self._instantiate(name, ref)
        self._mailboxes[name] = deque()
        return ref

    def _instantiate(self, name: str, ref: ActorRef) -> None:
        actor = self._factories[name]()
        actor.context = self
        actor.ref = ref
        self._actors[name] = actor

    def actor_of(self, name: str) -> ActorRef:
        """The ref for an existing actor name."""
        if name not in self._factories:
            raise ParameterError(f"no actor named {name!r}")
        return ActorRef(name=name, system=self)

    def tell(self, ref: ActorRef, message: Any, sender: ActorRef | None = None) -> None:
        """Convenience alias for ``ref.tell``."""
        ref.tell(message, sender=sender)

    def _enqueue(self, ref: ActorRef, envelope: Envelope) -> None:
        if ref.name in self._stopped:
            return  # dead letters
        mailbox = self._mailboxes.get(ref.name)
        if mailbox is None:
            raise ParameterError(f"no actor named {ref.name!r}")
        mailbox.append(envelope)

    def is_stopped(self, name: str) -> bool:
        """Whether supervision has permanently stopped *name*."""
        return name in self._stopped

    def run(self, max_messages: int = 1_000_000) -> int:
        """Deliver messages until all mailboxes drain; returns the count.

        Fair round-robin over actors, one message per turn — the
        cooperative analogue of Akka's dispatcher.
        """
        delivered = 0
        progress = True
        while progress:
            progress = False
            for name, mailbox in self._mailboxes.items():
                if not mailbox or name in self._stopped:
                    continue
                envelope = mailbox.popleft()
                self._deliver(name, envelope)
                delivered += 1
                progress = True
                if delivered >= max_messages:
                    raise ExecutionError(
                        f"exceeded {max_messages} messages (actor loop?)"
                    )
        return delivered

    def _deliver(self, name: str, envelope: Envelope) -> None:
        actor = self._actors[name]
        actor._current = envelope
        try:
            actor.receive(envelope.message, envelope.sender)
            self.processed += 1
        except Exception:
            actor.pre_restart()
            count = self._restart_counts.get(name, 0) + 1
            self._restart_counts[name] = count
            if count > self.max_restarts:
                self._stopped.add(name)
                self._mailboxes[name].clear()
            else:
                self.restarts += 1
                self._instantiate(name, ActorRef(name=name, system=self))
        finally:
            actor._current = None
