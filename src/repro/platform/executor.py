"""Single-process topology executor with selectable delivery semantics.

This is the library's stand-in for the clusters of Table 2, built so the
*semantics* of those systems can be exercised and measured in isolation:

* ``at_most_once``  — fire and forget (a dropped tuple is simply lost).
* ``at_least_once`` — Storm's model: XOR acker tracks each spout message's
  tuple tree; incomplete trees are failed and replayed, so every message is
  processed, possibly more than once.
* ``exactly_once``  — MillWheel/Flink's model: periodic consistent
  checkpoints of all operator state plus the source offset; any loss or
  crash triggers restore + replay from the last checkpoint, so observable
  state reflects each message exactly once.

The executor is deterministic (seeded shuffles, single-threaded), which
makes delivery-semantics experiments reproducible — the property the
bench suite depends on.
"""

from __future__ import annotations

import copy
import time
from collections import deque

from repro.common.exceptions import ExecutionError, ParameterError
from repro.platform.ack import Acker
from repro.platform.faults import FaultInjector, NO_FAULTS
from repro.platform.metrics import ExecutionMetrics
from repro.platform.topology import Spout, Topology
from repro.platform.tuples import StreamTuple, next_tuple_id

_SEMANTICS = ("at_most_once", "at_least_once", "exactly_once")


class _RecoveryTriggered(Exception):
    """Internal control flow: a loss forced checkpoint recovery, so all
    in-flight work for the current message must be abandoned (it will be
    replayed from the checkpointed source offset)."""


class LocalExecutor:
    """Runs a :class:`~repro.platform.topology.Topology` to completion."""

    def __init__(
        self,
        topology: Topology,
        semantics: str = "at_most_once",
        faults: FaultInjector | None = None,
        checkpoint_interval: int = 500,
        max_queue: int = 10_000,
        max_replays_per_message: int = 16,
    ):
        if semantics not in _SEMANTICS:
            raise ParameterError(f"semantics must be one of {_SEMANTICS}")
        if checkpoint_interval <= 0:
            raise ParameterError("checkpoint_interval must be positive")
        self.topology = topology
        self.semantics = semantics
        self.faults = faults or NO_FAULTS
        self.checkpoint_interval = checkpoint_interval
        self.max_queue = max_queue
        self.max_replays_per_message = max_replays_per_message
        self.metrics = ExecutionMetrics()

        # Instantiate components.
        self._spouts: dict[str, Spout] = {}
        self._bolts: dict[tuple[str, int], object] = {}
        for comp in topology.components.values():
            if comp.kind == "spout":
                self._spouts[comp.name] = comp.factory()
            else:
                for task in range(comp.parallelism):
                    bolt = comp.factory()
                    bolt.prepare(task, comp.parallelism)
                    self._bolts[(comp.name, task)] = bolt
        self._queues: dict[tuple[str, int], deque] = {
            key: deque() for key in self._bolts
        }
        self._acker = Acker() if semantics != "at_most_once" else None
        self._start_times: dict[int, float] = {}
        self._replay_counts: dict[int, int] = {}
        self._checkpoint: dict | None = None
        self._source_pulls = 0
        self._in_flush = False  # teardown flushes bypass fault injection

    # -- emission / routing ------------------------------------------------

    def _route(self, source: str, tup: StreamTuple) -> None:
        """Fan a tuple out to every consumer of *source* per its grouping."""
        for consumer, grouping in self.topology.consumers_of(source):
            comp = self.topology.components[consumer]
            for task in grouping.targets(tup, comp.parallelism):
                copy_tup = StreamTuple(
                    values=tup.values,
                    stream=tup.stream,
                    msg_id=tup.msg_id,
                    tuple_id=next_tuple_id(),
                    timestamp=tup.timestamp,
                )
                if self._acker is not None and copy_tup.msg_id is not None:
                    self._acker.anchor(copy_tup.msg_id, copy_tup.tuple_id)
                if not self._in_flush and self.faults.should_drop():
                    if self.semantics == "exactly_once":
                        # A loss is a task failure in this model: restore the
                        # last checkpoint and abandon the in-flight message
                        # (the rewound source will replay it).
                        self._recover()
                        raise _RecoveryTriggered
                    continue  # lost in transit
                self._queues[(consumer, task)].append(copy_tup)
                metrics = self.metrics.components[f"bolt:{consumer}"]
                depth = len(self._queues[(consumer, task)])
                metrics.queue_high_water = max(metrics.queue_high_water, depth)

    # -- spout side ----------------------------------------------------------

    def _pull_spout(self) -> bool:
        """Pull one payload from each non-throttled spout; True if any."""
        pulled = False
        throttled = any(len(q) >= self.max_queue for q in self._queues.values())
        if throttled:
            return False
        for name, spout in self._spouts.items():
            payload = spout.next_tuple()
            if payload is None:
                continue
            pulled = True
            self._source_pulls += 1
            msg_id = getattr(spout, "last_offset", self._source_pulls)
            root = StreamTuple(values=payload, msg_id=msg_id)
            self.metrics.components[f"spout:{name}"].emitted += 1
            if self._acker is not None:
                if msg_id not in self._start_times:
                    self._start_times[msg_id] = time.perf_counter()
                self._acker.register(msg_id, 0)
                # Registering with 0 then anchoring children tracks exactly
                # the set of live descendants.
            try:
                self._route(name, root)
            except _RecoveryTriggered:
                continue
            if (
                self.semantics == "exactly_once"
                and self._source_pulls % self.checkpoint_interval == 0
            ):
                self._take_checkpoint()
        return pulled

    # -- bolt side -----------------------------------------------------------

    def _process_one(self) -> bool:
        """Process one queued tuple (longest queue first); True if any."""
        target = max(self._queues, key=lambda k: len(self._queues[k]), default=None)
        if target is None or not self._queues[target]:
            return False
        name, task = target
        tup = self._queues[target].popleft()
        bolt = self._bolts[target]
        emitted: list[StreamTuple] = []

        def emit(*values):
            emitted.append(
                StreamTuple(values=values, msg_id=tup.msg_id, timestamp=tup.timestamp)
            )

        try:
            bolt.process(tup.values, emit)
        except Exception as exc:  # noqa: BLE001 - component errors are runtime
            raise ExecutionError(f"bolt {name!r} failed on {tup.values!r}") from exc
        self.metrics.components[f"bolt:{name}"].processed += 1
        try:
            for out in emitted:
                self.metrics.components[f"bolt:{name}"].emitted += 1
                self._route(name, out)
        except _RecoveryTriggered:
            return True
        if self._acker is not None and tup.msg_id is not None:
            done = self._acker.ack(tup.msg_id, tup.tuple_id)
            if done:
                self._complete(tup.msg_id)
        if self.faults.note_processed():
            self._crash()
        return True

    def _complete(self, msg_id: int) -> None:
        self.metrics.components["spout:__all__"].acked += 1
        started = self._start_times.pop(msg_id, None)
        if started is not None:
            self.metrics.record_latency(time.perf_counter() - started)
        for spout in self._spouts.values():
            spout.ack(msg_id)

    # -- failure handling ------------------------------------------------

    def _fail_pending(self) -> None:
        """Fail every incomplete tuple tree (idle-time timeout)."""
        assert self._acker is not None
        for msg_id in list(self._acker._pending):
            self._acker.fail(msg_id)
            self._start_times.pop(msg_id, None)
            self.metrics.components["spout:__all__"].failed += 1
            replays = self._replay_counts.get(msg_id, 0)
            if replays >= self.max_replays_per_message:
                continue  # give up: poisoned/unlucky message
            self._replay_counts[msg_id] = replays + 1
            self.metrics.replays += 1
            for spout in self._spouts.values():
                spout.fail(msg_id)

    def _take_checkpoint(self) -> None:
        """Consistent snapshot: drain in-flight work, then copy all state."""
        while self._process_one():
            pass
        self._checkpoint = {
            "bolts": {
                key: copy.deepcopy(bolt.snapshot()) for key, bolt in self._bolts.items()
            },
            "offsets": {name: spout.offset for name, spout in self._spouts.items()},
        }
        self.metrics.checkpoints += 1

    def _recover(self) -> None:
        """Restore the last checkpoint and rewind sources."""
        self.metrics.recoveries += 1
        for queue in self._queues.values():
            queue.clear()
        if self._acker is not None:
            self._acker = Acker()
        self._start_times.clear()
        if self._checkpoint is None:
            for key, bolt in self._bolts.items():
                bolt.restore(None)
            for spout in self._spouts.values():
                spout.rewind(0)
            return
        for key, bolt in self._bolts.items():
            bolt.restore(copy.deepcopy(self._checkpoint["bolts"][key]))
        for name, spout in self._spouts.items():
            spout.rewind(self._checkpoint["offsets"][name])

    def _crash(self) -> None:
        """Simulated worker crash."""
        if self.semantics == "exactly_once":
            self._recover()
        else:
            # Without checkpoints, a crash loses all in-flight tuples; bolt
            # state is assumed externally durable (e.g. a store), as in
            # Storm without Trident.
            for queue in self._queues.values():
                queue.clear()
            if self._acker is not None:
                self._fail_pending()

    # -- main loop -----------------------------------------------------------

    def run(self) -> ExecutionMetrics:
        """Execute until sources are exhausted and all work has settled."""
        started = time.perf_counter()
        idle_rounds = 0
        while True:
            progressed = self._pull_spout()
            # Interleave: drain a burst of queued work per pull.
            for __ in range(8):
                if not self._process_one():
                    break
                progressed = True
            if progressed:
                idle_rounds = 0
                continue
            # Nothing to pull, nothing queued: settle reliability state.
            if self._acker is not None and self._acker.n_pending:
                self._fail_pending()
                idle_rounds += 1
                if idle_rounds > 3:
                    break
                continue
            break
        # End-of-stream: let bolts flush buffered output (windows etc.).
        self._flush_bolts()
        self.metrics.wall_seconds = time.perf_counter() - started
        return self.metrics

    def _flush_bolts(self) -> None:
        # Flush in topological order so downstream bolts see upstream output.
        self._in_flush = True
        order = self._topological_bolt_order()
        for name in order:
            comp = self.topology.components[name]
            for task in range(comp.parallelism):
                bolt = self._bolts[(name, task)]
                emitted: list[StreamTuple] = []

                def emit(*values):
                    emitted.append(StreamTuple(values=values, msg_id=None))

                bolt.flush(emit)
                try:
                    for out in emitted:
                        self._route(name, out)
                except _RecoveryTriggered:
                    continue
                while self._process_one():
                    pass

    def _topological_bolt_order(self) -> list[str]:
        order: list[str] = []
        visited: set[str] = set()

        def visit(name: str) -> None:
            if name in visited:
                return
            visited.add(name)
            comp = self.topology.components[name]
            for src, __ in comp.inputs:
                if src in self.topology.bolt_names:
                    visit(src)
            order.append(name)

        for name in self.topology.bolt_names:
            visit(name)
        return order

    # -- inspection ------------------------------------------------------

    def bolt_instances(self, name: str) -> list:
        """The live bolt instances for component *name* (post-run state)."""
        comp = self.topology.components.get(name)
        if comp is None or comp.kind != "bolt":
            raise ParameterError(f"no bolt named {name!r}")
        return [self._bolts[(name, task)] for task in range(comp.parallelism)]
