"""Single-process topology executor with selectable delivery semantics.

This is the library's stand-in for the clusters of Table 2, built so the
*semantics* of those systems can be exercised and measured in isolation:

* ``at_most_once``  — fire and forget (a dropped tuple is simply lost).
* ``at_least_once`` — Storm's model: XOR acker tracks each spout message's
  tuple tree; incomplete trees are failed and replayed, so every message is
  processed, possibly more than once.
* ``exactly_once``  — MillWheel/Flink's model: periodic consistent
  checkpoints of all operator state plus the source offset; any loss or
  crash triggers restore + replay from the last checkpoint, so observable
  state reflects each message exactly once.

The executor is deterministic (seeded shuffles, single-threaded), which
makes delivery-semantics experiments reproducible — the property the
bench suite depends on.

Observability (``repro.obs``) threads through as a single optional
``obs=`` bundle: metrics publish into its registry (via the
:class:`~repro.platform.metrics.ExecutionMetrics` façade) and — when a
:class:`~repro.obs.tracing.TraceSampler` is configured — a deterministic
sample of spout messages is traced end-to-end. Each hop of a traced
tuple records a span (component, queue wait, process time, emit fan-out)
into the bundle's :class:`~repro.obs.tracing.SpanCollector`;
ack/fail/replay and checkpoint/recovery/crash lifecycle events are
recorded too. The collector lives outside checkpointed state, so spans
survive crash recovery, and because sampling is keyed on the spout
message id, replayed messages resume the *same* trace with a bumped
attempt number.
"""

from __future__ import annotations

import copy
import time
from collections import deque

from repro.common.exceptions import ExecutionError, ParameterError
from repro.obs.context import Observability
from repro.obs.tracing import Span, next_span_id
from repro.platform.ack import Acker
from repro.platform.faults import FaultInjector, NO_FAULTS
from repro.platform.metrics import ExecutionMetrics
from repro.platform.topology import Spout, Topology
from repro.platform.tuples import StreamTuple, next_tuple_id

_SEMANTICS = ("at_most_once", "at_least_once", "exactly_once")


def topological_bolt_order(topology) -> list[str]:
    """Bolts in dependency order (upstream first).

    The builder rejects cyclic topologies, but a hand-constructed
    :class:`~repro.platform.topology.Topology` can smuggle one in — and a
    DFS that only tracks *visited* would silently emit a wrong order for
    it. Track the recursion stack separately and fail loudly instead.
    Shared by the local executor and the cluster coordinator (flush
    ordering must agree between them).
    """
    order: list[str] = []
    done: set[str] = set()
    in_progress: set[str] = set()
    bolt_names = set(topology.bolt_names)

    def visit(name: str, path: list[str]) -> None:
        if name in done:
            return
        if name in in_progress:
            cycle = " -> ".join(path[path.index(name) :] + [name])
            raise ExecutionError(f"topology contains a cycle through bolts: {cycle}")
        in_progress.add(name)
        comp = topology.components[name]
        for src, __ in comp.inputs:
            if src in bolt_names:
                visit(src, path + [name])
        in_progress.discard(name)
        done.add(name)
        order.append(name)

    for name in topology.bolt_names:
        visit(name, [])
    return order


class _RecoveryTriggered(Exception):
    """Internal control flow: a loss forced checkpoint recovery, so all
    in-flight work for the current message must be abandoned (it will be
    replayed from the checkpointed source offset)."""


class LocalExecutor:
    """Runs a :class:`~repro.platform.topology.Topology` to completion."""

    def __init__(
        self,
        topology: Topology,
        semantics: str = "at_most_once",
        faults: FaultInjector | None = None,
        checkpoint_interval: int = 500,
        max_queue: int = 10_000,
        max_replays_per_message: int = 16,
        obs: Observability | None = None,
    ):
        if semantics not in _SEMANTICS:
            raise ParameterError(f"semantics must be one of {_SEMANTICS}")
        if checkpoint_interval <= 0:
            raise ParameterError("checkpoint_interval must be positive")
        self.topology = topology
        self.semantics = semantics
        self.faults = faults or NO_FAULTS
        self.checkpoint_interval = checkpoint_interval
        self.max_queue = max_queue
        self.max_replays_per_message = max_replays_per_message
        self.obs = obs
        self.metrics = ExecutionMetrics(
            registry=obs.registry if obs is not None else None
        )
        # Tracing shortcuts: both None when observability is off, so the
        # hot path pays one `is not None` check per hop.
        self._sampler = obs.sampler if obs is not None else None
        self._spans = obs.collector if obs is not None else None
        self._trace_attempts: dict[int, int] = {}  # msg_id -> emission count
        self._trace_roots: dict[int, Span] = {}  # msg_id -> root span (latest)

        # Instantiate components.
        self._spouts: dict[str, Spout] = {}
        self._bolts: dict[tuple[str, int], object] = {}
        for comp in topology.components.values():
            if comp.kind == "spout":
                self._spouts[comp.name] = comp.factory()
            else:
                for task in range(comp.parallelism):
                    bolt = comp.factory()
                    bolt.prepare(task, comp.parallelism)
                    self._bolts[(comp.name, task)] = bolt
        self._queues: dict[tuple[str, int], deque] = {
            key: deque() for key in self._bolts
        }
        self._acker = Acker() if semantics != "at_most_once" else None
        self._start_times: dict[int, float] = {}
        self._replay_counts: dict[int, int] = {}
        self._checkpoint: dict | None = None
        self._source_pulls = 0
        self._in_flush = False  # teardown flushes bypass fault injection

    # -- emission / routing ------------------------------------------------

    def _route(self, source: str, tup: StreamTuple) -> int:
        """Fan a tuple out to every consumer of *source* per its grouping.

        Returns the number of copies enqueued (the emit fan-out recorded
        on traced spans)."""
        fan_out = 0
        traced = tup.trace_id is not None
        for consumer, grouping in self.topology.consumers_of(source):
            comp = self.topology.components[consumer]
            for task in grouping.targets(tup, comp.parallelism):
                copy_tup = StreamTuple(
                    values=tup.values,
                    stream=tup.stream,
                    msg_id=tup.msg_id,
                    tuple_id=next_tuple_id(),
                    timestamp=tup.timestamp,
                    trace_id=tup.trace_id,
                    parent_span=tup.parent_span,
                    attempt=tup.attempt,
                    enqueued_at=time.perf_counter() if traced else 0.0,
                )
                if self._acker is not None and copy_tup.msg_id is not None:
                    self._acker.anchor(copy_tup.msg_id, copy_tup.tuple_id)
                if not self._in_flush and self.faults.should_drop():
                    if self.semantics == "exactly_once":
                        # A loss is a task failure in this model: restore the
                        # last checkpoint and abandon the in-flight message
                        # (the rewound source will replay it).
                        self._recover()
                        raise _RecoveryTriggered
                    continue  # lost in transit
                self._queues[(consumer, task)].append(copy_tup)
                fan_out += 1
                metrics = self.metrics.components[f"bolt:{consumer}"]
                depth = len(self._queues[(consumer, task)])
                metrics.queue_high_water = max(metrics.queue_high_water, depth)
        return fan_out

    # -- spout side ----------------------------------------------------------

    def _pull_spout(self) -> bool:
        """Pull one payload from each non-throttled spout; True if any."""
        pulled = False
        throttled = any(len(q) >= self.max_queue for q in self._queues.values())
        if throttled:
            return False
        for name, spout in self._spouts.items():
            payload = spout.next_tuple()
            if payload is None:
                continue
            pulled = True
            self._source_pulls += 1
            msg_id = getattr(spout, "last_offset", self._source_pulls)
            root = StreamTuple(values=payload, msg_id=msg_id)
            self.metrics.components[f"spout:{name}"].emitted += 1
            if self._acker is not None:
                if msg_id not in self._start_times:
                    self._start_times[msg_id] = time.perf_counter()
                self._acker.register(msg_id, 0)
                # Registering with 0 then anchoring children tracks exactly
                # the set of live descendants.
            root_span = None
            if self._sampler is not None and msg_id is not None:
                trace_id = self._sampler.sample(msg_id)
                if trace_id is not None:
                    attempt = self._trace_attempts.get(msg_id, 0) + 1
                    self._trace_attempts[msg_id] = attempt
                    root_span = Span(
                        trace_id=trace_id,
                        span_id=next_span_id(),
                        parent_id=None,
                        component=f"spout:{name}",
                        kind="spout_emit",
                        start=time.perf_counter(),
                        attempt=attempt,
                        msg_id=msg_id,
                    )
                    self._trace_roots[msg_id] = root_span
                    root.trace_id = trace_id
                    root.parent_span = root_span.span_id
                    root.attempt = attempt
            try:
                fan_out = self._route(name, root)
            except _RecoveryTriggered:
                continue
            finally:
                if root_span is not None:
                    # fan_out stays 0 when routing aborted into recovery.
                    root_span.duration = time.perf_counter() - root_span.start
                    self._spans.record(root_span)
            if root_span is not None:
                root_span.fan_out = fan_out
            if (
                self.semantics == "exactly_once"
                and self._source_pulls % self.checkpoint_interval == 0
            ):
                self._take_checkpoint()
        return pulled

    # -- bolt side -----------------------------------------------------------

    def _process_one(self) -> bool:
        """Process one queued tuple (longest queue first); True if any."""
        target = max(self._queues, key=lambda k: len(self._queues[k]), default=None)
        if target is None or not self._queues[target]:
            return False
        name, task = target
        tup = self._queues[target].popleft()
        bolt = self._bolts[target]
        emitted: list[StreamTuple] = []

        def emit(*values):
            emitted.append(
                StreamTuple(values=values, msg_id=tup.msg_id, timestamp=tup.timestamp)
            )

        span = None
        if tup.trace_id is not None and self._spans is not None:
            started = time.perf_counter()
            span = Span(
                trace_id=tup.trace_id,
                span_id=next_span_id(),
                parent_id=tup.parent_span,
                component=f"bolt:{name}",
                kind="process",
                start=started,
                queue_wait=max(0.0, started - tup.enqueued_at)
                if tup.enqueued_at
                else 0.0,
                attempt=tup.attempt,
                task=task,
                msg_id=tup.msg_id,
            )
        try:
            bolt.process(tup.values, emit)
        except Exception as exc:  # noqa: BLE001 - component errors are runtime
            raise ExecutionError(f"bolt {name!r} failed on {tup.values!r}") from exc
        if span is not None:
            span.duration = time.perf_counter() - span.start
            self._spans.record(span)
            for out in emitted:
                out.trace_id = tup.trace_id
                out.parent_span = span.span_id
                out.attempt = tup.attempt
        self.metrics.components[f"bolt:{name}"].processed += 1
        fan_out = 0
        try:
            for out in emitted:
                self.metrics.components[f"bolt:{name}"].emitted += 1
                fan_out += self._route(name, out)
        except _RecoveryTriggered:
            return True
        finally:
            if span is not None:
                span.fan_out = fan_out
        if self._acker is not None and tup.msg_id is not None:
            done = self._acker.ack(tup.msg_id, tup.tuple_id)
            if done:
                self._complete(tup.msg_id)
        if self.faults.note_processed():
            self._crash()
        return True

    def _complete(self, msg_id: int) -> None:
        self.metrics.components["spout:__all__"].acked += 1
        started = self._start_times.pop(msg_id, None)
        if started is not None:
            self.metrics.record_latency(time.perf_counter() - started)
        root_span = self._trace_roots.pop(msg_id, None)
        if root_span is not None and self._spans is not None:
            self._spans.record(
                Span(
                    trace_id=root_span.trace_id,
                    span_id=next_span_id(),
                    parent_id=root_span.span_id,
                    component="acker",
                    kind="ack",
                    start=time.perf_counter(),
                    attempt=root_span.attempt,
                    msg_id=msg_id,
                )
            )
        for spout in self._spouts.values():
            spout.ack(msg_id)

    # -- failure handling ------------------------------------------------

    def _trace_lifecycle(self, msg_id: int, kind: str) -> None:
        """Record a fail/replay span for *msg_id* if it is being traced."""
        root_span = self._trace_roots.get(msg_id)
        if root_span is None or self._spans is None:
            return
        self._spans.record(
            Span(
                trace_id=root_span.trace_id,
                span_id=next_span_id(),
                parent_id=root_span.span_id,
                component="acker",
                kind=kind,
                start=time.perf_counter(),
                attempt=root_span.attempt,
                msg_id=msg_id,
            )
        )

    def _event(self, kind: str, component: str = "executor") -> None:
        """Record a trace-less lifecycle event (checkpoint/recovery/crash)."""
        if self._spans is None:
            return
        self._spans.record(
            Span(
                trace_id=None,
                span_id=next_span_id(),
                parent_id=None,
                component=component,
                kind=kind,
                start=time.perf_counter(),
            )
        )

    def _fail_pending(self) -> None:
        """Fail every incomplete tuple tree (idle-time timeout)."""
        assert self._acker is not None
        for msg_id in list(self._acker._pending):
            self._acker.fail(msg_id)
            self._start_times.pop(msg_id, None)
            self.metrics.components["spout:__all__"].failed += 1
            self._trace_lifecycle(msg_id, "fail")
            replays = self._replay_counts.get(msg_id, 0)
            if replays >= self.max_replays_per_message:
                continue  # give up: poisoned/unlucky message
            self._replay_counts[msg_id] = replays + 1
            self.metrics.replays += 1
            self._trace_lifecycle(msg_id, "replay")
            for spout in self._spouts.values():
                spout.fail(msg_id)

    def _take_checkpoint(self) -> None:
        """Consistent snapshot: drain in-flight work, then copy all state."""
        while self._process_one():
            pass
        self._checkpoint = {
            "bolts": {
                key: copy.deepcopy(bolt.snapshot()) for key, bolt in self._bolts.items()
            },
            "offsets": {name: spout.offset for name, spout in self._spouts.items()},
        }
        self.metrics.checkpoints += 1
        self._event("checkpoint")

    def _recover(self) -> None:
        """Restore the last checkpoint and rewind sources."""
        self.metrics.recoveries += 1
        self._event("recovery")
        for queue in self._queues.values():
            queue.clear()
        if self._acker is not None:
            self._acker = Acker()
        self._start_times.clear()
        if self._checkpoint is None:
            for key, bolt in self._bolts.items():
                bolt.restore(None)
            for spout in self._spouts.values():
                spout.rewind(0)
            return
        for key, bolt in self._bolts.items():
            bolt.restore(copy.deepcopy(self._checkpoint["bolts"][key]))
        for name, spout in self._spouts.items():
            spout.rewind(self._checkpoint["offsets"][name])

    def _crash(self) -> None:
        """Simulated worker crash."""
        if self.semantics == "exactly_once":
            self._event("crash")
            self._recover()
        else:
            # Without checkpoints, a crash loses all in-flight tuples; bolt
            # state is assumed externally durable (e.g. a store), as in
            # Storm without Trident.
            self._event("crash")
            for queue in self._queues.values():
                queue.clear()
            if self._acker is not None:
                self._fail_pending()

    # -- main loop -----------------------------------------------------------

    def run_some(self, budget: int = 256) -> bool:
        """Advance the topology by a bounded burst of work (cooperative run).

        Pulls spouts and processes queued tuples until roughly *budget*
        tuples of work are done. Returns True while the run may still have
        work; False once sources are exhausted, queues are empty and
        reliability state has settled — after which :meth:`finish` flushes
        buffered bolt output exactly as :meth:`run` would.

        This is the serving layer's ingest path: queries interleave
        *between* bursts on one thread, so a snapshot capture always sees
        tuple-complete state — snapshot isolation by construction, with no
        locks on the hot path.
        """
        if budget <= 0:
            raise ParameterError("budget must be positive")
        work = 0
        idle_rounds = 0
        while work < budget:
            progressed = self._pull_spout()
            if progressed:
                work += 1
            while work < budget and self._process_one():
                progressed = True
                work += 1
            if progressed:
                idle_rounds = 0
                continue
            if self._acker is not None and self._acker.n_pending:
                self._fail_pending()
                idle_rounds += 1
                if idle_rounds > 3:
                    return False
                continue
            return False
        return True

    def finish(self) -> ExecutionMetrics:
        """End-of-stream flush for a stepped (:meth:`run_some`) run."""
        self._flush_bolts()
        return self.metrics

    def run(self) -> ExecutionMetrics:
        """Execute until sources are exhausted and all work has settled."""
        started = time.perf_counter()
        idle_rounds = 0
        while True:
            progressed = self._pull_spout()
            # Interleave: drain a burst of queued work per pull.
            for __ in range(8):
                if not self._process_one():
                    break
                progressed = True
            if progressed:
                idle_rounds = 0
                continue
            # Nothing to pull, nothing queued: settle reliability state.
            if self._acker is not None and self._acker.n_pending:
                self._fail_pending()
                idle_rounds += 1
                if idle_rounds > 3:
                    break
                continue
            break
        # End-of-stream: let bolts flush buffered output (windows etc.).
        self._flush_bolts()
        self.metrics.wall_seconds = time.perf_counter() - started
        return self.metrics

    def _flush_bolts(self) -> None:
        # Flush in topological order so downstream bolts see upstream output.
        self._in_flush = True
        order = self._topological_bolt_order()
        for name in order:
            comp = self.topology.components[name]
            for task in range(comp.parallelism):
                bolt = self._bolts[(name, task)]
                emitted: list[StreamTuple] = []

                def emit(*values):
                    emitted.append(StreamTuple(values=values, msg_id=None))

                bolt.flush(emit)
                try:
                    for out in emitted:
                        self._route(name, out)
                except _RecoveryTriggered:
                    continue
                while self._process_one():
                    pass

    def _topological_bolt_order(self) -> list[str]:
        return topological_bolt_order(self.topology)

    # -- inspection ------------------------------------------------------

    def bolt_instances(self, name: str) -> list:
        """The live bolt instances for component *name* (post-run state)."""
        comp = self.topology.components.get(name)
        if comp is None or comp.kind != "bolt":
            raise ParameterError(f"no bolt named {name!r}")
        return [self._bolts[(name, task)] for task in range(comp.parallelism)]

    def merged_synopsis(self, name: str):
        """Bolt *name*'s per-task synopses folded into one (merge-on-query).

        The single-process mirror of
        :meth:`repro.cluster.coordinator.ClusterExecutor.merged_synopsis`:
        each task's ``snapshot()`` (a deep copy, so the live bolts are
        untouched) merges in task order. Requires the bolt's snapshot
        state to be a mergeable synopsis, e.g.
        :class:`~repro.platform.operators.SynopsisBolt`.
        """
        from repro.common.mergeable import SynopsisBase

        partials = [bolt.snapshot() for bolt in self.bolt_instances(name)]
        if not all(isinstance(p, SynopsisBase) for p in partials):
            raise ParameterError(
                f"bolt {name!r} snapshot state is not a mergeable synopsis"
            )
        merged = partials[0]
        for partial in partials[1:]:
            merged.merge(partial)
        return merged
