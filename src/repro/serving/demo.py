"""The topology the serving demo/bench/smoke jobs put behind the server.

The obs demo topology (seeded Zipf word sentences → splitter → keyed
counter + synopsis bolt) widened for the serving layer: the served
:class:`~repro.core.summary.StreamSummary` adds an
:class:`~repro.quantiles.exact.ExactQuantiles` child over word lengths
(via an extractor), so every query kind the wire protocol speaks —
point, top-k, cardinality, quantile, range — has a synopsis to land on.
"""

from __future__ import annotations

from repro.obs.context import Observability
from repro.obs.demo import demo_records
from repro.platform.operators import CountBolt, FlatMapBolt, SynopsisBolt
from repro.platform.topology import ListSpout, Topology, TopologyBuilder

__all__ = ["demo_records", "build_serving_topology", "serving_summary"]

#: The served bolt's name (the default for ``repro-serving --bolt``).
SERVING_BOLT = "sketch"


def serving_summary():
    """The served summary: distinct / top-k / frequency / length quantiles."""
    from repro.cardinality.hyperloglog import HyperLogLog
    from repro.core.summary import StreamSummary
    from repro.frequency.count_min import CountMinSketch
    from repro.frequency.space_saving import SpaceSaving
    from repro.quantiles.exact import ExactQuantiles

    return StreamSummary(
        uniques=HyperLogLog(precision=12),
        topk=SpaceSaving(64),
        freq=CountMinSketch(width=1024, depth=4),
        lengths=ExactQuantiles(),
        extractors={"lengths": len},
    )


def build_serving_topology(
    records: list[tuple[str]], obs: Observability | None = None
) -> Topology:
    """words → split → {count (keyed, parallelism 2), sketch (served)}."""
    builder = TopologyBuilder()
    builder.set_spout("sentences", lambda: ListSpout(records))
    builder.set_bolt(
        "split",
        lambda: FlatMapBolt(lambda v: [(w,) for w in v[0].split()]),
    ).shuffle("sentences")
    builder.set_bolt("count", lambda: CountBolt(0), parallelism=2).fields("split", 0)
    builder.set_bolt(
        SERVING_BOLT,
        lambda: SynopsisBolt(serving_summary, batch_size=64),
    ).shuffle("split")
    return builder.build()
