"""The serving layer's TTL+LRU result cache.

Entries are keyed on ``(canonical query key, snapshot epoch)`` — the
Snippet-1 cache stage with one crucial twist: because the epoch is part
of the key, advancing the snapshot *is* the invalidation. A cached
answer can never outlive the frozen view it was computed from, so the
cache trades only staleness the snapshot policy already allows, never
correctness.

On top of epoch keying, every entry carries a TTL (expired entries are
evicted on touch, never served) and the whole table is LRU-bounded.
Hit / miss / eviction counters and the eviction reasons flow into a
:class:`~repro.obs.metrics.MetricRegistry`.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable

from repro.common.exceptions import ParameterError
from repro.obs.metrics import MetricRegistry, NULL_REGISTRY

#: Sentinel distinguishing "miss" from a cached ``None`` result.
MISS = object()


class ResultCache:
    """A TTL+LRU map from (query key, snapshot epoch) to results."""

    def __init__(
        self,
        capacity: int = 4096,
        ttl: float = 2.0,
        clock: Callable[[], float] | None = None,
        registry: MetricRegistry | None = None,
    ):
        if capacity <= 0:
            raise ParameterError("capacity must be positive")
        if ttl <= 0:
            raise ParameterError("ttl must be positive")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock if clock is not None else time.monotonic
        # key -> (expires_at, value); insertion/touch order is LRU order.
        self._entries: OrderedDict[tuple[str, int], tuple[float, Any]] = OrderedDict()
        registry = registry if registry is not None else NULL_REGISTRY
        self._hits = registry.counter(
            "serving_cache_hits_total", "Result-cache hits."
        )
        self._misses = registry.counter(
            "serving_cache_misses_total", "Result-cache misses."
        )
        self._evictions = registry.counter(
            "serving_cache_evictions_total",
            "Result-cache evictions by reason.",
            labelnames=("reason",),
        )

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[tuple[str, int]]:
        """Current keys in LRU order (oldest first) — pinned by tests."""
        return list(self._entries)

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _evict(self, key: tuple[str, int], reason: str) -> None:
        del self._entries[key]
        self._evictions.labels(reason=reason).inc()

    def get(self, key: str, epoch: int) -> Any:
        """The cached result, or :data:`MISS`.

        A hit refreshes the entry's LRU position. An entry past its TTL
        is evicted and reported as a miss — stale results are never
        served, even within the same epoch.
        """
        full_key = (key, epoch)
        entry = self._entries.get(full_key)
        if entry is None:
            self._misses.inc()
            return MISS
        expires_at, value = entry
        if self._clock() >= expires_at:
            self._evict(full_key, "expired")
            self._misses.inc()
            return MISS
        self._entries.move_to_end(full_key)
        self._hits.inc()
        return value

    def put(self, key: str, epoch: int, value: Any) -> None:
        """Cache *value*, evicting the LRU entry when over capacity."""
        full_key = (key, epoch)
        self._entries[full_key] = (self._clock() + self.ttl, value)
        self._entries.move_to_end(full_key)
        while len(self._entries) > self.capacity:
            self._evict(next(iter(self._entries)), "capacity")

    def purge(self, current_epoch: int | None = None) -> int:
        """Drop expired entries (and, given *current_epoch*, entries from
        older epochs — their snapshots can never be queried again).
        Returns the number evicted; keeps memory bounded between
        capacity evictions."""
        now = self._clock()
        dropped = 0
        for full_key, (expires_at, _value) in list(self._entries.items()):
            if now >= expires_at:
                self._evict(full_key, "expired")
                dropped += 1
            elif current_epoch is not None and full_key[1] < current_epoch:
                self._evict(full_key, "epoch")
                dropped += 1
        return dropped

    def clear(self) -> None:
        """Drop everything (counters keep their totals)."""
        self._entries.clear()
