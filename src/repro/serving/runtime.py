"""The serving runtime: executor + snapshots + cache + metrics.

One :class:`ServingRuntime` fronts one bolt of one live executor. Every
query resolves against a snapshot-isolated frozen view (refreshed
lazily when older than ``max_snapshot_age``), consults the epoch-keyed
TTL+LRU cache first, and reports itself through the shared
:mod:`repro.obs` registry: request counters by op and status, a latency
histogram (p50/p99 via the registry's t-digest), cache hit/miss/
eviction counters, and snapshot epoch/age gauges. The runtime also
speaks :class:`~repro.obs.health.HealthSnapshot`, so ``repro-obs top``
can watch a serving process exactly like a cluster run.

Ingest runs *underneath* the runtime, never blocked by it: a
:class:`~repro.platform.executor.LocalExecutor` is stepped
cooperatively (:meth:`ingest_step` from the server's event loop), a
:class:`~repro.cluster.coordinator.ClusterExecutor` pumps itself on a
background thread and services capture requests between rounds.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.common.exceptions import ParameterError
from repro.obs.health import HealthSnapshot
from repro.obs.metrics import MetricRegistry
from repro.serving.cache import MISS, ResultCache
from repro.serving.query import QueryError, parse_query
from repro.serving.snapshot import SnapshotStore

#: Default staleness bound: how old a served snapshot may grow before a
#: query forces a re-capture. The knob trades freshness against capture
#: cost — 0 means every cache-missing query sees the newest state.
DEFAULT_MAX_SNAPSHOT_AGE = 0.25


class ServingRuntime:
    """Snapshot-isolated, cached query handling over a live executor."""

    def __init__(
        self,
        executor: Any,
        bolt: str,
        *,
        cache_capacity: int = 4096,
        cache_ttl: float = 2.0,
        max_snapshot_age: float = DEFAULT_MAX_SNAPSHOT_AGE,
        registry: MetricRegistry | None = None,
        clock: Callable[[], float] | None = None,
    ):
        if max_snapshot_age < 0:
            raise ParameterError("max_snapshot_age must be >= 0")
        self.executor = executor
        self.bolt = bolt
        self.max_snapshot_age = max_snapshot_age
        if registry is None:
            obs = getattr(executor, "obs", None)
            registry = obs.registry if obs is not None else MetricRegistry()
        self.registry = registry
        self._clock = clock if clock is not None else time.monotonic
        self.store = SnapshotStore(executor, bolt, clock=self._clock, registry=registry)
        self.cache = ResultCache(
            capacity=cache_capacity,
            ttl=cache_ttl,
            clock=self._clock,
            registry=registry,
        )
        self.cache_enabled = True
        self._requests = registry.counter(
            "serving_requests_total",
            "Serving requests by op and status.",
            labelnames=("op", "status"),
        )
        self._latency = registry.histogram(
            "serving_request_seconds", "End-to-end query handling latency."
        )
        # Cluster captures block briefly on the pump; local captures must
        # run on the loop thread. The flag tells the server which to do.
        self.blocking_capture = hasattr(executor, "capture_shards")
        self._lock = threading.Lock()
        self._ingest_thread: threading.Thread | None = None
        self._ingest_error: BaseException | None = None
        self._ingest_done = not self.blocking_capture
        self._started_clock = self._clock()
        self._health_seq = 0

    # -- query handling ---------------------------------------------

    def handle(self, doc: Any) -> dict[str, Any]:
        """Answer one wire query document.

        Raises :class:`~repro.serving.query.QueryError` on a malformed
        or unresolvable query (the server maps it to HTTP 400); every
        request, good or bad, is counted and timed.
        """
        start = self._clock()
        op = doc.get("op") if isinstance(doc, dict) else None
        try:
            with self._lock:
                query = parse_query(doc)
                snapshot = self.store.ensure(self.max_snapshot_age)
                key = query.key()
                cached = True
                result = (
                    self.cache.get(key, snapshot.epoch)
                    if self.cache_enabled
                    else MISS
                )
                if result is MISS:
                    cached = False
                    result = query.resolve(snapshot.synopsis)
                    if self.cache_enabled:
                        self.cache.put(key, snapshot.epoch, result)
        except QueryError:
            self._count(op, "error", start)
            raise
        self._count(query.op, "ok", start)
        return {
            "ok": True,
            "op": query.op,
            "result": result,
            "epoch": snapshot.epoch,
            "snapshot_age_s": snapshot.age(self._clock()),
            "cached": cached,
        }

    def _count(self, op: Any, status: str, start: float) -> None:
        self._requests.labels(op=str(op), status=status).inc()
        self._latency.observe(self._clock() - start)

    def refresh(self) -> dict[str, Any]:
        """Force a snapshot capture (``POST /refresh``); purge the cache
        of entries the new epoch strands."""
        with self._lock:
            snapshot = self.store.refresh()
            purged = self.cache.purge(current_epoch=snapshot.epoch)
        return {"ok": True, "epoch": snapshot.epoch, "purged": purged}

    # -- ingest -----------------------------------------------------

    def start_ingest(self) -> None:
        """Start ingest underneath the server.

        Cluster executors run on a daemon thread (their pump services
        snapshot captures between rounds); local executors are stepped
        by the caller via :meth:`ingest_step` instead.
        """
        if not self.blocking_capture:
            self._ingest_done = False
            return
        if self._ingest_thread is not None:
            return

        def _run() -> None:
            try:
                self.executor.run()
            except BaseException as exc:  # surfaced via ingest_error
                self._ingest_error = exc
            finally:
                self._ingest_done = True

        self._ingest_thread = threading.Thread(
            target=_run, name="serving-ingest", daemon=True
        )
        self._ingest_thread.start()

    def ingest_step(self, budget: int = 256) -> bool:
        """Advance local ingest by one bounded burst.

        Returns False once the stream is exhausted (and flushes the
        topology exactly once). No-op under a cluster executor.
        """
        if self.blocking_capture or self._ingest_done:
            return False
        if self.executor.run_some(budget):
            return True
        self.executor.finish()
        self._ingest_done = True
        return False

    @property
    def ingest_done(self) -> bool:
        """True once the source is exhausted and flushed."""
        return self._ingest_done

    @property
    def ingest_error(self) -> BaseException | None:
        """The exception that killed background ingest, if any."""
        return self._ingest_error

    def join_ingest(self, timeout: float | None = None) -> None:
        """Wait for background (cluster) ingest to finish."""
        if self._ingest_thread is not None:
            self._ingest_thread.join(timeout)

    # -- introspection ----------------------------------------------

    def _source_frontier(self) -> float:
        total = 0
        for comp in self.executor.topology.components.values():
            if comp.kind == "spout":
                total += self.executor.metrics.components[
                    f"spout:{comp.name}"
                ].emitted
        return float(total)

    def stats(self) -> dict[str, Any]:
        """A JSON-ready runtime status document (``GET /stats``)."""
        requests = sum(int(s.value) for s in self._requests.samples())
        return {
            "ok": True,
            "bolt": self.bolt,
            "epoch": self.store.epoch,
            "snapshot_age_s": self.store.age() if self.store.current() else None,
            "requests": requests,
            "latency_p50_s": self._latency.quantile(0.5),
            "latency_p99_s": self._latency.quantile(0.99),
            "cache": {
                "enabled": self.cache_enabled,
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_ratio": self.cache.hit_ratio(),
            },
            "ingest": {
                "done": self._ingest_done,
                "source_frontier": self._source_frontier(),
            },
            "uptime_s": self._clock() - self._started_clock,
        }

    def health_snapshot(self, reason: str = "serving") -> HealthSnapshot:
        """The runtime's state as a :class:`HealthSnapshot`, so
        ``repro-obs top`` renders a serving process like a cluster."""
        self._health_seq += 1
        stats = self.stats()
        return HealthSnapshot(
            seq=self._health_seq,
            clock=self._clock(),
            reason=reason,
            watermark_unit="offset",
            source_frontier=stats["ingest"]["source_frontier"],
            backpressure_waits=int(self.executor.metrics.backpressure_waits),
            latency_p50_s=stats["latency_p50_s"],
            latency_p99_s=stats["latency_p99_s"],
            serving={
                "epoch": stats["epoch"],
                "snapshot_age_s": stats["snapshot_age_s"] or 0.0,
                "requests": stats["requests"],
                "cache_entries": stats["cache"]["entries"],
                "cache_hits": stats["cache"]["hits"],
                "cache_misses": stats["cache"]["misses"],
                "cache_hit_ratio": stats["cache"]["hit_ratio"],
            },
        )
