"""``python -m repro.serving`` — the serving-layer CLI."""

from repro.serving.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
