"""The asyncio HTTP/JSON front of the serving layer.

Stdlib-only (``asyncio`` streams, no web framework): a minimal
HTTP/1.1 server with keep-alive, serving

* ``POST /query``   — answer one JSON query (:mod:`repro.serving.query`)
* ``POST /refresh`` — force a snapshot capture (epoch advance)
* ``GET  /stats``   — runtime status JSON
* ``GET  /healthz`` — liveness probe
* ``GET  /metrics`` — Prometheus text exposition of the obs registry

Ingest shares the process: local executors are stepped cooperatively on
the same event loop (one bounded ``run_some`` burst per scheduling
slot, so queries interleave with ingest instead of waiting for it), and
cluster executors pump on their own thread with snapshot captures
punted to the default thread pool — the loop itself never blocks.

Shutdown is clean by construction: client tasks are tracked and
awaited, the ingest task is cancelled, and :meth:`ServingServer.stop`
returns only when nothing is left running — the property the CI smoke
job asserts (no leaked tasks, no leaked shm segments).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.obs.exporters import to_prometheus
from repro.serving.query import QueryError
from repro.serving.runtime import ServingRuntime

#: Refuse larger request bodies (we only ever expect small JSON).
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _response(
    status: int, body: bytes, content_type: str, keep_alive: bool
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, doc: Any, keep_alive: bool) -> bytes:
    body = (json.dumps(doc) + "\n").encode("utf-8")
    return _response(status, body, "application/json", keep_alive)


class ServingServer:
    """One serving runtime behind an asyncio HTTP endpoint."""

    def __init__(
        self,
        runtime: ServingRuntime,
        host: str = "127.0.0.1",
        port: int = 0,
        ingest_budget: int = 256,
    ):
        self.runtime = runtime
        self.host = host
        self.port = port  # 0 = ephemeral; the bound port after start()
        self.ingest_budget = ingest_budget
        self._server: asyncio.base_events.Server | None = None
        self._clients: set[asyncio.Task] = set()
        self._ingest_task: asyncio.Task | None = None

    # -- lifecycle --------------------------------------------------

    async def start(self, ingest: bool = True) -> None:
        """Bind the socket and (optionally) start ingest underneath."""
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if ingest:
            self.runtime.start_ingest()
            if not self.runtime.blocking_capture:
                self._ingest_task = asyncio.ensure_future(self._ingest_loop())

    async def _ingest_loop(self) -> None:
        """Step local ingest one bounded burst per loop slot."""
        while self.runtime.ingest_step(self.ingest_budget):
            await asyncio.sleep(0)

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until *stop* is set, then shut down cleanly."""
        await stop.wait()
        await self.stop()

    async def stop(self) -> None:
        """Close the socket, finish clients, cancel ingest — leak-free."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._ingest_task is not None:
            self._ingest_task.cancel()
            try:
                await self._ingest_task
            except asyncio.CancelledError:
                pass
            self._ingest_task = None
        for task in list(self._clients):
            task.cancel()
        if self._clients:
            await asyncio.gather(*self._clients, return_exceptions=True)
        self._clients.clear()

    # -- request handling -------------------------------------------

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
        try:
            await self._client_loop(reader, writer)
        except (
            asyncio.CancelledError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
            if task is not None:
                self._clients.discard(task)

    async def _client_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1").split()
            if len(parts) != 3:
                writer.write(
                    _json_response(400, {"ok": False, "error": "bad request"}, False)
                )
                await writer.drain()
                return
            method, path, version = parts
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > MAX_BODY_BYTES:
                writer.write(
                    _json_response(413, {"ok": False, "error": "body too large"}, False)
                )
                await writer.drain()
                return
            body = await reader.readexactly(length) if length else b""
            keep_alive = (
                headers.get("connection", "").lower() != "close"
                and version != "HTTP/1.0"
            )
            response = await self._dispatch(method, path, body, keep_alive)
            writer.write(response)
            await writer.drain()
            if not keep_alive:
                return

    async def _dispatch(
        self, method: str, path: str, body: bytes, keep_alive: bool
    ) -> bytes:
        path = path.split("?", 1)[0]
        if path == "/query":
            if method != "POST":
                return _json_response(
                    405, {"ok": False, "error": "POST only"}, keep_alive
                )
            try:
                doc = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                return _json_response(
                    400, {"ok": False, "error": "body is not valid JSON"}, keep_alive
                )
            try:
                if self.runtime.blocking_capture:
                    # Cluster captures wait on the pump; keep the loop free.
                    result = await asyncio.get_event_loop().run_in_executor(
                        None, self.runtime.handle, doc
                    )
                else:
                    result = self.runtime.handle(doc)
            except QueryError as exc:
                return _json_response(
                    400, {"ok": False, "error": str(exc)}, keep_alive
                )
            except Exception as exc:  # keep serving other clients
                return _json_response(
                    500,
                    {"ok": False, "error": f"internal error: {exc}"},
                    keep_alive,
                )
            return _json_response(200, result, keep_alive)
        if path == "/refresh":
            if method != "POST":
                return _json_response(
                    405, {"ok": False, "error": "POST only"}, keep_alive
                )
            if self.runtime.blocking_capture:
                result = await asyncio.get_event_loop().run_in_executor(
                    None, self.runtime.refresh
                )
            else:
                result = self.runtime.refresh()
            return _json_response(200, result, keep_alive)
        if path == "/stats":
            return _json_response(200, self.runtime.stats(), keep_alive)
        if path == "/healthz":
            return _json_response(
                200,
                {"ok": True, "epoch": self.runtime.store.epoch},
                keep_alive,
            )
        if path == "/metrics":
            text = to_prometheus(self.runtime.registry)
            return _response(
                200, text.encode("utf-8"), "text/plain; version=0.0.4", keep_alive
            )
        return _json_response(
            404, {"ok": False, "error": f"no route {path!r}"}, keep_alive
        )
