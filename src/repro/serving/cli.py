"""``repro-serving`` / ``python -m repro.serving`` entry point.

Boots the demo topology (seeded Zipf word sentences → split → sketch
summary) under either executor, fronts it with a
:class:`~repro.serving.server.ServingServer`, prints the bound
endpoint, and serves until the duration elapses (or forever). Pair it
with ``repro-obs top --snapshots <health-log> --once`` to render the
serving health view, or just curl it::

    repro-serving --records 20000 --port 8787 &
    curl -s localhost:8787/query -d '{"op": "topk", "k": 3, "synopsis": "topk"}'
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro.obs.context import Observability
from repro.serving.demo import build_serving_topology, demo_records
from repro.serving.runtime import DEFAULT_MAX_SNAPSHOT_AGE, ServingRuntime
from repro.serving.server import ServingServer


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serving`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serving",
        description="Serve point/range/top-k/cardinality queries over a "
        "live demo topology.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (default: ephemeral)"
    )
    parser.add_argument(
        "--records",
        type=int,
        default=20_000,
        help="source sentences to ingest (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload seed (default: %(default)s)"
    )
    parser.add_argument(
        "--executor",
        choices=("local", "cluster"),
        default="local",
        help="run the topology in-process or across worker processes",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="cluster workers (default: %(default)s)",
    )
    parser.add_argument(
        "--transport",
        choices=("shm", "queue"),
        default="shm",
        help="cluster data plane (default: %(default)s)",
    )
    parser.add_argument(
        "--bolt",
        default="sketch",
        help="which bolt's merged synopsis to serve (default: %(default)s)",
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=4096, help="result-cache entries"
    )
    parser.add_argument(
        "--cache-ttl", type=float, default=2.0, help="result-cache TTL seconds"
    )
    parser.add_argument(
        "--max-snapshot-age",
        type=float,
        default=DEFAULT_MAX_SNAPSHOT_AGE,
        help="staleness bound before a query re-captures (default: %(default)s)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for N seconds then exit cleanly (default: forever)",
    )
    parser.add_argument(
        "--health-log",
        metavar="PATH",
        default=None,
        help="append serving HealthSnapshot JSON lines here "
        "(render with `repro-obs top --snapshots PATH`)",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        default=0.5,
        help="health-log flush period seconds (default: %(default)s)",
    )
    return parser


def build_runtime(args: argparse.Namespace) -> ServingRuntime:
    """The demo topology under the requested executor, serving-ready."""
    records = demo_records(args.records, args.seed)
    obs = Observability.create(sample_rate=0.0, seed=args.seed)
    topology = build_serving_topology(records, obs)
    if args.executor == "cluster":
        from repro.cluster.coordinator import ClusterExecutor

        executor = ClusterExecutor(
            topology,
            n_workers=args.workers,
            semantics="at_least_once",
            obs=obs,
            transport=args.transport,
        )
    else:
        from repro.platform.executor import LocalExecutor

        executor = LocalExecutor(topology, semantics="at_least_once", obs=obs)
    return ServingRuntime(
        executor,
        args.bolt,
        cache_capacity=args.cache_capacity,
        cache_ttl=args.cache_ttl,
        max_snapshot_age=args.max_snapshot_age,
        registry=obs.registry,
    )


async def _health_writer(
    runtime: ServingRuntime, path: Path, interval: float
) -> None:
    with path.open("a", encoding="utf-8") as fh:
        while True:
            snapshot = runtime.health_snapshot()
            fh.write(json.dumps(snapshot.to_dict()) + "\n")
            fh.flush()
            await asyncio.sleep(interval)


async def _serve(args: argparse.Namespace) -> int:
    runtime = build_runtime(args)
    server = ServingServer(runtime, host=args.host, port=args.port)
    await server.start()
    print(f"serving http://{args.host}:{server.port}  (bolt={args.bolt!r})")
    sys.stdout.flush()
    health_task = None
    if args.health_log:
        health_task = asyncio.ensure_future(
            _health_writer(runtime, Path(args.health_log), args.health_interval)
        )
    try:
        if args.duration is not None:
            await asyncio.sleep(args.duration)
        else:
            await asyncio.Event().wait()  # until interrupted
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        if health_task is not None:
            health_task.cancel()
            try:
                await health_task
            except asyncio.CancelledError:
                pass
        await server.stop()
        if runtime.blocking_capture:
            runtime.join_ingest(timeout=10.0)
            runtime.executor.close()
    if runtime.ingest_error is not None:
        print(f"ingest failed: {runtime.ingest_error}", file=sys.stderr)
        return 1
    stats = runtime.stats()
    print(
        f"served {stats['requests']} requests  epoch {stats['epoch']}  "
        f"cache hit ratio {stats['cache']['hit_ratio'] * 100:.1f}%"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Run the serving demo server."""
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
