"""Snapshot-isolated reads for the serving layer.

A query must see one consistent frozen view of the stream — never a
synopsis mid-update, never shard A at tuple 900 merged with shard B at
tuple 1100 — and taking that view must not stall ingest. Both executors
already have the machinery:

* :class:`~repro.platform.executor.LocalExecutor` runs cooperatively
  (:meth:`run_some` bursts share the event loop with queries), so a
  capture between bursts is automatically tuple-consistent.
* :class:`~repro.cluster.coordinator.ClusterExecutor.capture_shards`
  queues a capture request that the pump services at a drained,
  consistent point while ingest proceeds underneath.

Either way the shards cross into the serving layer as
:mod:`repro.core.stateship` payloads — the same self-describing bytes
checkpoints and recovery use — and are folded merge-on-query into one
queryable synopsis. The payload bytes are kept on the
:class:`Snapshot`, so a test (or an auditor) can re-query the captured
state offline and demand bit-identical answers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.core import stateship
from repro.obs.metrics import MetricRegistry, NULL_REGISTRY


def capture_payloads(executor: Any, bolt: str) -> list[bytes]:
    """Bolt *bolt*'s shard snapshots as stateship payloads, task order.

    Cluster executors ship them from the workers via
    ``capture_shards``; local executors capture in-process — each
    payload is ``stateship.capture({"state": shard_snapshot})``, the
    exact framing the cluster workers use, so downstream handling is
    executor-agnostic.
    """
    if hasattr(executor, "capture_shards"):
        return executor.capture_shards(bolt)
    return [
        stateship.capture({"state": instance.snapshot()})
        for instance in executor.bolt_instances(bolt)
    ]


def merge_payloads(payloads: list[bytes]) -> Any:
    """Fold shard payloads into one queryable synopsis (merge-on-query)."""
    if not payloads:
        raise ParameterError("no shard payloads to merge")
    partials = [stateship.restore(payload)["state"] for payload in payloads]
    if not all(isinstance(p, SynopsisBase) for p in partials):
        raise ParameterError("captured shard state is not a mergeable synopsis")
    merged = partials[0]
    for partial in partials[1:]:
        merged.merge(partial)
    return merged


@dataclass(frozen=True)
class Snapshot:
    """One frozen, epoch-stamped view of a bolt's merged state."""

    epoch: int
    captured_at: float  # clock seconds (monotonic unless a clock is injected)
    payloads: tuple[bytes, ...]  # per-shard stateship bytes, task order
    synopsis: Any  # the merged, queryable fold of `payloads`

    def age(self, now: float) -> float:
        """Seconds since capture, given the store's current clock."""
        return max(0.0, now - self.captured_at)


class SnapshotStore:
    """Epoch-stamped snapshot captures of one bolt on one executor.

    The store owns the serving layer's epoch counter: every
    :meth:`refresh` captures a new frozen view and bumps the epoch,
    which (via epoch-keyed caching) atomically invalidates every result
    computed from the previous view.
    """

    def __init__(
        self,
        executor: Any,
        bolt: str,
        clock: Callable[[], float] | None = None,
        registry: MetricRegistry | None = None,
    ):
        self.executor = executor
        self.bolt = bolt
        self._clock = clock if clock is not None else time.monotonic
        self._current: Snapshot | None = None
        registry = registry if registry is not None else NULL_REGISTRY
        self._captures = registry.counter(
            "serving_snapshots_total", "Snapshot captures taken."
        )
        self._epoch_gauge = registry.gauge(
            "serving_snapshot_epoch", "Current snapshot epoch."
        )
        self._age_gauge = registry.gauge(
            "serving_snapshot_age_seconds",
            "Age of the served snapshot at last refresh check.",
        )

    @property
    def epoch(self) -> int:
        """The current snapshot's epoch (0 before the first capture)."""
        return self._current.epoch if self._current is not None else 0

    def current(self) -> Snapshot | None:
        """The live snapshot, if one has been captured."""
        return self._current

    def age(self) -> float:
        """Seconds since the current snapshot was captured (inf if none)."""
        if self._current is None:
            return float("inf")
        age = self._current.age(self._clock())
        self._age_gauge.set(age)
        return age

    def refresh(self) -> Snapshot:
        """Capture a fresh frozen view and advance the epoch."""
        payloads = tuple(capture_payloads(self.executor, self.bolt))
        snapshot = Snapshot(
            epoch=self.epoch + 1,
            captured_at=self._clock(),
            payloads=payloads,
            synopsis=merge_payloads(list(payloads)),
        )
        self._current = snapshot
        self._captures.inc()
        self._epoch_gauge.set(snapshot.epoch)
        self._age_gauge.set(0.0)
        return snapshot

    def ensure(self, max_age: float) -> Snapshot:
        """The current snapshot, refreshed if older than *max_age*."""
        if self._current is None or self.age() > max_age:
            return self.refresh()
        return self._current
