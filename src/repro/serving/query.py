"""The serving layer's query model.

A query arrives as a JSON document, is validated into an immutable
:class:`Query`, and resolves against a synopsis by duck-typing the
library's query surfaces: ``estimate(item)`` for point frequency,
``top(k)`` for heavy hitters, no-arg ``estimate()`` for cardinality,
``quantile(q)`` / ``rank(value)`` for quantile and range counts. A
``synopsis`` field navigates into a :class:`~repro.core.summary.
StreamSummary` child, so one bolt can serve every query kind.

The canonical :meth:`Query.key` (sorted-key JSON of the normalized
fields) is the cache key — two wire documents that mean the same query
hit the same cache line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.common.exceptions import ParameterError

#: Supported query operations, in documentation order.
OPS = ("point", "topk", "cardinality", "quantile", "range")


class QueryError(ParameterError):
    """A malformed or unresolvable query (maps to HTTP 400)."""


@dataclass(frozen=True)
class Query:
    """One validated serving-layer query."""

    op: str
    synopsis: str | None = None
    item: Any = None
    k: int | None = None
    q: float | None = None
    lo: Any = None
    hi: Any = None

    def to_dict(self) -> dict[str, Any]:
        """The normalized JSON-ready form (only the fields the op uses)."""
        doc: dict[str, Any] = {"op": self.op}
        if self.synopsis is not None:
            doc["synopsis"] = self.synopsis
        if self.op == "point":
            doc["item"] = self.item
        elif self.op == "topk":
            doc["k"] = self.k
        elif self.op == "quantile":
            doc["q"] = self.q
        elif self.op == "range":
            doc["lo"] = self.lo
            doc["hi"] = self.hi
        return doc

    def key(self) -> str:
        """The canonical cache key for this query."""
        return json.dumps(self.to_dict(), sort_keys=True, default=str)

    # -- resolution -------------------------------------------------

    def _target(self, synopsis: Any) -> Any:
        if self.synopsis is None:
            return synopsis
        try:
            return synopsis[self.synopsis]
        except (TypeError, KeyError, ParameterError):
            raise QueryError(
                f"no synopsis named {self.synopsis!r} in the served summary"
            ) from None

    def _surface(self, target: Any, method: str) -> Any:
        fn = getattr(target, method, None)
        if fn is None:
            raise QueryError(
                f"synopsis {type(target).__name__} does not support "
                f"{self.op!r} queries (no {method}())"
            )
        return fn

    def resolve(self, synopsis: Any) -> Any:
        """Answer this query against *synopsis* (a frozen snapshot).

        Returns a JSON-ready value; raises :class:`QueryError` when the
        synopsis lacks the needed query surface.
        """
        target = self._target(synopsis)
        try:
            if self.op == "point":
                return int(self._surface(target, "estimate")(self.item))
            if self.op == "topk":
                return [
                    [item, int(count)]
                    for item, count in self._surface(target, "top")(self.k)
                ]
            if self.op == "cardinality":
                return float(self._surface(target, "estimate")())
            if self.op == "quantile":
                fn = self._surface(target, "quantile")
                try:
                    return fn(self.q)
                except QueryError:
                    raise
                except ParameterError:
                    # q was validated at parse time, so the surface can
                    # only object to an empty stream — a freshly-started
                    # snapshot. "No data yet" is an answer, not an error.
                    return None
            if self.op == "range":
                rank = self._surface(target, "rank")
                return int(rank(self.hi)) - int(rank(self.lo))
        except QueryError:
            raise
        except TypeError as exc:
            # e.g. a point query against HyperLogLog's no-arg estimate().
            raise QueryError(
                f"synopsis {type(target).__name__} does not support "
                f"{self.op!r} queries: {exc}"
            ) from None
        except ParameterError as exc:
            # Any other synopsis-side objection is the query's fault
            # (HTTP 400), never a connection-killing server fault.
            raise QueryError(str(exc)) from None
        raise QueryError(f"unknown op {self.op!r}")  # pragma: no cover


def _require(doc: dict[str, Any], field: str) -> Any:
    if field not in doc:
        raise QueryError(f"{doc.get('op')!r} query needs a {field!r} field")
    return doc[field]


def parse_query(doc: Any) -> Query:
    """Validate a wire JSON document into a :class:`Query`."""
    if not isinstance(doc, dict):
        raise QueryError("query body must be a JSON object")
    op = doc.get("op")
    if op not in OPS:
        raise QueryError(f"op must be one of {OPS}, got {op!r}")
    synopsis = doc.get("synopsis")
    if synopsis is not None and not isinstance(synopsis, str):
        raise QueryError("synopsis must be a string (a StreamSummary child)")
    if op == "point":
        return Query(op=op, synopsis=synopsis, item=_require(doc, "item"))
    if op == "topk":
        k = _require(doc, "k")
        if not isinstance(k, int) or isinstance(k, bool) or k <= 0:
            raise QueryError("k must be a positive integer")
        return Query(op=op, synopsis=synopsis, k=k)
    if op == "cardinality":
        return Query(op=op, synopsis=synopsis)
    if op == "quantile":
        q = _require(doc, "q")
        if not isinstance(q, (int, float)) or isinstance(q, bool) or not 0 <= q <= 1:
            raise QueryError("q must be a number in [0, 1]")
        return Query(op=op, synopsis=synopsis, q=float(q))
    lo, hi = _require(doc, "lo"), _require(doc, "hi")
    return Query(op=op, synopsis=synopsis, lo=lo, hi=hi)
