"""The serving layer: a real-time query front-end over live topologies.

The Lambda Architecture's third box (PAPER.md Figure 1): batch and speed
layers maintain views, the *serving layer* answers low-latency queries
against them for many concurrent users. Here the views are the
topology's merged synopses, and the pieces are:

* :mod:`repro.serving.query` — the JSON query model: point / range /
  top-k / cardinality / quantile lookups resolved against a synopsis.
* :mod:`repro.serving.snapshot` — snapshot-isolated reads: shard state
  captured through :mod:`repro.core.stateship` into a frozen epoch so
  queries never block or tear concurrent ingest.
* :mod:`repro.serving.cache` — the TTL+LRU result cache keyed on
  (query, snapshot epoch), the Snippet-1 "Redis-style" cache stage.
* :mod:`repro.serving.runtime` — ties executor + snapshots + cache +
  metrics into one query-handling runtime.
* :mod:`repro.serving.server` — the asyncio HTTP/JSON server
  (stdlib streams only) with ``/query``, ``/metrics``, ``/healthz``.
* :mod:`repro.serving.cli` — ``repro-serving`` / ``python -m
  repro.serving``.
"""

from repro.serving.cache import MISS, ResultCache
from repro.serving.query import Query, QueryError, parse_query
from repro.serving.runtime import ServingRuntime
from repro.serving.server import ServingServer
from repro.serving.snapshot import (
    Snapshot,
    SnapshotStore,
    capture_payloads,
    merge_payloads,
)

__all__ = [
    "MISS",
    "Query",
    "QueryError",
    "ResultCache",
    "ServingRuntime",
    "ServingServer",
    "Snapshot",
    "SnapshotStore",
    "capture_payloads",
    "merge_payloads",
    "parse_query",
]
