"""``python -m repro.serving.smoke`` — the CI serving-smoke gate.

Boots the serving demo topology behind the asyncio server on an
ephemeral port, fires one seeded closed-loop query burst at it while
ingest runs underneath, and exits non-zero unless every contract holds:

* zero query errors across the burst;
* a **non-zero cache hit count** (the seeded Zipf mix must re-ask);
* clean shutdown — no pending asyncio tasks survive ``stop()``;
* under ``--executor cluster``, background ingest finishes without an
  error; under ``--transport shm``, no ``repro_shm_*`` segment leaks.

``--health-log`` appends a final :class:`HealthSnapshot` as JSON lines,
so CI can render the run through ``repro-obs top --snapshots --once``
and upload the dashboard text as an artifact.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro.serving.cli import build_runtime
from repro.serving.demo import SERVING_BOLT
from repro.serving.runtime import ServingRuntime
from repro.serving.server import ServingServer
from repro.workloads.serving import WorkloadResult, run_closed_loop


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the serving-smoke gate."""
    parser = argparse.ArgumentParser(
        prog="repro-serving-smoke",
        description="Closed-loop serving burst with hard CI assertions.",
    )
    parser.add_argument("--records", type=int, default=4_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--users", type=int, default=4)
    parser.add_argument("--queries", type=int, default=40, metavar="PER_USER")
    parser.add_argument("--executor", choices=("local", "cluster"), default="local")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--transport", choices=("shm", "queue"), default="shm")
    parser.add_argument("--bolt", default=SERVING_BOLT)
    parser.add_argument("--cache-capacity", type=int, default=4_096)
    parser.add_argument("--cache-ttl", type=float, default=5.0)
    parser.add_argument("--max-snapshot-age", type=float, default=0.25)
    parser.add_argument("--health-log", type=Path, default=None)
    return parser


async def _burst(
    runtime: ServingRuntime, args: argparse.Namespace
) -> tuple[WorkloadResult, dict, list[str]]:
    """Serve one closed-loop burst; returns (result, health, leaked tasks)."""
    server = ServingServer(runtime)
    await server.start(ingest=True)
    result = await run_closed_loop(
        "127.0.0.1",
        server.port,
        n_users=args.users,
        queries_per_user=args.queries,
        seed=args.seed,
    )
    health = runtime.health_snapshot(reason="smoke").to_dict()
    await server.stop()
    leaked = [
        repr(task)
        for task in asyncio.all_tasks()
        if task is not asyncio.current_task() and not task.done()
    ]
    return result, health, leaked


def main(argv: list[str] | None = None) -> int:
    """Run one burst; return 0 only if every CI contract held."""
    args = build_parser().parse_args(argv)
    runtime = build_runtime(args)
    failures: list[str] = []
    try:
        result, health, leaked_tasks = asyncio.run(_burst(runtime, args))
    finally:
        # Always reap the cluster, even when the burst itself blew up —
        # orphaned worker processes would hang the CI job at exit.
        if args.executor == "cluster":
            runtime.join_ingest(timeout=60.0)
            if runtime.ingest_error is not None:
                failures.append(
                    f"background ingest died: {runtime.ingest_error!r}"
                )
            runtime.executor.close()
            if args.transport == "shm":
                from repro.cluster.shm import leaked_segments

                leaked_shm = leaked_segments()
                if leaked_shm:
                    failures.append(f"leaked shm segments: {leaked_shm}")
    if result.n_errors:
        failures.append(f"{result.n_errors} query errors in the burst")
    if result.n_cached == 0:
        failures.append("no cache hits in a Zipf-skewed seeded burst")
    if leaked_tasks:
        failures.append(f"tasks survived server.stop(): {leaked_tasks}")

    if args.health_log is not None:
        with args.health_log.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(health, sort_keys=True) + "\n")

    print(
        f"serving-smoke [{args.executor}] {result.n_queries} queries from "
        f"{result.n_users} users: {result.qps:.0f} q/s, "
        f"hit ratio {result.cache_hit_ratio * 100:.0f}%, "
        f"p50 {result.latency_quantile(0.5) * 1e3:.2f}ms, "
        f"p99 {result.latency_quantile(0.99) * 1e3:.2f}ms, "
        f"epochs {sorted(result.epochs)}"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("serving-smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
