"""Kalman filtering for stream prediction and missing-value imputation.

Table 1 row "Data Prediction" cites [Kalman 1960] and "prediction of
missing events in sensor data streams using Kalman filters" [Vijayakumar &
Plale 2007]. :class:`KalmanFilter` is a general linear filter;
:class:`LocalTrendFilter` is the ready-made local-linear-trend model used
by the imputation benches (state = [level, velocity]).
"""

from __future__ import annotations

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class KalmanFilter(SynopsisBase):
    """Linear-Gaussian state-space filter.

    Model: ``x' = F x + w`` (w ~ N(0, Q)), ``z = H x + v`` (v ~ N(0, R)).
    ``update(z)`` performs predict+correct; ``update(None)`` performs a
    predict-only step (a missing observation).
    """

    def __init__(
        self,
        F: np.ndarray,
        H: np.ndarray,
        Q: np.ndarray,
        R: np.ndarray,
        x0: np.ndarray | None = None,
        P0: np.ndarray | None = None,
    ):
        self.F = np.atleast_2d(np.asarray(F, dtype=np.float64))
        self.H = np.atleast_2d(np.asarray(H, dtype=np.float64))
        self.Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        self.R = np.atleast_2d(np.asarray(R, dtype=np.float64))
        n = self.F.shape[0]
        if self.F.shape != (n, n):
            raise ParameterError("F must be square")
        if self.H.shape[1] != n:
            raise ParameterError("H column count must match state dimension")
        if self.Q.shape != (n, n):
            raise ParameterError("Q must match state dimension")
        m = self.H.shape[0]
        if self.R.shape != (m, m):
            raise ParameterError("R must match observation dimension")
        self.x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64)
        self.P = np.eye(n) * 1e3 if P0 is None else np.asarray(P0, dtype=np.float64)
        self.count = 0

    def predict(self) -> np.ndarray:
        """Time update; returns the predicted observation ``H x``."""
        self.x = self.F @ self.x
        self.P = self.F @ self.P @ self.F.T + self.Q
        return self.H @ self.x

    def correct(self, z: np.ndarray | float) -> np.ndarray:
        """Measurement update with observation *z*; returns filtered state."""
        z = np.atleast_1d(np.asarray(z, dtype=np.float64))
        innovation = z - self.H @ self.x
        S = self.H @ self.P @ self.H.T + self.R
        K = self.P @ self.H.T @ np.linalg.inv(S)
        self.x = self.x + K @ innovation
        eye = np.eye(len(self.x))
        self.P = (eye - K @ self.H) @ self.P
        return self.x

    def update(self, item: float | np.ndarray | None) -> None:
        """Predict, then correct if *item* is an observation (None = missing)."""
        self.count += 1
        self.predict()
        if item is not None:
            self.correct(item)

    def observation_estimate(self) -> np.ndarray:
        """Current estimate of the observable, ``H x``."""
        return self.H @ self.x

    def _merge_key(self) -> tuple:
        return (self.F.shape, self.H.shape)

    def _merge_into(self, other: "KalmanFilter") -> None:
        raise NotImplementedError("filter state is order-sensitive; not mergeable")


class LocalTrendFilter(KalmanFilter):
    """Local linear trend model: state [level, velocity], scalar observations.

    The workhorse for sensor-stream imputation: ``predict_next()`` gives
    the one-step-ahead forecast used to fill a missing value.
    """

    def __init__(
        self,
        process_noise: float = 1e-3,
        observation_noise: float = 1.0,
        initial_level: float = 0.0,
    ):
        if process_noise <= 0 or observation_noise <= 0:
            raise ParameterError("noise variances must be positive")
        F = np.array([[1.0, 1.0], [0.0, 1.0]])
        H = np.array([[1.0, 0.0]])
        Q = process_noise * np.array([[0.25, 0.5], [0.5, 1.0]])
        R = np.array([[observation_noise]])
        super().__init__(F, H, Q, R, x0=np.array([initial_level, 0.0]))

    def predict_next(self) -> float:
        """One-step-ahead forecast of the next observation."""
        return float((self.H @ (self.F @ self.x))[0])

    @property
    def level(self) -> float:
        """Filtered level estimate."""
        return float(self.x[0])

    @property
    def velocity(self) -> float:
        """Filtered velocity (trend) estimate."""
        return float(self.x[1])
