"""Holt–Winters triple exponential smoothing (additive seasonality).

Online level/trend/seasonality decomposition for metrics with a daily or
weekly cycle — the model behind most production "expected value" bands for
business-metric dashboards (the paper's real-time-visualisation use case).
"""

from __future__ import annotations

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class HoltWinters(SynopsisBase):
    """Additive Holt–Winters forecaster with season length *period*."""

    def __init__(
        self,
        period: int,
        alpha: float = 0.2,
        beta: float = 0.05,
        gamma: float = 0.1,
    ):
        if period <= 1:
            raise ParameterError("period must exceed 1")
        for name, v in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0 < v < 1:
                raise ParameterError(f"{name} must lie in (0, 1)")
        self.period = period
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.count = 0
        self.level = 0.0
        self.trend = 0.0
        self._season = [0.0] * period
        self._warmup: list[float] = []

    def _initialise(self) -> None:
        first = self._warmup[: self.period]
        second = self._warmup[self.period : 2 * self.period]
        mean1 = sum(first) / self.period
        mean2 = sum(second) / self.period
        self.level = mean2
        self.trend = (mean2 - mean1) / self.period
        for i in range(self.period):
            self._season[i] = (first[i] - mean1 + second[i] - mean2) / 2.0

    def update(self, item: float) -> None:
        value = float(item)
        if self.count < 2 * self.period:
            self._warmup.append(value)
            self.count += 1
            if self.count == 2 * self.period:
                self._initialise()
            return
        i = self.count % self.period
        seasonal = self._season[i]
        prev_level = self.level
        self.level = self.alpha * (value - seasonal) + (1 - self.alpha) * (
            self.level + self.trend
        )
        self.trend = self.beta * (self.level - prev_level) + (1 - self.beta) * self.trend
        self._season[i] = self.gamma * (value - self.level) + (1 - self.gamma) * seasonal
        self.count += 1

    def forecast(self, steps: int = 1) -> float:
        """Forecast *steps* ahead (requires 2 warm-up periods)."""
        if steps <= 0:
            raise ParameterError("steps must be positive")
        if self.count < 2 * self.period:
            raise ParameterError("forecaster still warming up (needs 2 periods)")
        i = (self.count + steps - 1) % self.period
        return self.level + steps * self.trend + self._season[i]

    @property
    def ready(self) -> bool:
        """Whether warm-up is complete and forecasts are available."""
        return self.count >= 2 * self.period

    def _merge_key(self) -> tuple:
        return (self.period, self.alpha, self.beta, self.gamma)

    def _merge_into(self, other: "HoltWinters") -> None:
        raise NotImplementedError("smoothing state is order-sensitive; not mergeable")
