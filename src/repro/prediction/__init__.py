"""Stream prediction and missing-value imputation.

Table 1 row "Data Prediction" — predict missing values in a data stream
(application: sensor data analysis).
"""

from repro.prediction.ar import OnlineAR
from repro.prediction.holt_winters import HoltWinters
from repro.prediction.kalman import KalmanFilter, LocalTrendFilter
from repro.prediction.ukf import UnscentedKalmanFilter

__all__ = [
    "HoltWinters",
    "KalmanFilter",
    "LocalTrendFilter",
    "OnlineAR",
    "UnscentedKalmanFilter",
]
