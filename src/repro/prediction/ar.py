"""Online autoregressive forecasting via recursive least squares.

The adaptive-forecasting approach of "APForecast: an adaptive forecasting
method for data streams" [Wang et al. 2005, cited in Table 1]: fit an AR(p)
model whose coefficients adapt with every arrival using RLS with a
forgetting factor — O(p^2) per update, no batch refits.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class OnlineAR(SynopsisBase):
    """AR(p) one-step forecaster with RLS coefficient adaptation."""

    def __init__(self, order: int = 4, forgetting: float = 0.995, delta: float = 100.0):
        if order <= 0:
            raise ParameterError("order must be positive")
        if not 0 < forgetting <= 1:
            raise ParameterError("forgetting factor must lie in (0, 1]")
        if delta <= 0:
            raise ParameterError("delta must be positive")
        self.order = order
        self.forgetting = forgetting
        self.count = 0
        self.last_error = 0.0
        self._history: deque[float] = deque(maxlen=order)
        self._w = np.zeros(order + 1)  # AR coefficients + intercept
        self._p = np.eye(order + 1) * delta  # inverse correlation matrix
        # Covariance windup guard: with a forgetting factor < 1 and weak
        # excitation, P grows as 1/lambda^n and the filter destabilises;
        # rescaling P when its trace passes this cap is the standard remedy.
        self._trace_cap = delta * (order + 1) * 10.0

    def _features(self) -> np.ndarray:
        lags = list(self._history)
        lags = [0.0] * (self.order - len(lags)) + lags
        return np.array(lags[::-1] + [1.0])  # most recent lag first + bias

    def predict_next(self) -> float:
        """Forecast of the next value given the current lag window."""
        return float(self._w @ self._features())

    def update(self, item: float) -> None:
        """Observe *item*: adapt coefficients against the prior forecast."""
        value = float(item)
        self.count += 1
        if len(self._history) == self.order:
            phi = self._features()
            error = value - float(self._w @ phi)
            self.last_error = error
            lam = self.forgetting
            p_phi = self._p @ phi
            gain = p_phi / (lam + float(phi @ p_phi))
            self._w = self._w + gain * error
            self._p = (self._p - np.outer(gain, p_phi)) / lam
            # RLS numerical hygiene: keep P symmetric, cap windup, and
            # reset outright if positive-definiteness is lost.
            self._p = (self._p + self._p.T) / 2.0
            trace = float(np.trace(self._p))
            if trace > self._trace_cap:
                self._p *= self._trace_cap / trace
            elif trace <= 0 or not np.isfinite(trace):
                self._p = np.eye(self.order + 1) * (self._trace_cap / (self.order + 1))
        self._history.append(value)

    @property
    def coefficients(self) -> np.ndarray:
        """Current AR coefficients (lag-1 first) followed by the intercept."""
        return self._w.copy()

    def _merge_key(self) -> tuple:
        return (self.order, self.forgetting)

    def _merge_into(self, other: "OnlineAR") -> None:
        raise NotImplementedError("RLS state is order-sensitive; not mergeable")
