"""Unscented Kalman filter [Wan & Van der Merwe 2000, cited in Table 1].

For *nonlinear* state-space models the linear Kalman filter's covariance
propagation breaks down. The UKF propagates a deterministic set of sigma
points through the true nonlinear functions and refits a Gaussian —
accurate to second order without Jacobians. Used for nonlinear sensor
prediction where a local-trend model underfits.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class UnscentedKalmanFilter(SynopsisBase):
    """UKF with process model *f* and observation model *h*.

    ``f(x) -> x'`` and ``h(x) -> z`` operate on 1-D numpy arrays. ``Q`` and
    ``R`` are the process/observation noise covariances. Standard
    Merwe-scaled sigma points (alpha, beta, kappa).
    """

    def __init__(
        self,
        f: Callable[[np.ndarray], np.ndarray],
        h: Callable[[np.ndarray], np.ndarray],
        Q: np.ndarray,
        R: np.ndarray,
        x0: np.ndarray,
        P0: np.ndarray | None = None,
        alpha: float = 1e-2,
        beta: float = 2.0,
        kappa: float = 0.0,
    ):
        self.f = f
        self.h = h
        self.Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        self.R = np.atleast_2d(np.asarray(R, dtype=np.float64))
        self.x = np.asarray(x0, dtype=np.float64)
        n = len(self.x)
        if self.Q.shape != (n, n):
            raise ParameterError("Q must match the state dimension")
        self.P = np.eye(n) if P0 is None else np.asarray(P0, dtype=np.float64)
        if alpha <= 0:
            raise ParameterError("alpha must be positive")
        self.count = 0
        # Merwe scaled sigma-point weights.
        self._n = n
        lam = alpha**2 * (n + kappa) - n
        self._lam = lam
        self._wm = np.full(2 * n + 1, 1.0 / (2.0 * (n + lam)))
        self._wc = self._wm.copy()
        self._wm[0] = lam / (n + lam)
        self._wc[0] = lam / (n + lam) + (1 - alpha**2 + beta)

    def _sigma_points(self) -> np.ndarray:
        n = self._n
        try:
            sqrt = np.linalg.cholesky((n + self._lam) * self.P)
        except np.linalg.LinAlgError:
            # Regularise a near-singular covariance.
            self.P += np.eye(n) * 1e-9
            sqrt = np.linalg.cholesky((n + self._lam) * self.P)
        points = np.empty((2 * n + 1, n))
        points[0] = self.x
        for i in range(n):
            points[1 + i] = self.x + sqrt[:, i]
            points[1 + n + i] = self.x - sqrt[:, i]
        return points

    def predict(self) -> np.ndarray:
        """Time update; returns the predicted observation mean."""
        sigmas = self._sigma_points()
        propagated = np.array([self.f(s) for s in sigmas])
        self.x = self._wm @ propagated
        diff = propagated - self.x
        self.P = diff.T @ (diff * self._wc[:, None]) + self.Q
        observed = np.array([np.atleast_1d(self.h(s)) for s in propagated])
        return self._wm @ observed

    def correct(self, z: np.ndarray | float) -> np.ndarray:
        """Measurement update; returns the filtered state."""
        z = np.atleast_1d(np.asarray(z, dtype=np.float64))
        sigmas = self._sigma_points()
        observed = np.array([np.atleast_1d(self.h(s)) for s in sigmas])
        z_mean = self._wm @ observed
        dz = observed - z_mean
        S = dz.T @ (dz * self._wc[:, None]) + self.R
        dx = sigmas - self.x
        cross = dx.T @ (dz * self._wc[:, None])
        K = cross @ np.linalg.inv(S)
        self.x = self.x + K @ (z - z_mean)
        self.P = self.P - K @ S @ K.T
        return self.x

    def update(self, item: np.ndarray | float | None) -> None:
        """Predict, then correct when *item* is an observation."""
        self.count += 1
        self.predict()
        if item is not None:
            self.correct(item)

    def observation_estimate(self) -> np.ndarray:
        """Current estimate of the observable ``h(x)``."""
        return np.atleast_1d(self.h(self.x))

    def _merge_key(self) -> tuple:
        return (self._n,)

    def _merge_into(self, other: "UnscentedKalmanFilter") -> None:
        raise NotImplementedError("filter state is order-sensitive; not mergeable")
