"""Frequent elements, top-k and frequency estimation sketches.

Table 1 row "Finding Frequent Elements" — identify items in a multiset
with frequency above a threshold (application: trending hashtags).
"""

from repro.frequency.count_min import CountMinSketch
from repro.frequency.count_sketch import CountSketch
from repro.frequency.hierarchical import HierarchicalHeavyHitters
from repro.frequency.lossy_counting import LossyCounting, StickySampling
from repro.frequency.misra_gries import MisraGries
from repro.frequency.space_saving import SpaceSaving
from repro.frequency.windowed import WindowedTopK

__all__ = [
    "CountMinSketch",
    "CountSketch",
    "HierarchicalHeavyHitters",
    "LossyCounting",
    "MisraGries",
    "SpaceSaving",
    "StickySampling",
    "WindowedTopK",
]
