"""Hierarchical heavy hitters [Cormode, Korn, Muthukrishnan & Srivastava,
VLDB 2003].

Items live in a hierarchy (IP prefixes, URL paths, topic taxonomies); a
*hierarchical* heavy hitter is a prefix whose count — after discounting the
counts of its own HHH descendants — still exceeds the threshold. This
implementation keeps one SpaceSaving summary per hierarchy level and runs
the bottom-up discounting pass at query time.

Items are tuples; the parent of ``(a, b, c)`` is ``(a, b)``.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.frequency.space_saving import SpaceSaving


class HierarchicalHeavyHitters(SynopsisBase):
    """HHH detector over tuple-shaped items of exactly *levels* components."""

    def __init__(self, levels: int, k: int = 256):
        if levels <= 0:
            raise ParameterError("levels must be positive")
        if k <= 0:
            raise ParameterError("counter budget k must be positive")
        self.levels = levels
        self.k = k
        self.count = 0
        self._summaries = [SpaceSaving(k) for __ in range(levels)]

    def update(self, item: Sequence[Hashable]) -> None:
        key = tuple(item)
        if len(key) != self.levels:
            raise ParameterError(
                f"item must have exactly {self.levels} components, got {len(key)}"
            )
        self.count += 1
        for level in range(self.levels):
            self._summaries[level].update(key[: level + 1])

    def estimate(self, prefix: Sequence[Hashable]) -> int:
        """Estimated total count of items under *prefix*."""
        key = tuple(prefix)
        if not 1 <= len(key) <= self.levels:
            raise ParameterError("prefix length out of range")
        return self._summaries[len(key) - 1].estimate(key)

    def hierarchical_heavy_hitters(self, threshold: float) -> dict[tuple, int]:
        """Prefixes whose *discounted* count is >= ``threshold * n``.

        Bottom-up: a leaf-level heavy hitter is reported outright; at higher
        levels, counts already attributed to reported descendants are
        subtracted before the threshold test.
        """
        if not 0 < threshold <= 1:
            raise ParameterError("threshold must lie in (0, 1]")
        floor = threshold * self.count
        reported: dict[tuple, int] = {}
        discounted_by_parent: dict[tuple, int] = {}
        for level in range(self.levels - 1, -1, -1):
            summary = self._summaries[level]
            for prefix, cnt in summary.top(self.k):
                adjusted = cnt - discounted_by_parent.get(prefix, 0)
                if adjusted >= floor:
                    reported[prefix] = adjusted
                    if level > 0:
                        parent = prefix[:-1]
                        discounted_by_parent[parent] = (
                            discounted_by_parent.get(parent, 0) + cnt
                        )
                elif level > 0:
                    # Unreported mass still propagates upward untouched.
                    pass
        return reported

    def _merge_key(self) -> tuple:
        return (self.levels, self.k)

    def _merge_into(self, other: "HierarchicalHeavyHitters") -> None:
        for mine, theirs in zip(self._summaries, other._summaries):
            mine.merge(theirs)
        self.count += other.count
