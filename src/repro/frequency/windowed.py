"""Top-k over sliding windows (trending hashtags, the paper's flagship
application for frequent elements).

Block-based construction in the spirit of [Hung, Lee & Ting 2010] and
[Lee & Ting 2006]: the window is covered by tumbling blocks, each
summarised with a SpaceSaving sketch; queries merge the live blocks. The
oldest block may be partially expired, contributing at most ``block`` items
of slack.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Hashable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.frequency.space_saving import SpaceSaving


class WindowedTopK(SynopsisBase):
    """Approximate top-k over the last *window* stream elements."""

    def __init__(self, window: int, k: int = 64, n_blocks: int = 8):
        if window <= 0:
            raise ParameterError("window must be positive")
        if k <= 0:
            raise ParameterError("k must be positive")
        if n_blocks <= 0 or n_blocks > window:
            raise ParameterError("n_blocks must lie in [1, window]")
        self.window = window
        self.k = k
        self.block_size = max(1, window // n_blocks)
        self.count = 0
        self._blocks: deque[SpaceSaving] = deque()
        self._current = SpaceSaving(k)

    def update(self, item: Any) -> None:
        self.count += 1
        self._current.update(item)
        if self._current.count >= self.block_size:
            self._blocks.append(self._current)
            self._current = SpaceSaving(self.k)
        covered = self._current.count + sum(b.count for b in self._blocks)
        while self._blocks and covered - self._blocks[0].count >= self.window:
            covered -= self._blocks[0].count
            self._blocks.popleft()

    def _merged(self) -> SpaceSaving:
        merged = SpaceSaving(self.k)
        for block in self._blocks:
            merged.merge(block)
        if self._current.count:
            merged.merge(self._current)
        return merged

    def top(self, n: int) -> list[tuple[Hashable, int]]:
        """The *n* most frequent items over (approximately) the window."""
        return self._merged().top(n)

    def estimate(self, item: Any) -> int:
        """Estimated windowed frequency of *item*."""
        return self._merged().estimate(item)

    @property
    def covered(self) -> int:
        """Number of elements the live blocks currently cover."""
        return self._current.count + sum(b.count for b in self._blocks)

    def _merge_key(self) -> tuple:
        return (self.window, self.k, self.block_size)

    def _merge_into(self, other: "WindowedTopK") -> None:
        raise NotImplementedError(
            "windowed top-k summaries are position-bound; merge per-partition "
            "SpaceSaving blocks instead"
        )
