"""Count-Min sketch [Cormode & Muthukrishnan, J. Algorithms 2005].

A ``depth x width`` array of counters; each item increments one counter per
row, and the estimate is the *minimum* across rows. Estimates never
undercount and overcount by at most ``epsilon * n`` with probability
``1 - delta`` for ``width = e/epsilon`` and ``depth = ln(1/delta)``.

Includes the *conservative update* variant (increment only counters that
equal the current minimum), which provably reduces overcounting on skewed
streams at the same size — one of the ablations in the bench suite.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily
from repro.common.mergeable import SynopsisBase
from repro.common.serialization import dump_state, load_state

_TYPE_TAG = "cms"


class CountMinSketch(SynopsisBase):
    """Count-Min sketch with optional conservative update."""

    def __init__(self, width: int, depth: int, seed: int = 0, conservative: bool = False):
        if width <= 0:
            raise ParameterError("width must be positive")
        if depth <= 0:
            raise ParameterError("depth must be positive")
        self.width = width
        self.depth = depth
        self.conservative = conservative
        self.family = HashFamily(seed)
        self.count = 0
        self._table = np.zeros((depth, width), dtype=np.int64)

    @classmethod
    def from_error(
        cls, epsilon: float, delta: float = 0.01, seed: int = 0, conservative: bool = False
    ) -> "CountMinSketch":
        """Sketch guaranteeing overcount <= epsilon*n with prob 1-delta."""
        if not 0 < epsilon < 1:
            raise ParameterError("epsilon must lie in (0, 1)")
        if not 0 < delta < 1:
            raise ParameterError("delta must lie in (0, 1)")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width=width, depth=depth, seed=seed, conservative=conservative)

    def _columns(self, item: Any) -> list[int]:
        return [h % self.width for h in self.family.independent_hashes(item, self.depth)]

    def update(self, item: Any) -> None:
        self.update_weighted(item, 1)

    def update_weighted(self, item: Any, weight: int) -> None:
        """Add *weight* occurrences of *item* (weight must be positive)."""
        if weight <= 0:
            raise ParameterError("weight must be positive")
        self.count += weight
        cols = self._columns(item)
        rows = range(self.depth)
        if self.conservative:
            current = min(self._table[r, c] for r, c in zip(rows, cols))
            target = current + weight
            for r, c in zip(rows, cols):
                if self._table[r, c] < target:
                    self._table[r, c] = target
        else:
            for r, c in zip(rows, cols):
                self._table[r, c] += weight

    def estimate(self, item: Any) -> int:
        """Frequency estimate (never undercounts)."""
        cols = self._columns(item)
        return int(min(self._table[r, c] for r, c in zip(range(self.depth), cols)))

    def error_bound(self) -> float:
        """With prob 1-delta, overcount is below ``e/width * n``."""
        return math.e / self.width * self.count

    def inner_product(self, other: "CountMinSketch") -> int:
        """Upper-bound estimate of the inner product of two frequency
        vectors (used for join-size estimation)."""
        other = self._check_mergeable(other)
        per_row = (self._table * other._table).sum(axis=1)
        return int(per_row.min())

    def _merge_key(self) -> tuple:
        return (self.width, self.depth, self.family.seed)

    def _merge_into(self, other: "CountMinSketch") -> None:
        self._table += other._table
        self.count += other.count

    def size_bytes(self) -> int:
        return int(self._table.nbytes)

    def to_bytes(self) -> bytes:
        """Serialize to a versioned byte payload."""
        return dump_state(
            _TYPE_TAG,
            {
                "width": self.width,
                "depth": self.depth,
                "seed": self.family.seed,
                "conservative": self.conservative,
                "count": self.count,
                "table": self._table,
            },
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "CountMinSketch":
        """Reconstruct a sketch from :meth:`to_bytes` output."""
        state = load_state(_TYPE_TAG, payload)
        obj = cls(
            width=state["width"],
            depth=state["depth"],
            seed=state["seed"],
            conservative=state["conservative"],
        )
        obj.count = state["count"]
        obj._table = state["table"].astype(np.int64)
        return obj
