"""Count-Min sketch [Cormode & Muthukrishnan, J. Algorithms 2005].

A ``depth x width`` array of counters; each item increments one counter per
row, and the estimate is the *minimum* across rows. Estimates never
undercount and overcount by at most ``epsilon * n`` with probability
``1 - delta`` for ``width = e/epsilon`` and ``depth = ln(1/delta)``.

Includes the *conservative update* variant (increment only counters that
equal the current minimum), which provably reduces overcounting on skewed
streams at the same size — one of the ablations in the bench suite.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily
from repro.common.mergeable import SynopsisBase
from repro.common.serialization import dump_state, load_state

_TYPE_TAG = "cms"


class CountMinSketch(SynopsisBase):
    """Count-Min sketch with optional conservative update."""

    def __init__(self, width: int, depth: int, seed: int = 0, conservative: bool = False):
        if width <= 0:
            raise ParameterError("width must be positive")
        if depth <= 0:
            raise ParameterError("depth must be positive")
        self.width = width
        self.depth = depth
        self.conservative = conservative
        self.family = HashFamily(seed)
        self.count = 0
        self._table = np.zeros((depth, width), dtype=np.int64)

    @classmethod
    def from_error(
        cls, epsilon: float, delta: float = 0.01, seed: int = 0, conservative: bool = False
    ) -> "CountMinSketch":
        """Sketch guaranteeing overcount <= epsilon*n with prob 1-delta."""
        if not 0 < epsilon < 1:
            raise ParameterError("epsilon must lie in (0, 1)")
        if not 0 < delta < 1:
            raise ParameterError("delta must lie in (0, 1)")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width=width, depth=depth, seed=seed, conservative=conservative)

    def _columns(self, item: Any) -> list[int]:
        return [h % self.width for h in self.family.independent_hashes(item, self.depth)]

    def update(self, item: Any) -> None:
        self.update_weighted(item, 1)

    def update_weighted(self, item: Any, weight: int) -> None:
        """Add *weight* occurrences of *item* (weight must be positive)."""
        if weight <= 0:
            raise ParameterError("weight must be positive")
        self.count += weight
        cols = np.array(self._columns(item), dtype=np.intp)
        rows = np.arange(self.depth)
        if self.conservative:
            # One fancy-indexed gather/compare/scatter: raise every touched
            # cell to (current row-minimum + weight), never lower one.
            current = self._table[rows, cols]
            target = current.min() + weight
            self._table[rows, cols] = np.maximum(current, target)
        else:
            # One (row, col) pair per row -> no duplicate indices, so plain
            # fancy-indexed += is a correct scatter here.
            self._table[rows, cols] += weight

    def update_many(self, items: Iterable[Any]) -> None:
        """Batch ingest: hash once per (item, row), scatter with numpy.

        Bit-identical to ``for x in items: self.update(x)`` — plain sketches
        scatter all increments with ``np.add.at`` (duplicate cells
        accumulate); conservative sketches replay items in order (the
        conservative rule reads its own earlier writes) but still amortize
        hashing and use the fancy-indexed per-item pass.
        """
        items = items if isinstance(items, (list, tuple)) else list(items)
        if not items:
            return
        hashes = self.family.hash_batch(items, self.depth)  # (n, depth) uint64
        cols = (hashes % np.uint64(self.width)).astype(np.intp)
        rows = np.arange(self.depth)
        if self.conservative:
            table = self._table
            for item_cols in cols:
                current = table[rows, item_cols]
                target = current.min() + 1
                table[rows, item_cols] = np.maximum(current, target)
        else:
            np.add.at(self._table, (rows[None, :], cols), 1)
        self.count += len(items)

    def estimate(self, item: Any) -> int:
        """Frequency estimate (never undercounts)."""
        cols = np.array(self._columns(item), dtype=np.intp)
        return int(self._table[np.arange(self.depth), cols].min())

    def error_bound(self) -> float:
        """With prob 1-delta, overcount is below ``e/width * n``."""
        return math.e / self.width * self.count

    def inner_product(self, other: "CountMinSketch") -> int:
        """Upper-bound estimate of the inner product of two frequency
        vectors (used for join-size estimation)."""
        other = self._check_mergeable(other)
        per_row = (self._table * other._table).sum(axis=1)
        return int(per_row.min())

    def _merge_key(self) -> tuple:
        return (self.width, self.depth, self.family.seed)

    def _merge_into(self, other: "CountMinSketch") -> None:
        self._table += other._table
        self.count += other.count

    def _empty_clone(self) -> "CountMinSketch":
        return CountMinSketch(
            self.width, self.depth, seed=self.family.seed, conservative=self.conservative
        )

    def _split_into(self, n: int) -> list["CountMinSketch"]:
        # The merge is additive (tables and count sum), so shard 0 carries
        # the full history and its siblings start zeroed; copying the table
        # to every shard would n-fold every cell on re-merge.
        return self._split_seed_part(n)

    def size_bytes(self) -> int:
        return int(self._table.nbytes)

    def to_bytes(self) -> bytes:
        """Serialize to a versioned byte payload."""
        return dump_state(
            _TYPE_TAG,
            {
                "width": self.width,
                "depth": self.depth,
                "seed": self.family.seed,
                "conservative": self.conservative,
                "count": self.count,
                "table": self._table,
            },
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "CountMinSketch":
        """Reconstruct a sketch from :meth:`to_bytes` output."""
        state = load_state(_TYPE_TAG, payload)
        obj = cls(
            width=state["width"],
            depth=state["depth"],
            seed=state["seed"],
            conservative=state["conservative"],
        )
        obj.count = state["count"]
        obj._table = state["table"].astype(np.int64)
        return obj
