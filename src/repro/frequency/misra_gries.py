"""Misra–Gries frequent-elements summary (a.k.a. the "Frequent" algorithm).

[Misra & Gries 1982; rediscovered by Demaine et al. 2002 and Karp et al.
2003] — keep at most *k* counters; increment on hit, decrement all on miss
when full. Every item with true frequency above ``n/(k+1)`` survives, and
each reported count underestimates by at most ``n/(k+1)``. Deterministic
and mergeable [Agarwal et al. 2012].
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Hashable, Iterable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase, shard_of


class MisraGries(SynopsisBase):
    """Deterministic heavy-hitters summary with at most *k* counters."""

    def __init__(self, k: int):
        if k <= 0:
            raise ParameterError("counter budget k must be positive")
        self.k = k
        self.count = 0
        self._counters: dict[Hashable, int] = {}

    def update(self, item: Any) -> None:
        self.count += 1
        counters = self._counters
        if item in counters:
            counters[item] += 1
        elif len(counters) < self.k:
            counters[item] = 1
        else:
            # Decrement-all; drop zeroed counters.
            for key in list(counters):
                counters[key] -= 1
                if counters[key] == 0:
                    del counters[key]

    def update_many(self, items: Iterable[Any]) -> None:
        """Batch ingest with :class:`collections.Counter` pre-aggregation.

        When the batch's distinct items all fit in the counter budget no
        decrement-all can fire at any point of the sequential replay, so
        folding the pre-aggregated weights in is exactly equivalent
        (increments commute, insertion order is irrelevant). Otherwise the
        order-dependent sequential path runs, keeping equivalence bit-exact.
        """
        items = items if isinstance(items, (list, tuple)) else list(items)
        if not items:
            return
        counters = self._counters
        room = self.k - len(counters)
        if room == 0:
            # Full table: every update must be a hit for the fold to be
            # exact (a single miss fires decrement-all). The containment
            # scan short-circuits at the first miss, so batches that must
            # take the sequential path pay (almost) nothing first.
            if all(item in counters for item in items):
                for item, weight in Counter(items).items():
                    counters[item] += weight
                self.count += len(items)
                return
            update = self.update
            for item in items:
                update(item)
            return
        # Count fresh distinct items with an early abort: the moment the
        # batch cannot fit, stop scanning and replay sequentially.
        fresh: set = set()
        for item in items:
            if item not in counters and item not in fresh:
                fresh.add(item)
                if len(fresh) > room:
                    update = self.update
                    for it in items:
                        update(it)
                    return
        for item, weight in Counter(items).items():
            counters[item] = counters.get(item, 0) + weight
        self.count += len(items)

    def estimate(self, item: Any) -> int:
        """Lower bound on the frequency of *item* (0 if not tracked)."""
        return self._counters.get(item, 0)

    def error_bound(self) -> float:
        """Maximum undercount of any estimate: ``n / (k + 1)``."""
        return self.count / (self.k + 1)

    def heavy_hitters(self, threshold: float) -> dict[Hashable, int]:
        """Items whose estimated frequency is at least ``threshold * n``.

        Guaranteed to include every item with true frequency above
        ``(threshold + 1/(k+1)) * n``.
        """
        if not 0 < threshold <= 1:
            raise ParameterError("threshold must lie in (0, 1]")
        floor = threshold * self.count - self.error_bound()
        return {it: c for it, c in self._counters.items() if c >= max(floor, 1)}

    def top(self, n: int) -> list[tuple[Hashable, int]]:
        """The *n* tracked items with the largest estimated counts."""
        ordered = sorted(self._counters.items(), key=lambda kv: -kv[1])
        return ordered[:n]

    def _merge_key(self) -> tuple:
        return (self.k,)

    def _merge_into(self, other: "MisraGries") -> None:
        """Agarwal et al. merge: add counters, then subtract the (k+1)-st
        largest count from everything, keeping at most k positives."""
        combined = dict(self._counters)
        for item, cnt in other._counters.items():
            combined[item] = combined.get(item, 0) + cnt
        if len(combined) > self.k:
            cutoff = sorted(combined.values(), reverse=True)[self.k]
            combined = {
                it: c - cutoff for it, c in combined.items() if c - cutoff > 0
            }
        self._counters = combined
        self.count += other.count

    def _split_into(self, n: int) -> list["MisraGries"]:
        """Partition counters by key hash.

        Shards hold disjoint key sets totalling at most k counters, so the
        re-merge's (k+1)-st-largest cutoff never fires and the combined
        table is exactly the original.
        """
        parts = [MisraGries(self.k) for __ in range(n)]
        for item, cnt in self._counters.items():
            part = parts[shard_of(item, n)]
            part._counters[item] = cnt
            part.count += cnt
        parts[0].count += self.count - sum(p.count for p in parts)
        return parts

    def __len__(self) -> int:
        return len(self._counters)
