"""Count-Sketch [Charikar, Chen & Farach-Colton, ICALP 2002].

Like Count-Min but each update is multiplied by a random sign and the
estimate is the *median* across rows, making the estimator unbiased (errors
cancel instead of accumulating). Error scales with the stream's L2 norm
rather than L1, so Count-Sketch wins on heavy-tailed streams — the
bias/variance trade-off against Count-Min is an ablation bench.
"""

from __future__ import annotations

import math
import statistics
from typing import Any, Iterable

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily
from repro.common.mergeable import SynopsisBase


class CountSketch(SynopsisBase):
    """Signed-counter sketch with median estimation."""

    def __init__(self, width: int, depth: int, seed: int = 0):
        if width <= 0:
            raise ParameterError("width must be positive")
        if depth <= 0:
            raise ParameterError("depth must be positive")
        self.width = width
        self.depth = depth
        self.family = HashFamily(seed)
        self.count = 0
        self._table = np.zeros((depth, width), dtype=np.int64)

    @classmethod
    def from_error(cls, epsilon: float, delta: float = 0.01, seed: int = 0) -> "CountSketch":
        """Sketch with additive error ``epsilon * ||f||_2`` w.p. 1-delta."""
        if not 0 < epsilon < 1:
            raise ParameterError("epsilon must lie in (0, 1)")
        if not 0 < delta < 1:
            raise ParameterError("delta must lie in (0, 1)")
        width = math.ceil(3.0 / epsilon**2)
        depth = max(1, math.ceil(math.log(1.0 / delta)))
        return cls(width=width, depth=depth, seed=seed)

    def _cells(self, item: Any) -> list[tuple[int, int]]:
        """(column, sign) per row for *item*."""
        out = []
        for r, h in enumerate(self.family.independent_hashes(item, self.depth)):
            col = h % self.width
            sign = 1 if (h >> 33) & 1 else -1
            out.append((col, sign))
        return out

    def update(self, item: Any) -> None:
        self.update_weighted(item, 1)

    def update_weighted(self, item: Any, weight: int) -> None:
        """Add *weight* occurrences of *item* (negative weights allowed:
        Count-Sketch supports the turnstile model)."""
        if weight == 0:
            raise ParameterError("weight must be non-zero")
        self.count += abs(weight)
        for r, (col, sign) in enumerate(self._cells(item)):
            self._table[r, col] += sign * weight

    def update_many(self, items: Iterable[Any]) -> None:
        """Batch ingest: hash once per (item, row), signed numpy scatter.

        Bit-identical to sequential updates — signed increments commute, so
        one ``np.add.at`` applies the whole batch.
        """
        items = items if isinstance(items, (list, tuple)) else list(items)
        if not items:
            return
        hashes = self.family.hash_batch(items, self.depth)  # (n, depth) uint64
        cols = (hashes % np.uint64(self.width)).astype(np.intp)
        signs = np.where(
            (hashes >> np.uint64(33)) & np.uint64(1), np.int64(1), np.int64(-1)
        )
        np.add.at(self._table, (np.arange(self.depth)[None, :], cols), signs)
        self.count += len(items)

    def estimate(self, item: Any) -> int:
        """Unbiased frequency estimate (median of signed rows)."""
        votes = [
            int(sign * self._table[r, col])
            for r, (col, sign) in enumerate(self._cells(item))
        ]
        return int(statistics.median(votes))

    def second_moment(self) -> float:
        """Estimate of F2 = sum of squared frequencies (median of row L2s).

        Each row's sum of squared counters is an unbiased F2 estimator (the
        AMS identity); the median over rows concentrates it.
        """
        per_row = (self._table.astype(np.float64) ** 2).sum(axis=1)
        return float(np.median(per_row))

    def _merge_key(self) -> tuple:
        return (self.width, self.depth, self.family.seed)

    def _merge_into(self, other: "CountSketch") -> None:
        self._table += other._table
        self.count += other.count

    def _empty_clone(self) -> "CountSketch":
        return CountSketch(self.width, self.depth, seed=self.family.seed)

    def _split_into(self, n: int) -> list["CountSketch"]:
        # Additive merge: seed-part split (full shard + zeroed siblings).
        return self._split_seed_part(n)

    def size_bytes(self) -> int:
        return int(self._table.nbytes)
