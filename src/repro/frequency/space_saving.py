"""SpaceSaving / Stream-Summary [Metwally, Agrawal & El Abbadi, ICDT 2005].

The paper's "efficient computation of frequent and top-k elements"
citation, and in practice the best-behaved counter-based heavy-hitters
algorithm: keep *k* counters; on a miss, evict the minimum counter and
adopt its count + 1 (recording the inherited error). Estimates *overcount*
by at most the adopted error, every item with frequency > n/k is tracked,
and summaries merge cleanly.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from typing import Any, Hashable, Iterable

from repro.common.exceptions import ParameterError, SerializationError
from repro.common.mergeable import SynopsisBase, shard_of
from repro.common.serialization import dump_state, load_state

_TYPE_TAG = "space_saving"


class SpaceSaving(SynopsisBase):
    """Top-k / heavy-hitters summary with *k* (count, error) counters."""

    def __init__(self, k: int):
        if k <= 0:
            raise ParameterError("counter budget k must be positive")
        self.k = k
        self.count = 0
        self._counts: dict[Hashable, int] = {}
        self._errors: dict[Hashable, int] = {}
        # Lazy min-heap of (count, tiebreak, item); stale entries skipped.
        self._heap: list[tuple[int, int, Hashable]] = []
        self._tiebreak = itertools.count()

    def update(self, item: Any) -> None:
        self.update_weighted(item, 1)

    def update_weighted(self, item: Any, weight: int) -> None:
        """Absorb *item* with integer *weight* >= 1."""
        if weight <= 0:
            raise ParameterError("weight must be positive")
        self.count += weight
        if item in self._counts:
            self._counts[item] += weight
            heapq.heappush(self._heap, (self._counts[item], next(self._tiebreak), item))
            return
        if len(self._counts) < self.k:
            self._counts[item] = weight
            self._errors[item] = 0
            heapq.heappush(self._heap, (weight, next(self._tiebreak), item))
            return
        # Evict the current minimum (skipping stale heap entries).
        while True:
            cnt, __, victim = self._heap[0]
            if self._counts.get(victim) == cnt:
                break
            heapq.heappop(self._heap)
        heapq.heappop(self._heap)
        del self._counts[victim]
        del self._errors[victim]
        self._counts[item] = cnt + weight
        self._errors[item] = cnt
        heapq.heappush(self._heap, (cnt + weight, next(self._tiebreak), item))

    def update_many(self, items: Iterable[Any]) -> None:
        """Batch ingest with :class:`collections.Counter` pre-aggregation.

        When the batch triggers no evictions (every distinct batch item is
        already tracked or fits in the counter budget) the pre-aggregated
        weighted fold is exactly equivalent to sequential updates:
        increments commute and fresh items inherit error 0 either way. If
        an eviction *could* occur, the order-dependent sequential path runs
        instead, keeping the equivalence invariant bit-exact.
        """
        items = items if isinstance(items, (list, tuple)) else list(items)
        if not items:
            return
        counts = self._counts
        room = self.k - len(counts)
        if room == 0:
            # Saturated table: the fold is exact iff every batch item is
            # already tracked. The containment scan short-circuits at the
            # first fresh item, so a batch that must evict pays (almost)
            # nothing before falling back to the sequential path.
            if all(item in counts for item in items):
                for item, weight in Counter(items).items():
                    self.update_weighted(item, weight)
                return
            update = self.update
            for item in items:
                update(item)
            return
        # Count fresh distinct items with an early abort: the moment the
        # batch cannot fit, stop scanning and replay sequentially.
        fresh: set = set()
        for item in items:
            if item not in counts and item not in fresh:
                fresh.add(item)
                if len(fresh) > room:
                    update = self.update
                    for it in items:
                        update(it)
                    return
        for item, weight in Counter(items).items():
            self.update_weighted(item, weight)

    def estimate(self, item: Any) -> int:
        """Upper-bound estimate of the frequency of *item*."""
        return self._counts.get(item, 0)

    def guaranteed_count(self, item: Any) -> int:
        """Lower bound: estimate minus inherited error."""
        return self._counts.get(item, 0) - self._errors.get(item, 0)

    def top(self, n: int) -> list[tuple[Hashable, int]]:
        """The *n* items with the largest estimated counts."""
        ordered = sorted(self._counts.items(), key=lambda kv: -kv[1])
        return ordered[:n]

    def heavy_hitters(self, threshold: float) -> dict[Hashable, int]:
        """Items with estimated frequency >= ``threshold * n``.

        Contains every item whose true frequency exceeds that bar (the
        SpaceSaving no-false-negative guarantee for threshold >= 1/k).
        """
        if not 0 < threshold <= 1:
            raise ParameterError("threshold must lie in (0, 1]")
        floor = threshold * self.count
        return {it: c for it, c in self._counts.items() if c >= floor}

    def _merge_key(self) -> tuple:
        return (self.k,)

    def _merge_into(self, other: "SpaceSaving") -> None:
        """Merge by summing counts/errors; absent items inherit the other
        side's minimum count as error (standard mergeable-summaries rule)."""
        my_min = min(self._counts.values()) if len(self._counts) == self.k else 0
        their_min = min(other._counts.values()) if len(other._counts) == other.k else 0
        combined_counts: dict[Hashable, int] = {}
        combined_errors: dict[Hashable, int] = {}
        for item in set(self._counts) | set(other._counts):
            mine = self._counts.get(item)
            theirs = other._counts.get(item)
            if mine is not None and theirs is not None:
                combined_counts[item] = mine + theirs
                combined_errors[item] = self._errors[item] + other._errors[item]
            elif mine is not None:
                combined_counts[item] = mine + their_min
                combined_errors[item] = self._errors[item] + their_min
            else:
                combined_counts[item] = theirs + my_min
                combined_errors[item] = other._errors[item] + my_min
        # Keep the k largest.
        kept = sorted(combined_counts.items(), key=lambda kv: -kv[1])[: self.k]
        self._counts = dict(kept)
        self._errors = {it: combined_errors[it] for it, __ in kept}
        self._heap = [
            (cnt, next(self._tiebreak), it) for it, cnt in self._counts.items()
        ]
        heapq.heapify(self._heap)
        self.count += other.count

    def _split_into(self, n: int) -> list["SpaceSaving"]:
        """Partition counters by key hash.

        The re-merge is exact because the shards' key sets are disjoint and
        their combined size is the original table's (<= k), so the merge
        never reaches its keep-top-k cutoff, and a shard's table can only be
        full (len == k, activating min-inheritance) when every other shard
        is empty — min-inheritance then adds the empty side's minimum of 0.
        """
        parts = [SpaceSaving(self.k) for __ in range(n)]
        for item, cnt in self._counts.items():
            part = parts[shard_of(item, n)]
            part._counts[item] = cnt
            part._errors[item] = self._errors[item]
            part.count += cnt
            heapq.heappush(part._heap, (cnt, next(part._tiebreak), item))
        # Tracked counts can undershoot (or, after lossy merges, overshoot)
        # the stream length; shard 0 absorbs the residual so counts re-sum
        # to self.count exactly.
        parts[0].count += self.count - sum(p.count for p in parts)
        return parts

    def __len__(self) -> int:
        return len(self._counts)

    def to_bytes(self) -> bytes:
        """Serialize to a versioned byte payload.

        Keys must be strings, ints, floats or tuples thereof (the
        serialization layer's portable key types).
        """
        items = list(self._counts)
        try:
            return dump_state(
                _TYPE_TAG,
                {
                    "k": self.k,
                    "count": self.count,
                    "counts": {it: self._counts[it] for it in items},
                    "errors": {it: self._errors[it] for it in items},
                },
            )
        except (TypeError, SerializationError) as exc:
            raise SerializationError(
                "SpaceSaving keys must be JSON-portable to serialize"
            ) from exc

    @classmethod
    def from_bytes(cls, payload: bytes) -> "SpaceSaving":
        """Reconstruct a summary from :meth:`to_bytes` output."""
        state = load_state(_TYPE_TAG, payload)
        obj = cls(state["k"])
        obj.count = state["count"]
        obj._counts = dict(state["counts"])
        obj._errors = dict(state["errors"])
        obj._heap = [
            (cnt, next(obj._tiebreak), it) for it, cnt in obj._counts.items()
        ]
        heapq.heapify(obj._heap)
        return obj
