"""Lossy Counting and Sticky Sampling [Manku & Motwani, VLDB 2002].

The paper's "approximate frequency counts over data streams" citation.

* **Lossy Counting** (deterministic): the stream is processed in buckets of
  width ``1/epsilon``; at bucket boundaries, entries whose count plus bucket
  slack falls below the bucket id are evicted. Reported counts undercount by
  at most ``epsilon * n``.
* **Sticky Sampling** (probabilistic): sample new items with a rate that
  halves as the stream grows; counts of sampled items are exact thereafter.
  Expected space is ``(2/epsilon) log(1/(support*delta))`` — independent of n.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Hashable, Iterable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import make_rng


class LossyCounting(SynopsisBase):
    """Deterministic epsilon-deficient frequency counts."""

    def __init__(self, epsilon: float = 0.001):
        if not 0 < epsilon < 1:
            raise ParameterError("epsilon must lie in (0, 1)")
        self.epsilon = epsilon
        self.bucket_width = math.ceil(1.0 / epsilon)
        self.count = 0
        # item -> (count, max undercount Delta)
        self._entries: dict[Hashable, tuple[int, int]] = {}

    @property
    def current_bucket(self) -> int:
        return math.ceil(self.count / self.bucket_width) if self.count else 1

    def update(self, item: Any) -> None:
        self.count += 1
        bucket = self.current_bucket
        if item in self._entries:
            cnt, delta = self._entries[item]
            self._entries[item] = (cnt + 1, delta)
        else:
            self._entries[item] = (1, bucket - 1)
        if self.count % self.bucket_width == 0:
            self._prune(bucket)

    def update_many(self, items: Iterable[Any]) -> None:
        """Batch ingest: fold bucket-aligned chunks with a Counter.

        Within one bucket the order of arrivals is irrelevant — increments
        commute, every new entry gets the same ``bucket - 1`` slack, and no
        prune fires — so each chunk (cut at the next bucket boundary) folds
        in as pre-aggregated weighted updates, with the boundary prune
        replayed exactly where the sequential path would run it. The result
        is bit-identical to ``for x in items: self.update(x)``.
        """
        items = items if isinstance(items, (list, tuple)) else list(items)
        n = len(items)
        width = self.bucket_width
        entries = self._entries
        start = 0
        while start < n:
            room = width - (self.count % width)
            chunk = items[start : start + room]
            self.count += len(chunk)
            bucket = self.current_bucket
            slack = bucket - 1
            for item, weight in Counter(chunk).items():
                entry = entries.get(item)
                entries[item] = (
                    (weight, slack) if entry is None else (entry[0] + weight, entry[1])
                )
            if self.count % width == 0:
                self._prune(bucket)
                entries = self._entries
            start += room

    def _prune(self, bucket: int) -> None:
        self._entries = {
            it: (c, d) for it, (c, d) in self._entries.items() if c + d > bucket
        }

    def estimate(self, item: Any) -> int:
        """Lower bound on the frequency of *item* (undercount <= epsilon*n)."""
        return self._entries.get(item, (0, 0))[0]

    def heavy_hitters(self, support: float) -> dict[Hashable, int]:
        """All items with true frequency >= ``support * n`` (no false
        negatives); may include items above ``(support - epsilon) * n``."""
        if not 0 < support <= 1:
            raise ParameterError("support must lie in (0, 1]")
        floor = (support - self.epsilon) * self.count
        return {it: c for it, (c, __) in self._entries.items() if c >= floor}

    @property
    def n_entries(self) -> int:
        """Tracked entries (bounded by (1/eps) log(eps n))."""
        return len(self._entries)

    def _merge_key(self) -> tuple:
        return (self.epsilon,)

    def _merge_into(self, other: "LossyCounting") -> None:
        for item, (cnt, delta) in other._entries.items():
            mine = self._entries.get(item)
            if mine is None:
                self._entries[item] = (cnt, delta + self.current_bucket - 1)
            else:
                self._entries[item] = (mine[0] + cnt, min(mine[1], delta))
        self.count += other.count
        self._prune(self.current_bucket)

    def __len__(self) -> int:
        return len(self._entries)


class StickySampling(SynopsisBase):
    """Probabilistic frequency counts with stream-length-independent space."""

    def __init__(
        self,
        support: float = 0.01,
        epsilon: float = 0.001,
        failure: float = 1e-4,
        seed: int | None = 0,
    ):
        if not 0 < epsilon < support <= 1:
            raise ParameterError("need 0 < epsilon < support <= 1")
        if not 0 < failure < 1:
            raise ParameterError("failure probability must lie in (0, 1)")
        self.support = support
        self.epsilon = epsilon
        self.failure = failure
        self.count = 0
        self._rng = make_rng(seed)
        self._t = math.ceil(math.log(1.0 / (support * failure)) / epsilon)
        self._rate = 1  # sample 1-in-rate
        self._next_resample = 2 * self._t
        self._entries: dict[Hashable, int] = {}

    def update(self, item: Any) -> None:
        self.count += 1
        if item in self._entries:
            self._entries[item] += 1
        elif self._rng.random() < 1.0 / self._rate:
            self._entries[item] = 1
        if self.count >= self._next_resample:
            self._rate *= 2
            self._next_resample += 2 * self._t * self._rate
            # Age existing entries: for each, flip a fair coin repeatedly,
            # diminishing counts as if they had been sampled at the new rate.
            survivors: dict[Hashable, int] = {}
            for it, cnt in self._entries.items():
                while cnt > 0 and self._rng.random() < 0.5:
                    cnt -= 1
                if cnt > 0:
                    survivors[it] = cnt
            self._entries = survivors

    def estimate(self, item: Any) -> int:
        """Estimated frequency of *item* (undercount <= epsilon*n whp)."""
        return self._entries.get(item, 0)

    def heavy_hitters(self, support: float | None = None) -> dict[Hashable, int]:
        """Items with estimated frequency >= ``(support - epsilon) * n``."""
        support = self.support if support is None else support
        floor = (support - self.epsilon) * self.count
        return {it: c for it, c in self._entries.items() if c >= floor}

    @property
    def n_entries(self) -> int:
        """Tracked entries (expected ~ 2/eps log(1/(s*delta)))."""
        return len(self._entries)

    def _merge_key(self) -> tuple:
        return (self.support, self.epsilon, self.failure)

    def _merge_into(self, other: "StickySampling") -> None:
        for item, cnt in other._entries.items():
            self._entries[item] = self._entries.get(item, 0) + cnt
        self.count += other.count

    def __len__(self) -> int:
        return len(self._entries)
