"""EWMA control chart — drift-robust anomaly detection.

The exponentially weighted moving average chart from statistical process
control: track ``ewma = alpha*x + (1-alpha)*ewma`` and flag points outside
``L`` times the EWMA's asymptotic standard deviation. Adapts to slow level
changes that a fixed-window z-score would misflag, at the cost of slower
reaction to genuine level shifts — the trade-off the anomaly bench sweeps.
"""

from __future__ import annotations

import math

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class EWMAControlChart(SynopsisBase):
    """EWMA chart with smoothing *alpha* and control width *L* sigmas."""

    def __init__(self, alpha: float = 0.1, L: float = 3.0, warmup: int = 16):
        if not 0 < alpha <= 1:
            raise ParameterError("alpha must lie in (0, 1]")
        if L <= 0:
            raise ParameterError("control width L must be positive")
        if warmup < 2:
            raise ParameterError("warmup must be at least 2")
        self.alpha = alpha
        self.L = L
        self.warmup = warmup
        self.count = 0
        self.ewma = 0.0
        self.last_score = 0.0
        # Residual variance tracked with its own (slower) EWMA.
        self._var = 0.0

    def control_limits(self) -> tuple[float, float]:
        """Current (lower, upper) control limits."""
        # Asymptotic EWMA std: sigma * sqrt(alpha / (2 - alpha)).
        sigma = math.sqrt(max(self._var, 1e-300))
        half = self.L * sigma
        return self.ewma - half, self.ewma + half

    def score(self, value: float) -> float:
        """Deviation of *value* from the EWMA in residual-sigma units."""
        if self.count < self.warmup or self._var == 0.0:
            return 0.0
        return (value - self.ewma) / math.sqrt(self._var)

    def update(self, item: float) -> bool:
        """Score then absorb *item*; returns True if out of control."""
        value = float(item)
        self.last_score = self.score(value)
        anomalous = self.count >= self.warmup and abs(self.last_score) > self.L
        if self.count == 0:
            self.ewma = value
        else:
            residual = value - self.ewma
            if not anomalous:  # anomalies don't update the model
                self._var = (1 - self.alpha) * self._var + self.alpha * residual * residual
                self.ewma += self.alpha * residual
        if self.count < self.warmup:
            residual = value - self.ewma
            self._var = max(self._var, residual * residual, 1e-12)
        self.count += 1
        return anomalous

    def _merge_key(self) -> tuple:
        return (self.alpha, self.L, self.warmup)

    def _merge_into(self, other: "EWMAControlChart") -> None:
        raise NotImplementedError("EWMA state is order-sensitive; not mergeable")
