"""Robust sliding-window detection via median absolute deviation (MAD).

Mean/std detectors are themselves corrupted by the outliers they hunt; the
MAD detector scores ``|x - median| / (1.4826 * MAD)`` over the window,
where both statistics have a 50% breakdown point. The window's sorted
order is maintained incrementally (bisect insert/remove), so updates are
O(log w + w) with small constants — the robust non-parametric detector
cited for sensor streams [Subramaniam et al., VLDB 2006, in spirit].
"""

from __future__ import annotations

import bisect
from collections import deque

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase

_MAD_SCALE = 1.4826  # makes MAD a consistent sigma estimator for Gaussians


class SlidingMAD(SynopsisBase):
    """Sliding-window robust z-score (Hampel identifier)."""

    def __init__(self, window: int = 256, threshold: float = 3.5, warmup: int = 16):
        if window <= 1:
            raise ParameterError("window must exceed 1")
        if threshold <= 0:
            raise ParameterError("threshold must be positive")
        if warmup < 3:
            raise ParameterError("warmup must be at least 3")
        self.window = window
        self.threshold = threshold
        self.warmup = warmup
        self.count = 0
        self.last_score = 0.0
        self._order: deque[float] = deque()  # arrival order
        self._sorted: list[float] = []

    def _median(self, data: list[float]) -> float:
        n = len(data)
        mid = n // 2
        return data[mid] if n % 2 else (data[mid - 1] + data[mid]) / 2.0

    def median(self) -> float:
        """Current window median."""
        if not self._sorted:
            raise ParameterError("median of an empty window")
        return self._median(self._sorted)

    def mad(self) -> float:
        """Current median absolute deviation."""
        med = self.median()
        deviations = sorted(abs(x - med) for x in self._sorted)
        return self._median(deviations)

    def score(self, value: float) -> float:
        """Robust z-score of *value* against the current window."""
        if len(self._sorted) < self.warmup:
            return 0.0
        med = self.median()
        mad = self.mad()
        if mad == 0.0:
            return 0.0 if value == med else float("inf")
        return (value - med) / (_MAD_SCALE * mad)

    def update(self, item: float) -> bool:
        """Score then absorb *item*; returns True if anomalous."""
        value = float(item)
        self.count += 1
        self.last_score = self.score(value)
        anomalous = abs(self.last_score) > self.threshold
        self._order.append(value)
        bisect.insort(self._sorted, value)
        if len(self._order) > self.window:
            old = self._order.popleft()
            del self._sorted[bisect.bisect_left(self._sorted, old)]
        return anomalous

    def _merge_key(self) -> tuple:
        return (self.window, self.threshold, self.warmup)

    def _merge_into(self, other: "SlidingMAD") -> None:
        raise NotImplementedError("sliding windows are position-bound; not mergeable")
