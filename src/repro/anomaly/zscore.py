"""Rolling z-score anomaly detection — the classic first-line detector.

Maintains mean/variance over a sliding window (exact, via a ring buffer and
running sums) and flags points more than ``threshold`` standard deviations
from the windowed mean. Simple, interpretable, and the baseline every other
detector in this package is compared against.
"""

from __future__ import annotations

import math
from collections import deque

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class RollingZScore(SynopsisBase):
    """Sliding-window z-score detector.

    ``score(x)`` returns the z-score of *x* against the current window;
    ``update(x)`` scores *and* absorbs the point, returning the score via
    :attr:`last_score`. Anomalous points can be excluded from the window
    (``exclude_anomalies=True``) so a spike does not inflate the variance
    used to judge its neighbours.
    """

    def __init__(
        self,
        window: int = 256,
        threshold: float = 3.0,
        warmup: int = 16,
        exclude_anomalies: bool = True,
    ):
        if window <= 1:
            raise ParameterError("window must exceed 1")
        if threshold <= 0:
            raise ParameterError("threshold must be positive")
        if warmup < 2:
            raise ParameterError("warmup must be at least 2")
        self.window = window
        self.threshold = threshold
        self.warmup = warmup
        self.exclude_anomalies = exclude_anomalies
        self.count = 0
        self.last_score = 0.0
        self._buffer: deque[float] = deque()
        self._sum = 0.0
        self._sum_sq = 0.0

    def _mean_std(self) -> tuple[float, float]:
        n = len(self._buffer)
        if n == 0:
            return 0.0, 0.0
        mean = self._sum / n
        var = max(0.0, self._sum_sq / n - mean * mean)
        return mean, math.sqrt(var)

    def score(self, value: float) -> float:
        """z-score of *value* against the current window (0 during warmup)."""
        if len(self._buffer) < self.warmup:
            return 0.0
        mean, std = self._mean_std()
        if std == 0.0:
            return 0.0 if value == mean else math.inf
        return (value - mean) / std

    def is_anomaly(self, value: float) -> bool:
        """Whether *value* would be flagged against the current window."""
        return abs(self.score(value)) > self.threshold

    def update(self, item: float) -> bool:
        """Score then absorb *item*; returns True if it was anomalous."""
        value = float(item)
        self.count += 1
        self.last_score = self.score(value)
        anomalous = abs(self.last_score) > self.threshold
        if not (anomalous and self.exclude_anomalies):
            self._buffer.append(value)
            self._sum += value
            self._sum_sq += value * value
            if len(self._buffer) > self.window:
                old = self._buffer.popleft()
                self._sum -= old
                self._sum_sq -= old * old
        return anomalous

    def _merge_key(self) -> tuple:
        return (self.window, self.threshold, self.warmup, self.exclude_anomalies)

    def _merge_into(self, other: "RollingZScore") -> None:
        raise NotImplementedError("rolling windows are position-bound; not mergeable")
