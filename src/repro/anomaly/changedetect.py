"""Distribution change detection ("change you can believe in").

[Dasu et al. 2009, cited in Table 1] frame change detection as comparing
the *distribution* of a current window against a reference window. Two
detectors:

* :class:`PageHinkley` — the classic sequential test for mean shift:
  O(1) state, detects sustained drift rather than point outliers.
* :class:`WindowKLDetector` — histogram KL divergence between a reference
  window and the sliding current window; flags when the divergence
  exceeds a self-calibrated threshold, catching variance/shape changes a
  mean test misses.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class PageHinkley(SynopsisBase):
    """Page–Hinkley sequential mean-shift test.

    Accumulates ``m_t = sum (x_i - mean_i - delta)``; a change is flagged
    when ``m_t - min(m_t)`` exceeds ``threshold``. ``delta`` is the
    magnitude of drift considered negligible.
    """

    def __init__(self, delta: float = 0.05, threshold: float = 50.0, warmup: int = 30):
        if delta < 0:
            raise ParameterError("delta must be non-negative")
        if threshold <= 0:
            raise ParameterError("threshold must be positive")
        if warmup < 1:
            raise ParameterError("warmup must be positive")
        self.delta = delta
        self.threshold = threshold
        self.warmup = warmup
        self.count = 0
        self._mean = 0.0
        self._cum = 0.0
        self._cum_min = 0.0
        self.changes: list[int] = []

    def update(self, item: float) -> bool:
        """Observe *item*; True when a sustained upward mean shift fires."""
        value = float(item)
        self.count += 1
        self._mean += (value - self._mean) / self.count
        self._cum += value - self._mean - self.delta
        self._cum_min = min(self._cum_min, self._cum)
        if self.count > self.warmup and self._cum - self._cum_min > self.threshold:
            self.changes.append(self.count)
            self._reset()
            return True
        return False

    def _reset(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._cum = 0.0
        self._cum_min = 0.0

    @property
    def statistic(self) -> float:
        """Current test statistic ``m_t - min(m_t)``."""
        return self._cum - self._cum_min

    def _merge_key(self) -> tuple:
        return (self.delta, self.threshold)

    def _merge_into(self, other: "PageHinkley") -> None:
        raise NotImplementedError("sequential tests are order-sensitive")


class WindowKLDetector(SynopsisBase):
    """KL-divergence change detector over histogrammed windows.

    The first ``reference`` observations freeze the reference histogram;
    thereafter each arrival updates a sliding current-window histogram and
    the detector flags when ``KL(current || reference)`` exceeds
    ``threshold`` (in nats). Bin edges come from the reference quantiles,
    so the reference distribution is uniform over bins by construction.
    """

    def __init__(
        self,
        reference: int = 1_000,
        window: int = 500,
        bins: int = 16,
        threshold: float = 0.25,
    ):
        if reference < bins * 4:
            raise ParameterError("reference must be at least 4x bins")
        if window < bins * 2:
            raise ParameterError("window must be at least 2x bins")
        if bins < 2:
            raise ParameterError("bins must be at least 2")
        if threshold <= 0:
            raise ParameterError("threshold must be positive")
        self.reference = reference
        self.window = window
        self.bins = bins
        self.threshold = threshold
        self.count = 0
        self._ref_buffer: list[float] = []
        self._edges: np.ndarray | None = None
        self._current: deque[int] = deque(maxlen=window)
        self._bin_counts = np.zeros(bins, dtype=np.int64)

    def _bin(self, value: float) -> int:
        assert self._edges is not None
        return int(np.searchsorted(self._edges, value, side="right"))

    def update(self, item: float) -> bool:
        """Observe *item*; True when the window distribution diverged."""
        value = float(item)
        self.count += 1
        if self._edges is None:
            self._ref_buffer.append(value)
            if len(self._ref_buffer) == self.reference:
                qs = np.linspace(0, 1, self.bins + 1)[1:-1]
                self._edges = np.quantile(self._ref_buffer, qs)
                self._ref_buffer = []
            return False
        b = self._bin(value)
        if len(self._current) == self.window:
            self._bin_counts[self._current[0]] -= 1
        self._current.append(b)
        self._bin_counts[b] += 1
        if len(self._current) < self.window:
            return False
        return self.divergence() > self.threshold

    def divergence(self) -> float:
        """KL(current || reference) in nats (reference is uniform by
        construction of the quantile bin edges)."""
        if self._edges is None or not len(self._current):
            return 0.0
        n = len(self._current)
        ref_p = 1.0 / self.bins
        out = 0.0
        for count in self._bin_counts:
            if count > 0:
                p = count / n
                out += p * math.log(p / ref_p)
        return out

    @property
    def calibrated(self) -> bool:
        """Whether the reference histogram has been frozen."""
        return self._edges is not None

    def _merge_key(self) -> tuple:
        return (self.reference, self.window, self.bins, self.threshold)

    def _merge_into(self, other: "WindowKLDetector") -> None:
        raise NotImplementedError("windowed detectors are order-sensitive")
