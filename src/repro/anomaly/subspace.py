"""Anomaly detection by principal-subspace tracking.

[dos Santos Teixeira & Milidiú, SAC 2010] detect anomalies in
multi-dimensional streams by tracking the principal subspace and flagging
points with large reconstruction error. This implementation tracks the
top-k subspace with Oja's incremental rule (no stored history) and scores
each arrival by the energy outside the subspace.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import make_np_rng


class SubspaceTracker(SynopsisBase):
    """Oja-rule principal subspace tracker with reconstruction-error scoring."""

    def __init__(
        self,
        dims: int,
        k: int = 1,
        learning_rate: float = 0.05,
        threshold: float = 4.0,
        warmup: int = 50,
        seed: int = 0,
    ):
        if dims <= 0:
            raise ParameterError("dims must be positive")
        if not 1 <= k <= dims:
            raise ParameterError("k must lie in [1, dims]")
        if not 0 < learning_rate <= 1:
            raise ParameterError("learning_rate must lie in (0, 1]")
        if threshold <= 0:
            raise ParameterError("threshold must be positive")
        self.dims = dims
        self.k = k
        self.learning_rate = learning_rate
        self.threshold = threshold
        self.warmup = warmup
        self.count = 0
        self.last_score = 0.0
        rng = make_np_rng(seed)
        basis, __ = np.linalg.qr(rng.normal(size=(dims, k)))
        self._basis = basis  # dims x k, orthonormal columns
        self._mean = np.zeros(dims)
        # Running scale of residual energy for normalised scoring.
        self._resid_ema = 1.0

    def residual(self, x: Sequence[float]) -> float:
        """Energy of *x* outside the tracked subspace (after centring)."""
        v = np.asarray(x, dtype=np.float64) - self._mean
        proj = self._basis @ (self._basis.T @ v)
        return float(np.linalg.norm(v - proj))

    def score(self, x: Sequence[float]) -> float:
        """Residual of *x* in units of the running residual scale."""
        if self.count < self.warmup:
            return 0.0
        return self.residual(x) / max(np.sqrt(self._resid_ema), 1e-12)

    def update(self, item: Sequence[float]) -> bool:
        """Score, adapt the subspace, and return True if anomalous."""
        x = np.asarray(item, dtype=np.float64)
        if x.shape != (self.dims,):
            raise ParameterError(f"expected a vector of dimension {self.dims}")
        self.count += 1
        self.last_score = self.score(x)
        anomalous = self.count > self.warmup and self.last_score > self.threshold
        # Adapt only on normal points so anomalies don't drag the subspace.
        if not anomalous:
            self._mean += (x - self._mean) / min(self.count, 1000)
            v = x - self._mean
            y = self._basis.T @ v
            self._basis += self.learning_rate * (np.outer(v, y) - self._basis @ np.outer(y, y))
            self._basis, __ = np.linalg.qr(self._basis)
            r = self.residual(x)
            self._resid_ema = 0.98 * self._resid_ema + 0.02 * r * r
        return anomalous

    def explained_fraction(self, samples: np.ndarray) -> float:
        """Fraction of energy of *samples* captured by the subspace."""
        centred = samples - self._mean
        proj = centred @ self._basis @ self._basis.T
        total = float(np.sum(centred**2))
        return float(np.sum(proj**2)) / total if total else 1.0

    def _merge_key(self) -> tuple:
        return (self.dims, self.k)

    def _merge_into(self, other: "SubspaceTracker") -> None:
        raise NotImplementedError("subspace trackers are order-sensitive")
