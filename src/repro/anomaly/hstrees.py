"""Streaming Half-Space Trees [Tan, Ting & Liu, IJCAI 2011].

Table 1's "fast anomaly detection for streaming data" citation: an ensemble
of random binary trees built *without data* over the (normalised) feature
space. Each tree node halves a randomly chosen dimension; leaves record how
much recent "mass" fell in their region. A point falling in a low-mass
region is anomalous. Mass is learned in the previous window and scored in
the current one, then the windows swap — one O(depth) pass per tree per
point, constant memory, no model fitting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import derive_seed, make_rng


class _Node:
    __slots__ = ("dim", "split", "left", "right", "ref_mass", "new_mass", "depth")

    def __init__(self, depth: int):
        self.dim = -1
        self.split = 0.0
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.ref_mass = 0.0
        self.new_mass = 0.0
        self.depth = depth


def _build(rng, mins, maxs, depth, max_depth) -> _Node:
    node = _Node(depth)
    if depth == max_depth:
        return node
    dim = rng.randrange(len(mins))
    split = (mins[dim] + maxs[dim]) / 2.0  # bisect the work range
    node.dim = dim
    node.split = split
    left_maxs = list(maxs)
    left_maxs[dim] = split
    right_mins = list(mins)
    right_mins[dim] = split
    node.left = _build(rng, mins, left_maxs, depth + 1, max_depth)
    node.right = _build(rng, right_mins, maxs, depth + 1, max_depth)
    return node


class HalfSpaceTrees(SynopsisBase):
    """HS-Trees ensemble anomaly detector for vectors in ``[0, 1]^dims``.

    ``update(x)`` returns True when the windowed mass score of *x* falls
    below ``quantile`` of recently seen scores (self-calibrating threshold).
    ``score(x)`` is the raw mass score — *smaller means more anomalous*.
    """

    def __init__(
        self,
        dims: int = 1,
        n_trees: int = 25,
        max_depth: int = 8,
        window: int = 250,
        quantile: float = 0.02,
        seed: int = 0,
    ):
        if dims <= 0:
            raise ParameterError("dims must be positive")
        if n_trees <= 0:
            raise ParameterError("n_trees must be positive")
        if max_depth <= 0:
            raise ParameterError("max_depth must be positive")
        if window <= 0:
            raise ParameterError("window must be positive")
        if not 0 < quantile < 0.5:
            raise ParameterError("quantile must lie in (0, 0.5)")
        self.dims = dims
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.window = window
        self.quantile = quantile
        self.count = 0
        self.last_score = 0.0
        self._trees = []
        for t in range(n_trees):
            rng = make_rng(derive_seed(seed, t))
            # Work range per Tan et al.: random subrange of [0, 1]^d.
            mins, maxs = [], []
            for __ in range(dims):
                sq = rng.random()
                spread = 2.0 * max(sq, 1.0 - sq)
                mins.append(sq - spread)
                maxs.append(sq + spread)
            self._trees.append(_build(rng, mins, maxs, 0, max_depth))
        self._recent_scores: list[float] = []

    def _traverse(self, root: _Node, x: Sequence[float], learn_new: bool, score: bool) -> float:
        node = root
        total = 0.0
        while True:
            if score:
                total += node.ref_mass * (2.0**node.depth)
            if learn_new:
                node.new_mass += 1.0
            if node.left is None:
                break
            node = node.left if x[node.dim] < node.split else node.right
        return total

    def _swap_windows(self) -> None:
        stack = list(self._trees)
        while stack:
            node = stack.pop()
            node.ref_mass = node.new_mass
            node.new_mass = 0.0
            if node.left is not None:
                stack.extend((node.left, node.right))

    def score(self, x: Sequence[float] | float) -> float:
        """Mass score of *x* (smaller = more anomalous)."""
        vec = [float(x)] if np.isscalar(x) else [float(v) for v in x]
        if len(vec) != self.dims:
            raise ParameterError(f"expected {self.dims}-dimensional input")
        return sum(self._traverse(t, vec, learn_new=False, score=True) for t in self._trees)

    def update(self, item: Sequence[float] | float) -> bool:
        """Score, learn, and return True if *item* looks anomalous."""
        vec = [float(item)] if np.isscalar(item) else [float(v) for v in item]
        if len(vec) != self.dims:
            raise ParameterError(f"expected {self.dims}-dimensional input")
        self.count += 1
        self.last_score = sum(
            self._traverse(t, vec, learn_new=True, score=True) for t in self._trees
        )
        if self.count % self.window == 0:
            self._swap_windows()
        # Self-calibrating threshold over the last window of scores.
        self._recent_scores.append(self.last_score)
        if len(self._recent_scores) > 4 * self.window:
            self._recent_scores = self._recent_scores[-2 * self.window :]
        if self.count <= 2 * self.window:
            return False  # warming up reference mass
        cutoff = float(np.quantile(self._recent_scores[-self.window :], self.quantile))
        return self.last_score <= cutoff

    def _merge_key(self) -> tuple:
        return (self.dims, self.n_trees, self.max_depth, self.window)

    def _merge_into(self, other: "HalfSpaceTrees") -> None:
        raise NotImplementedError("HS-Trees mass profiles are window-bound")
