"""Streaming anomaly detection.

Table 1 row "Anomaly Detection" — detect anomalies in a data stream
(application: sensor networks).
"""

from repro.anomaly.changedetect import PageHinkley, WindowKLDetector
from repro.anomaly.ewma import EWMAControlChart
from repro.anomaly.hstrees import HalfSpaceTrees
from repro.anomaly.mad import SlidingMAD
from repro.anomaly.subspace import SubspaceTracker
from repro.anomaly.zscore import RollingZScore

__all__ = [
    "EWMAControlChart",
    "HalfSpaceTrees",
    "PageHinkley",
    "RollingZScore",
    "SlidingMAD",
    "SubspaceTracker",
    "WindowKLDetector",
]
