"""Inversion counting: exact baselines and streaming estimation.

Table 1 row "Counting Inversions" — estimate the number of inversions
(application: measure sortedness of data).
"""

from repro.inversions.exact import (
    FenwickTree,
    count_inversions_bit,
    count_inversions_mergesort,
)
from repro.inversions.streaming import InversionEstimator

__all__ = [
    "FenwickTree",
    "InversionEstimator",
    "count_inversions_bit",
    "count_inversions_mergesort",
]
