"""Exact inversion counting baselines.

An inversion is a pair ``i < j`` with ``a[i] > a[j]``; the inversion count
measures how unsorted a sequence is (Table 1: "measure sortedness of
data"). Two exact offline baselines: merge-sort counting and a Fenwick
(binary indexed tree) sweep over rank-compressed values.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.exceptions import ParameterError


def count_inversions_mergesort(values: Sequence[float]) -> int:
    """Exact inversion count in O(n log n) via merge sort."""
    arr = list(values)

    def sort_count(a: list) -> tuple[list, int]:
        if len(a) <= 1:
            return a, 0
        mid = len(a) // 2
        left, inv_l = sort_count(a[:mid])
        right, inv_r = sort_count(a[mid:])
        merged: list = []
        inversions = inv_l + inv_r
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i] <= right[j]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
                inversions += len(left) - i
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged, inversions

    return sort_count(arr)[1]


class FenwickTree:
    """Binary indexed tree over ``[0, size)`` supporting point add / prefix sum."""

    def __init__(self, size: int):
        if size <= 0:
            raise ParameterError("size must be positive")
        self.size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int = 1) -> None:
        """Add *delta* at *index*."""
        if not 0 <= index < self.size:
            raise ParameterError("index out of range")
        i = index + 1
        while i <= self.size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries in ``[0, index]``."""
        if index < 0:
            return 0
        i = min(index, self.size - 1) + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def total(self) -> int:
        """Sum of all entries."""
        return self.prefix_sum(self.size - 1)


def count_inversions_bit(values: Sequence[float]) -> int:
    """Exact inversion count via a Fenwick tree over value ranks."""
    arr = list(values)
    if not arr:
        return 0
    ranks = {v: r for r, v in enumerate(sorted(set(arr)))}
    tree = FenwickTree(len(ranks))
    inversions = 0
    for seen, value in enumerate(arr):
        rank = ranks[value]
        # Elements already seen with strictly greater rank are inversions.
        inversions += seen - tree.prefix_sum(rank)
        tree.add(rank)
    return inversions
