"""Streaming (sampling-based) inversion estimation.

[Ajtai, Jayram, Kumar & Sivakumar, STOC 2002] show inversions can be
approximated in sublinear space. This module implements the Monte-Carlo
pair-sampling estimator in that spirit: each of *k* independent samplers
reservoir-samples a position ``i`` (keeping its value) and then
reservoir-samples a later position ``j > i``; the indicator
``a[i] > a[j]`` is a (near-)uniform draw over ordered pairs, so

    inversions ≈ mean(indicators) * n * (n - 1) / 2.

Space is O(k) words regardless of stream length.
"""

from __future__ import annotations

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import derive_seed, make_rng


class _PairSampler:
    """Uniform reservoir over *ordered pairs* of stream positions.

    When element n-1 arrives it creates n-1 new pairs out of C(n, 2) total,
    so the current pair is replaced with probability 2/n; the new pair's
    first element is drawn from a size-1 uniform reservoir over the strict
    prefix, making the final (i, j) uniform over all ordered pairs.
    """

    __slots__ = ("rng", "prefix_value", "pair")

    def __init__(self, rng):
        self.rng = rng
        self.prefix_value: float | None = None  # uniform over positions < n
        self.pair: tuple[float, float] | None = None

    def observe(self, pos: int, value: float) -> None:
        n = pos + 1
        if pos > 0 and self.rng.randrange(n) < 2:  # prob 2/n
            self.pair = (self.prefix_value, value)
        # Update the prefix reservoir *after* pair sampling so it reflects
        # positions strictly before the next element.
        if self.rng.randrange(n) == 0:
            self.prefix_value = value

    @property
    def inverted(self) -> bool | None:
        if self.pair is None:
            return None
        return self.pair[0] > self.pair[1]


class InversionEstimator(SynopsisBase):
    """Estimate the number of inversions using *k* O(1)-space pair samplers."""

    def __init__(self, k: int = 400, seed: int = 0):
        if k <= 0:
            raise ParameterError("sampler count k must be positive")
        self.k = k
        self.count = 0
        self._samplers = [
            _PairSampler(make_rng(derive_seed(seed, i))) for i in range(k)
        ]

    def update(self, item: float) -> None:
        pos = self.count
        self.count += 1
        value = float(item)
        for sampler in self._samplers:
            sampler.observe(pos, value)

    def inverted_fraction(self) -> float:
        """Estimated fraction of ordered pairs that are inverted."""
        votes = [s.inverted for s in self._samplers if s.inverted is not None]
        if not votes:
            return 0.0
        return sum(votes) / len(votes)

    def estimate(self) -> float:
        """Estimated inversion count ``fraction * n(n-1)/2``."""
        n = self.count
        return self.inverted_fraction() * n * (n - 1) / 2.0

    def sortedness(self) -> float:
        """1 for perfectly sorted, 0 for reverse-sorted (1 - 2*fraction
        mapped to [0,1] is avoided; this is simply 1 - inverted fraction)."""
        return 1.0 - self.inverted_fraction()

    def _merge_key(self) -> tuple:
        return (self.k,)

    def _merge_into(self, other: "InversionEstimator") -> None:
        raise NotImplementedError(
            "pair samplers are bound to stream positions; estimate per "
            "partition and combine externally"
        )
