"""Hoeffding tree (VFDT) [Domingos & Hulten, KDD 2000].

The canonical incremental decision-tree learner: each leaf accumulates
sufficient statistics; a leaf splits only when the Hoeffding bound
``eps = sqrt(R^2 ln(1/delta) / 2n)`` certifies that the best split's
information gain beats the runner-up's with high probability — so the
streamed tree converges to the batch tree without storing examples.

Numeric features are summarised per class with Gaussian estimators
(mean/variance via Welford), the standard VFDT-with-numeric-attributes
variant; split candidates are midpoints between class means.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Hashable, Sequence

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class _GaussianStat:
    """Per-(feature, class) running Gaussian (Welford)."""

    __slots__ = ("n", "mean", "m2")

    def __init__(self):
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (value - self.mean)

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        return math.sqrt(self.m2 / (self.n - 1))

    def prob_le(self, threshold: float) -> float:
        """P(X <= threshold) under the fitted Gaussian."""
        std = self.std
        if std == 0.0:
            return 1.0 if self.mean <= threshold else 0.0
        z = (threshold - self.mean) / (std * math.sqrt(2.0))
        return 0.5 * (1.0 + math.erf(z))


class _Leaf:
    __slots__ = ("class_counts", "stats", "n_since_check")

    def __init__(self, dims: int):
        self.class_counts: dict[Hashable, int] = defaultdict(int)
        # stats[feature][label] -> _GaussianStat
        self.stats: list[dict[Hashable, _GaussianStat]] = [
            defaultdict(_GaussianStat) for __ in range(dims)
        ]
        self.n_since_check = 0

    @property
    def total(self) -> int:
        return sum(self.class_counts.values())

    def majority(self) -> Hashable:
        return max(self.class_counts, key=self.class_counts.get)


class _Split:
    __slots__ = ("feature", "threshold", "left", "right")

    def __init__(self, feature: int, threshold: float, left, right):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right


def _entropy(counts) -> float:
    total = sum(counts)
    if total == 0:
        return 0.0
    out = 0.0
    for c in counts:
        if c > 0:
            p = c / total
            out -= p * math.log2(p)
    return out


class HoeffdingTree(SynopsisBase):
    """Incremental decision tree for numeric features and hashable labels."""

    def __init__(
        self,
        dims: int,
        delta: float = 1e-6,
        grace_period: int = 200,
        tie_threshold: float = 0.05,
        max_depth: int = 12,
    ):
        if dims <= 0:
            raise ParameterError("dims must be positive")
        if not 0 < delta < 1:
            raise ParameterError("delta must lie in (0, 1)")
        if grace_period <= 0:
            raise ParameterError("grace_period must be positive")
        if tie_threshold < 0:
            raise ParameterError("tie_threshold must be non-negative")
        if max_depth <= 0:
            raise ParameterError("max_depth must be positive")
        self.dims = dims
        self.delta = delta
        self.grace_period = grace_period
        self.tie_threshold = tie_threshold
        self.max_depth = max_depth
        self.count = 0
        self.correct = 0  # progressive validation
        self._root: _Leaf | _Split = _Leaf(dims)

    # -- routing ---------------------------------------------------------

    def _sort_to_leaf(self, x: Sequence[float]) -> tuple[_Leaf, int]:
        node = self._root
        depth = 0
        while isinstance(node, _Split):
            node = node.left if x[node.feature] <= node.threshold else node.right
            depth += 1
        return node, depth

    def predict(self, x: Sequence[float]) -> Hashable | None:
        """Majority label of the leaf *x* sorts to (None before any data)."""
        leaf, __ = self._sort_to_leaf(x)
        if not leaf.class_counts:
            return None
        return leaf.majority()

    def update(self, item: tuple[Sequence[float], Hashable]) -> None:
        x, y = item
        vec = np.asarray(x, dtype=np.float64)
        if vec.shape != (self.dims,):
            raise ParameterError(f"expected a vector of dimension {self.dims}")
        self.count += 1
        leaf, depth = self._sort_to_leaf(vec)
        if leaf.class_counts and leaf.majority() == y:
            self.correct += 1
        leaf.class_counts[y] += 1
        for f in range(self.dims):
            leaf.stats[f][y].add(float(vec[f]))
        leaf.n_since_check += 1
        if (
            leaf.n_since_check >= self.grace_period
            and depth < self.max_depth
            and len(leaf.class_counts) > 1
        ):
            leaf.n_since_check = 0
            self._try_split(leaf, depth)

    # -- splitting -------------------------------------------------------

    def _candidate_gain(self, leaf: _Leaf, feature: int, threshold: float) -> float:
        base = _entropy(leaf.class_counts.values())
        left_counts, right_counts = [], []
        for label, total in leaf.class_counts.items():
            p_le = leaf.stats[feature][label].prob_le(threshold)
            left_counts.append(total * p_le)
            right_counts.append(total * (1.0 - p_le))
        n_left, n_right = sum(left_counts), sum(right_counts)
        total = n_left + n_right
        if total == 0 or n_left == 0 or n_right == 0:
            return 0.0
        return base - (
            n_left / total * _entropy(left_counts)
            + n_right / total * _entropy(right_counts)
        )

    def _best_split_for_feature(self, leaf: _Leaf, feature: int) -> tuple[float, float]:
        means = [s.mean for s in leaf.stats[feature].values() if s.n > 0]
        if len(means) < 2:
            return 0.0, 0.0
        means.sort()
        best_gain, best_threshold = 0.0, 0.0
        for a, b in zip(means, means[1:]):
            threshold = (a + b) / 2.0
            gain = self._candidate_gain(leaf, feature, threshold)
            if gain > best_gain:
                best_gain, best_threshold = gain, threshold
        return best_gain, best_threshold

    def _try_split(self, leaf: _Leaf, depth: int) -> None:
        candidates = sorted(
            (self._best_split_for_feature(leaf, f) + (f,) for f in range(self.dims)),
            reverse=True,
        )
        (best_gain, best_threshold, best_feature) = candidates[0]
        second_gain = candidates[1][0] if len(candidates) > 1 else 0.0
        if best_gain <= 0:
            return
        n = leaf.total
        log2_classes = math.log2(max(2, len(leaf.class_counts)))
        eps = math.sqrt(log2_classes**2 * math.log(1.0 / self.delta) / (2.0 * n))
        if best_gain - second_gain > eps or eps < self.tie_threshold:
            self._split_leaf(leaf, best_feature, best_threshold)

    def _split_leaf(self, leaf: _Leaf, feature: int, threshold: float) -> None:
        split = _Split(feature, threshold, _Leaf(self.dims), _Leaf(self.dims))
        # Seed the children's priors from the parent's expected routing so
        # early predictions are sensible.
        for label, total in leaf.class_counts.items():
            p_le = leaf.stats[feature][label].prob_le(threshold)
            left = int(round(total * p_le))
            if left:
                split.left.class_counts[label] = left
            if total - left:
                split.right.class_counts[label] = total - left
        self._replace(leaf, split)

    def _replace(self, target: _Leaf, replacement: _Split) -> None:
        if self._root is target:
            self._root = replacement
            return
        stack: list[_Split] = [self._root]  # type: ignore[list-item]
        while stack:
            node = stack.pop()
            for side in ("left", "right"):
                child = getattr(node, side)
                if child is target:
                    setattr(node, side, replacement)
                    return
                if isinstance(child, _Split):
                    stack.append(child)

    # -- introspection ----------------------------------------------------

    @property
    def n_nodes(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if isinstance(node, _Split):
                stack.extend((node.left, node.right))
        return count

    @property
    def depth(self) -> int:
        def walk(node, d):
            if isinstance(node, _Leaf):
                return d
            return max(walk(node.left, d + 1), walk(node.right, d + 1))

        return walk(self._root, 0)

    def progressive_accuracy(self) -> float:
        """Score-then-learn accuracy over the stream so far."""
        return self.correct / self.count if self.count else 0.0

    def _merge_key(self) -> tuple:
        return (self.dims,)

    def _merge_into(self, other: "HoeffdingTree") -> None:
        raise NotImplementedError(
            "Hoeffding trees are not mergeable; train per partition and "
            "ensemble the predictions instead"
        )
