"""Online linear models: logistic regression and PA-style regression.

Section 2: "a field of incremental machine learning has emerged to cater
to Big Data streaming analytics" — and Section 3 closes with Twitter's
"online machine learning" Heron use case. These are the standard
production online learners: one example at a time, O(d) memory, adaptive
to drift via constant learning rates or passive-aggressive updates.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class OnlineLogisticRegression(SynopsisBase):
    """Binary logistic regression trained by SGD with L2 regularisation.

    ``update((x, y))`` takes a feature vector and a label in {0, 1};
    ``predict_proba(x)`` returns P(y=1|x). With ``adagrad=True`` the
    per-coordinate AdaGrad rule is used (the standard choice for sparse
    ad/CTR features).
    """

    def __init__(
        self,
        dims: int,
        learning_rate: float = 0.1,
        l2: float = 1e-6,
        adagrad: bool = True,
    ):
        if dims <= 0:
            raise ParameterError("dims must be positive")
        if learning_rate <= 0:
            raise ParameterError("learning_rate must be positive")
        if l2 < 0:
            raise ParameterError("l2 must be non-negative")
        self.dims = dims
        self.learning_rate = learning_rate
        self.l2 = l2
        self.adagrad = adagrad
        self.count = 0
        self._w = np.zeros(dims + 1)  # weights + bias (last slot)
        self._g2 = np.full(dims + 1, 1e-8)  # AdaGrad accumulators
        self.cumulative_log_loss = 0.0

    def _features(self, x: Sequence[float]) -> np.ndarray:
        vec = np.asarray(x, dtype=np.float64)
        if vec.shape != (self.dims,):
            raise ParameterError(f"expected a vector of dimension {self.dims}")
        return np.concatenate([vec, [1.0]])

    def predict_proba(self, x: Sequence[float]) -> float:
        """P(y = 1 | x)."""
        z = float(self._w @ self._features(x))
        z = max(-35.0, min(35.0, z))
        return 1.0 / (1.0 + math.exp(-z))

    def predict(self, x: Sequence[float]) -> int:
        """Hard 0/1 prediction."""
        return int(self.predict_proba(x) >= 0.5)

    def update(self, item: tuple[Sequence[float], int]) -> None:
        x, y = item
        if y not in (0, 1):
            raise ParameterError("label must be 0 or 1")
        self.count += 1
        phi = self._features(x)
        p = self.predict_proba(x)
        # Progressive validation loss: score-then-learn.
        eps = 1e-15
        self.cumulative_log_loss -= y * math.log(p + eps) + (1 - y) * math.log(1 - p + eps)
        grad = (p - y) * phi + self.l2 * self._w
        if self.adagrad:
            self._g2 += grad * grad
            self._w -= self.learning_rate * grad / np.sqrt(self._g2)
        else:
            self._w -= self.learning_rate * grad

    def progressive_log_loss(self) -> float:
        """Mean progressive-validation log loss (online generalisation)."""
        return self.cumulative_log_loss / self.count if self.count else 0.0

    @property
    def weights(self) -> np.ndarray:
        """Copy of the learned weights (bias last)."""
        return self._w.copy()

    def _merge_key(self) -> tuple:
        return (self.dims, self.learning_rate, self.l2, self.adagrad)

    def _merge_into(self, other: "OnlineLogisticRegression") -> None:
        """Parameter averaging weighted by example counts (the standard
        distributed-SGD combination)."""
        total = self.count + other.count
        if total:
            self._w = (self._w * self.count + other._w * other.count) / total
        self._g2 = self._g2 + other._g2
        self.cumulative_log_loss += other.cumulative_log_loss
        self.count = total


class PassiveAggressiveRegressor(SynopsisBase):
    """PA-II online regression [Crammer et al. 2006].

    Epsilon-insensitive: no update while |error| <= epsilon, otherwise the
    smallest weight change that fixes the example (tempered by C). Robust
    and step-size-free, a good default for streaming sensor regression.
    """

    def __init__(self, dims: int, epsilon: float = 0.1, C: float = 1.0):
        if dims <= 0:
            raise ParameterError("dims must be positive")
        if epsilon < 0:
            raise ParameterError("epsilon must be non-negative")
        if C <= 0:
            raise ParameterError("C must be positive")
        self.dims = dims
        self.epsilon = epsilon
        self.C = C
        self.count = 0
        self._w = np.zeros(dims + 1)
        self.cumulative_abs_error = 0.0

    def _features(self, x: Sequence[float]) -> np.ndarray:
        vec = np.asarray(x, dtype=np.float64)
        if vec.shape != (self.dims,):
            raise ParameterError(f"expected a vector of dimension {self.dims}")
        return np.concatenate([vec, [1.0]])

    def predict(self, x: Sequence[float]) -> float:
        """Point prediction for *x*."""
        return float(self._w @ self._features(x))

    def update(self, item: tuple[Sequence[float], float]) -> None:
        x, y = item
        self.count += 1
        phi = self._features(x)
        error = float(y) - float(self._w @ phi)
        self.cumulative_abs_error += abs(error)
        loss = max(0.0, abs(error) - self.epsilon)
        if loss > 0:
            tau = loss / (float(phi @ phi) + 1.0 / (2.0 * self.C))
            self._w += tau * math.copysign(1.0, error) * phi

    def progressive_mae(self) -> float:
        """Mean absolute progressive-validation error."""
        return self.cumulative_abs_error / self.count if self.count else 0.0

    @property
    def weights(self) -> np.ndarray:
        return self._w.copy()

    def _merge_key(self) -> tuple:
        return (self.dims, self.epsilon, self.C)

    def _merge_into(self, other: "PassiveAggressiveRegressor") -> None:
        total = self.count + other.count
        if total:
            self._w = (self._w * self.count + other._w * other.count) / total
        self.cumulative_abs_error += other.cumulative_abs_error
        self.count = total
