"""Streaming multinomial naive Bayes with optional decay.

Counting-based, so it is trivially incremental *and mergeable* (counts
add), and exponential decay of the counts adapts it to concept drift — the
"work with incomplete data / evolving models" theme of Section 2's
incremental-ML discussion. Features are bags of tokens (e.g. tweet terms).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Hashable, Iterable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class StreamingNaiveBayes(SynopsisBase):
    """Multinomial NB over token bags; ``update((tokens, label))``."""

    def __init__(self, smoothing: float = 1.0, decay: float = 1.0):
        if smoothing <= 0:
            raise ParameterError("smoothing must be positive")
        if not 0 < decay <= 1:
            raise ParameterError("decay must lie in (0, 1]")
        self.smoothing = smoothing
        self.decay = decay
        self.count = 0
        self._class_counts: dict[Hashable, float] = defaultdict(float)
        self._token_counts: dict[Hashable, dict[Hashable, float]] = {}
        self._class_token_totals: dict[Hashable, float] = defaultdict(float)
        self._vocabulary: set[Hashable] = set()

    def update(self, item: tuple[Iterable[Hashable], Hashable]) -> None:
        tokens, label = item
        self.count += 1
        if self.decay < 1.0:
            self._apply_decay()
        self._class_counts[label] += 1.0
        bucket = self._token_counts.setdefault(label, defaultdict(float))
        for token in tokens:
            bucket[token] += 1.0
            self._class_token_totals[label] += 1.0
            self._vocabulary.add(token)

    def _apply_decay(self) -> None:
        for label in self._class_counts:
            self._class_counts[label] *= self.decay
            self._class_token_totals[label] *= self.decay
        for bucket in self._token_counts.values():
            for token in bucket:
                bucket[token] *= self.decay

    def log_posteriors(self, tokens: Iterable[Hashable]) -> dict[Hashable, float]:
        """Unnormalised log P(label | tokens) for every known label."""
        if not self._class_counts:
            raise ParameterError("classifier has seen no examples")
        tokens = list(tokens)
        total = sum(self._class_counts.values())
        vocab = max(len(self._vocabulary), 1)
        out = {}
        for label, class_count in self._class_counts.items():
            score = math.log(class_count / total)
            bucket = self._token_counts.get(label, {})
            denom = self._class_token_totals[label] + self.smoothing * vocab
            for token in tokens:
                score += math.log((bucket.get(token, 0.0) + self.smoothing) / denom)
            out[label] = score
        return out

    def predict(self, tokens: Iterable[Hashable]) -> Hashable:
        """Most probable label for the token bag."""
        posteriors = self.log_posteriors(tokens)
        return max(posteriors, key=posteriors.get)

    def predict_proba(self, tokens: Iterable[Hashable]) -> dict[Hashable, float]:
        """Normalised posterior distribution over labels."""
        logs = self.log_posteriors(tokens)
        peak = max(logs.values())
        exp = {label: math.exp(v - peak) for label, v in logs.items()}
        total = sum(exp.values())
        return {label: v / total for label, v in exp.items()}

    @property
    def labels(self) -> set:
        return set(self._class_counts)

    def _merge_key(self) -> tuple:
        return (self.smoothing, self.decay)

    def _merge_into(self, other: "StreamingNaiveBayes") -> None:
        for label, cnt in other._class_counts.items():
            self._class_counts[label] += cnt
            self._class_token_totals[label] += other._class_token_totals[label]
            bucket = self._token_counts.setdefault(label, defaultdict(float))
            for token, tcnt in other._token_counts.get(label, {}).items():
                bucket[token] += tcnt
        self._vocabulary |= other._vocabulary
        self.count += other.count
