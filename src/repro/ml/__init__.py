"""Incremental machine learning over streams (Section 2's emerging field;
Section 3's "online machine learning" use case at Twitter)."""

from repro.ml.hoeffding import HoeffdingTree
from repro.ml.linear import OnlineLogisticRegression, PassiveAggressiveRegressor
from repro.ml.naive_bayes import StreamingNaiveBayes

__all__ = [
    "HoeffdingTree",
    "OnlineLogisticRegression",
    "PassiveAggressiveRegressor",
    "StreamingNaiveBayes",
]
