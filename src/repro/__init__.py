"""repro — real-time streaming analytics: algorithms and systems.

A full reproduction of the system surveyed in "Real Time Analytics:
Algorithms and Systems" (Kejariwal, Kulkarni & Ramasamy, VLDB 2015):

* every algorithm family of the paper's Table 1 (``repro.sampling``,
  ``repro.filtering``, ``repro.cardinality``, ``repro.quantiles``,
  ``repro.moments``, ``repro.frequency``, ``repro.windowing``,
  ``repro.inversions``, ``repro.subsequences``, ``repro.graphs``,
  ``repro.anomaly``, ``repro.temporal``, ``repro.prediction``,
  ``repro.clustering``, ``repro.correlation``, ``repro.histograms``);
* a runnable single-process streaming platform spanning Table 2's design
  space (``repro.platform``);
* the Lambda Architecture of Figure 1 (``repro.lambda_arch``);
* a unified facade (``repro.core``) and synthetic workload generators
  (``repro.workloads``).
"""

from repro.core import Pipeline, StreamSummary, available, create, register

__version__ = "1.0.0"

__all__ = ["Pipeline", "StreamSummary", "available", "create", "register", "__version__"]
