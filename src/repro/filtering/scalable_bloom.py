"""Scalable Bloom filter [Almeida, Baquero, Preguiça & Hutchison, 2007].

A Bloom filter must be sized for its final cardinality up front; a scalable
Bloom filter removes that requirement by chaining filters: when the current
slice fills up, a new slice is added with geometrically larger capacity and
geometrically tighter false-positive target, so the compound FP rate stays
below ``fp_rate / (1 - tightening)`` however large the stream grows.
"""

from __future__ import annotations

from typing import Any

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.filtering.bloom import BloomFilter


class ScalableBloomFilter(SynopsisBase):
    """Unbounded-capacity Bloom filter built from growing slices."""

    def __init__(
        self,
        initial_capacity: int = 1024,
        fp_rate: float = 0.01,
        growth: int = 2,
        tightening: float = 0.5,
        seed: int = 0,
    ):
        if initial_capacity <= 0:
            raise ParameterError("initial_capacity must be positive")
        if not 0 < fp_rate < 1:
            raise ParameterError("fp_rate must lie in (0, 1)")
        if growth < 2:
            raise ParameterError("growth must be >= 2")
        if not 0 < tightening < 1:
            raise ParameterError("tightening must lie in (0, 1)")
        self.initial_capacity = initial_capacity
        self.fp_rate = fp_rate
        self.growth = growth
        self.tightening = tightening
        self.seed = seed
        self.count = 0
        self._slices: list[BloomFilter] = []
        self._slice_capacity: list[int] = []
        self._add_slice()

    def _add_slice(self) -> None:
        index = len(self._slices)
        capacity = self.initial_capacity * self.growth**index
        rate = self.fp_rate * self.tightening**index
        self._slices.append(BloomFilter.for_capacity(capacity, rate, seed=self.seed + index))
        self._slice_capacity.append(capacity)

    def update(self, item: Any) -> None:
        """Insert *item*, growing a new slice when the current one is full."""
        self.count += 1
        current = self._slices[-1]
        if current.count >= self._slice_capacity[-1]:
            self._add_slice()
            current = self._slices[-1]
        current.update(item)

    add = update

    def contains(self, item: Any) -> bool:
        """True if *item* may have been inserted into any slice."""
        return any(item in s for s in self._slices)

    __contains__ = contains

    @property
    def n_slices(self) -> int:
        """Number of slices grown so far."""
        return len(self._slices)

    def expected_fp_bound(self) -> float:
        """Compound false-positive upper bound ``fp_rate / (1 - tightening)``."""
        return self.fp_rate / (1.0 - self.tightening)

    def _merge_key(self) -> tuple:
        return (self.initial_capacity, self.fp_rate, self.growth, self.tightening, self.seed)

    def _merge_into(self, other: "ScalableBloomFilter") -> None:
        """Slice-wise union; the longer chain's tail is adopted wholesale."""
        for i, their in enumerate(other._slices):
            if i < len(self._slices):
                self._slices[i].merge(their)
            else:
                import copy

                self._slices.append(copy.deepcopy(their))
                self._slice_capacity.append(other._slice_capacity[i])
        self.count += other.count

    def size_bytes(self) -> int:
        return sum(s.size_bytes() for s in self._slices)
