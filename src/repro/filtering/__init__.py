"""Approximate set membership: the Bloom-filter family and cuckoo filters.

Table 1 row "Filtering" — extract elements that meet a criterion
(application: set membership).
"""

from repro.filtering.bloom import BloomFilter
from repro.filtering.counting_bloom import CountingBloomFilter
from repro.filtering.cuckoo import CuckooFilter
from repro.filtering.partitioned import PartitionedBloomFilter
from repro.filtering.retouched import RetouchedBloomFilter
from repro.filtering.scalable_bloom import ScalableBloomFilter
from repro.filtering.stable_bloom import StableBloomFilter

__all__ = [
    "RetouchedBloomFilter",
    "PartitionedBloomFilter",
    "BloomFilter",
    "CountingBloomFilter",
    "CuckooFilter",
    "ScalableBloomFilter",
    "StableBloomFilter",
]
