"""Stable Bloom filter for duplicate detection on unbounded streams.

[Deng & Rafiei, SIGMOD 2006] — a plain Bloom filter over an unbounded
stream eventually saturates and answers "yes" to everything. The stable
Bloom filter decays: each insertion first decrements ``p`` randomly chosen
cells, then sets the item's ``k`` cells to ``max``. Cell occupancy converges
to a stationary distribution, so the false-positive rate stays bounded
forever while recent items remain detectable (time-decaying membership, as
used for click-stream duplicate suppression).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily
from repro.common.mergeable import SynopsisBase
from repro.common.rng import make_np_rng


class StableBloomFilter(SynopsisBase):
    """Decaying Bloom filter with *m* d-bit cells, *k* hashes, *p* decrements."""

    def __init__(
        self,
        m: int,
        k: int = 4,
        p: int = 10,
        max_value: int = 3,
        seed: int = 0,
    ):
        if m <= 0:
            raise ParameterError("cell count m must be positive")
        if k <= 0:
            raise ParameterError("hash count k must be positive")
        if p <= 0:
            raise ParameterError("decrement count p must be positive")
        if not 1 <= max_value <= 255:
            raise ParameterError("max_value must lie in [1, 255]")
        self.m = m
        self.k = k
        self.p = p
        self.max_value = max_value
        self.family = HashFamily(seed)
        self.count = 0
        self._rng = make_np_rng(seed)
        self._cells = np.zeros(m, dtype=np.uint8)

    def update(self, item: Any) -> None:
        """Record *item*: decay *p* random cells, then set the item's cells."""
        self.count += 1
        victims = self._rng.integers(0, self.m, size=self.p)
        live = self._cells[victims] > 0
        self._cells[victims[live]] -= 1
        for h in self.family.hashes(item, self.k):
            self._cells[h % self.m] = self.max_value

    add = update

    def contains(self, item: Any) -> bool:
        """True if *item* was probably seen recently."""
        return all(self._cells[h % self.m] > 0 for h in self.family.hashes(item, self.k))

    __contains__ = contains

    @property
    def fill_ratio(self) -> float:
        """Fraction of non-zero cells (converges to the stable point)."""
        return float((self._cells > 0).mean())

    def _merge_key(self) -> tuple:
        return (self.m, self.k, self.p, self.max_value, self.family.seed)

    def _merge_into(self, other: "StableBloomFilter") -> None:
        """Cell-wise max: an item recent in either partition stays detectable."""
        np.maximum(self._cells, other._cells, out=self._cells)
        self.count += other.count

    def size_bytes(self) -> int:
        return int(self._cells.nbytes)
