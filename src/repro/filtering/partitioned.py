"""Partitioned Bloom filter [cf. Hao, Kodialam & Lakshman, SIGMETRICS 2007].

Instead of k hash functions over one shared bit array, the array is split
into k disjoint slices with one hash each. Slices never collide with each
other, which simplifies analysis and hardware layouts and (per the cited
work) enables higher-accuracy constructions via partitioned hashing. The
false-positive rate matches the classic filter asymptotically
(``(1 - e^{-n/m'})^k`` per slice of size m' = m/k).
"""

from __future__ import annotations

import math
from typing import Any, Iterable

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily
from repro.common.mergeable import SynopsisBase


class PartitionedBloomFilter(SynopsisBase):
    """Bloom filter with *k* disjoint slices of *slice_bits* bits each."""

    def __init__(self, slice_bits: int, k: int, seed: int = 0):
        if slice_bits <= 0:
            raise ParameterError("slice_bits must be positive")
        if k <= 0:
            raise ParameterError("slice count k must be positive")
        self.slice_bits = slice_bits
        self.k = k
        self.family = HashFamily(seed)
        self.count = 0
        self._slices = np.zeros((k, slice_bits), dtype=bool)

    @classmethod
    def for_capacity(
        cls, capacity: int, fp_rate: float = 0.01, seed: int = 0
    ) -> "PartitionedBloomFilter":
        """Optimally sized partitioned filter for *capacity* at *fp_rate*."""
        if capacity <= 0:
            raise ParameterError("capacity must be positive")
        if not 0 < fp_rate < 1:
            raise ParameterError("fp_rate must lie in (0, 1)")
        m = math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))
        k = max(1, round(m / capacity * math.log(2)))
        return cls(slice_bits=math.ceil(m / k), k=k, seed=seed)

    def update(self, item: Any) -> None:
        """Insert *item*: one bit per slice."""
        self.count += 1
        for i, h in enumerate(self.family.independent_hashes(item, self.k)):
            self._slices[i, h % self.slice_bits] = True

    add = update

    def update_many(self, items: Iterable[Any]) -> None:
        """Batch insert: hash once per (item, slice), one bulk bit-set.

        Bit-identical to sequential inserts (idempotent, order-free). Each
        column of the ``(n, k)`` hash matrix indexes its own disjoint slice.
        """
        items = items if isinstance(items, (list, tuple)) else list(items)
        if not items:
            return
        hashes = self.family.hash_batch(items, self.k)  # (n, k) uint64
        cols = (hashes % np.uint64(self.slice_bits)).astype(np.intp)
        self._slices[np.arange(self.k)[None, :], cols] = True
        self.count += len(items)

    add_many = update_many

    def contains(self, item: Any) -> bool:
        """True if *item* may be in the set."""
        return all(
            self._slices[i, h % self.slice_bits]
            for i, h in enumerate(self.family.independent_hashes(item, self.k))
        )

    __contains__ = contains

    def false_positive_rate(self) -> float:
        """Product of per-slice fill ratios (slices are independent)."""
        fills = self._slices.mean(axis=1)
        return float(np.prod(fills))

    def _merge_key(self) -> tuple:
        return (self.slice_bits, self.k, self.family.seed)

    def _merge_into(self, other: "PartitionedBloomFilter") -> None:
        self._slices |= other._slices
        self.count += other.count

    def size_bytes(self) -> int:
        return int(self._slices.nbytes)
