"""The classic Bloom filter [Bloom, CACM 1970].

A Bloom filter answers approximate set membership with no false negatives
and a tunable false-positive rate. Hash positions come from a
:class:`~repro.common.hashing.HashFamily` using Kirsch–Mitzenmacher double
hashing, so ``k`` probes cost two real hash evaluations.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily
from repro.common.mergeable import SynopsisBase
from repro.common.serialization import dump_state, load_state

_TYPE_TAG = "bloom"


class BloomFilter(SynopsisBase):
    """Bit-array Bloom filter with *m* bits and *k* hash functions.

    Prefer the :meth:`for_capacity` constructor, which picks the optimal
    ``(m, k)`` for an expected number of insertions and target false-positive
    rate: ``m = -n ln p / (ln 2)^2`` and ``k = (m/n) ln 2``.
    """

    def __init__(self, m: int, k: int, seed: int = 0):
        if m <= 0:
            raise ParameterError("bit count m must be positive")
        if k <= 0:
            raise ParameterError("hash count k must be positive")
        self.m = m
        self.k = k
        self.family = HashFamily(seed)
        self.count = 0  # insertions performed (duplicates included)
        self._bits = np.zeros(m, dtype=bool)

    @classmethod
    def for_capacity(cls, capacity: int, fp_rate: float = 0.01, seed: int = 0) -> "BloomFilter":
        """A filter sized optimally for *capacity* insertions at *fp_rate*."""
        if capacity <= 0:
            raise ParameterError("capacity must be positive")
        if not 0 < fp_rate < 1:
            raise ParameterError("fp_rate must lie in (0, 1)")
        m = math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))
        k = max(1, round(m / capacity * math.log(2)))
        return cls(m=m, k=k, seed=seed)

    def update(self, item: Any) -> None:
        """Insert *item* into the filter."""
        self.count += 1
        for h in self.family.hashes(item, self.k):
            self._bits[h % self.m] = True

    add = update

    def update_many(self, items: Iterable[Any]) -> None:
        """Batch insert: two real hashes per item, one bulk bit-set.

        Bit-identical to sequential inserts — bit-sets are idempotent and
        order-free, so the whole ``(n, k)`` probe matrix is applied with a
        single fancy-indexed assignment.
        """
        items = items if isinstance(items, (list, tuple)) else list(items)
        if not items:
            return
        probes = self.family.hashes_batch(items, self.k)  # (n, k) uint64
        self._bits[(probes % np.uint64(self.m)).astype(np.intp).ravel()] = True
        self.count += len(items)

    add_many = update_many

    def contains(self, item: Any) -> bool:
        """True if *item* may be in the set (never false for inserted items)."""
        return all(self._bits[h % self.m] for h in self.family.hashes(item, self.k))

    __contains__ = contains

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set (drives the actual false-positive rate)."""
        return float(self._bits.mean())

    def false_positive_rate(self) -> float:
        """Estimated current false-positive probability: ``fill^k``."""
        return self.fill_ratio**self.k

    def estimated_cardinality(self) -> float:
        """Swamidass–Baldi estimate of distinct items: ``-(m/k) ln(1 - fill)``."""
        fill = self.fill_ratio
        if fill >= 1.0:
            return float("inf")
        return -self.m / self.k * math.log(1.0 - fill)

    def _merge_key(self) -> tuple:
        return (self.m, self.k, self.family.seed)

    def _merge_into(self, other: "BloomFilter") -> None:
        """Union: the merged filter contains every item either side saw."""
        self._bits |= other._bits
        self.count += other.count

    def _empty_clone(self) -> "BloomFilter":
        # type(self), not BloomFilter: subclasses with the same constructor
        # signature (RetouchedBloomFilter) inherit a valid split.
        return type(self)(self.m, self.k, seed=self.family.seed)

    def _split_into(self, n: int) -> list["BloomFilter"]:
        # The bit union is idempotent but ``count`` sums, so only shard 0
        # carries the set; empty siblings keep the re-merge exact.
        return self._split_seed_part(n)

    def intersect(self, other: "BloomFilter") -> "BloomFilter":
        """An upper-bound filter for the set intersection (may overcount)."""
        other = self._check_mergeable(other)
        out = BloomFilter(self.m, self.k, seed=self.family.seed)
        out._bits = self._bits & other._bits
        out.count = min(self.count, other.count)
        return out

    def size_bytes(self) -> int:
        return int(self._bits.nbytes)

    def to_bytes(self) -> bytes:
        """Serialize to a versioned byte payload."""
        return dump_state(
            _TYPE_TAG,
            {
                "m": self.m,
                "k": self.k,
                "seed": self.family.seed,
                "count": self.count,
                "bits": np.packbits(self._bits),
            },
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BloomFilter":
        """Reconstruct a filter from :meth:`to_bytes` output."""
        state = load_state(_TYPE_TAG, payload)
        obj = cls(state["m"], state["k"], seed=state["seed"])
        obj.count = state["count"]
        obj._bits = np.unpackbits(state["bits"])[: state["m"]].astype(bool)
        return obj
