"""Cuckoo filter [Fan, Andersen, Kaminsky & Mitzenmacher, CoNEXT 2014].

Stores short fingerprints in a two-choice hash table with bucket size 4.
Compared to Bloom filters it supports deletion natively, gives better space
at low false-positive rates, and has bounded lookup cost (two buckets).
Insertion may fail when the table is nearly full — that raises
:class:`~repro.common.exceptions.CapacityError`, mirroring the paper's
"practically better than Bloom" operating envelope (≤95% load).
"""

from __future__ import annotations

from typing import Any

from repro.common.exceptions import CapacityError, ParameterError
from repro.common.hashing import HashFamily
from repro.common.mergeable import SynopsisBase
from repro.common.rng import make_rng

_MAX_KICKS = 500


class CuckooFilter(SynopsisBase):
    """Cuckoo filter with ``buckets`` buckets of ``bucket_size`` fingerprints.

    ``fingerprint_bits`` controls the false-positive rate
    (``~ 2 * bucket_size / 2^fingerprint_bits``).
    """

    def __init__(
        self,
        buckets: int,
        bucket_size: int = 4,
        fingerprint_bits: int = 12,
        seed: int = 0,
    ):
        if buckets <= 0 or buckets & (buckets - 1):
            raise ParameterError("buckets must be a positive power of two")
        if bucket_size <= 0:
            raise ParameterError("bucket_size must be positive")
        if not 1 <= fingerprint_bits <= 32:
            raise ParameterError("fingerprint_bits must lie in [1, 32]")
        self.buckets = buckets
        self.bucket_size = bucket_size
        self.fingerprint_bits = fingerprint_bits
        self.family = HashFamily(seed)
        self.count = 0
        self._rng = make_rng(seed)
        self._table: list[list[int]] = [[] for __ in range(buckets)]

    @classmethod
    def for_capacity(cls, capacity: int, seed: int = 0, **kwargs) -> "CuckooFilter":
        """A filter able to hold *capacity* items at ≤95% load."""
        if capacity <= 0:
            raise ParameterError("capacity must be positive")
        bucket_size = kwargs.pop("bucket_size", 4)
        need = int(capacity / 0.95 / bucket_size) + 1
        buckets = 1
        while buckets < need:
            buckets *= 2
        return cls(buckets=buckets, bucket_size=bucket_size, seed=seed, **kwargs)

    def _fingerprint(self, item: Any) -> int:
        fp = self.family.hash(item, 0) & ((1 << self.fingerprint_bits) - 1)
        return fp or 1  # reserve 0 as "empty"

    def _index1(self, item: Any) -> int:
        return self.family.hash(item, 1) % self.buckets

    def _alt_index(self, index: int, fingerprint: int) -> int:
        # Partial-key cuckoo hashing: i2 = i1 xor hash(fp).
        return (index ^ self.family.hash(("fp", fingerprint), 2)) % self.buckets

    def update(self, item: Any) -> None:
        """Insert *item*; raises CapacityError if the table cannot take it."""
        fp = self._fingerprint(item)
        i1 = self._index1(item)
        i2 = self._alt_index(i1, fp)
        for index in (i1, i2):
            if len(self._table[index]) < self.bucket_size:
                self._table[index].append(fp)
                self.count += 1
                return
        # Both buckets full: relocate existing fingerprints.
        index = self._rng.choice((i1, i2))
        for __ in range(_MAX_KICKS):
            victim_slot = self._rng.randrange(len(self._table[index]))
            fp, self._table[index][victim_slot] = self._table[index][victim_slot], fp
            index = self._alt_index(index, fp)
            if len(self._table[index]) < self.bucket_size:
                self._table[index].append(fp)
                self.count += 1
                return
        raise CapacityError("cuckoo filter is full (insertion exceeded max kicks)")

    add = update

    def contains(self, item: Any) -> bool:
        """True if *item* may be in the set."""
        fp = self._fingerprint(item)
        i1 = self._index1(item)
        i2 = self._alt_index(i1, fp)
        return fp in self._table[i1] or fp in self._table[i2]

    __contains__ = contains

    def remove(self, item: Any) -> bool:
        """Delete one occurrence of *item*; returns False if absent."""
        fp = self._fingerprint(item)
        i1 = self._index1(item)
        i2 = self._alt_index(i1, fp)
        for index in (i1, i2):
            if fp in self._table[index]:
                self._table[index].remove(fp)
                self.count -= 1
                return True
        return False

    @property
    def load_factor(self) -> float:
        """Occupied fraction of the table."""
        return self.count / (self.buckets * self.bucket_size)

    def _merge_key(self) -> tuple:
        return (self.buckets, self.bucket_size, self.fingerprint_bits, self.family.seed)

    def _merge_into(self, other: "CuckooFilter") -> None:
        # Re-inserting fingerprints bucket-by-bucket: each fingerprint's two
        # legal buckets are recoverable from (index, fp), so merging is a
        # sequence of constrained inserts.
        for index, bucket in enumerate(other._table):
            for fp in bucket:
                self._insert_fingerprint(index, fp)

    def _insert_fingerprint(self, origin_index: int, fp: int) -> None:
        alt = self._alt_index(origin_index, fp)
        for index in (origin_index, alt):
            if len(self._table[index]) < self.bucket_size:
                self._table[index].append(fp)
                self.count += 1
                return
        index = self._rng.choice((origin_index, alt))
        for __ in range(_MAX_KICKS):
            victim_slot = self._rng.randrange(len(self._table[index]))
            fp, self._table[index][victim_slot] = self._table[index][victim_slot], fp
            index = self._alt_index(index, fp)
            if len(self._table[index]) < self.bucket_size:
                self._table[index].append(fp)
                self.count += 1
                return
        raise CapacityError("cuckoo filter merge overflow")

    def __len__(self) -> int:
        return self.count
