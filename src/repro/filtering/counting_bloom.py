"""Counting Bloom filter [Fan et al. 2000; improved Bonomi et al. 2006].

Replaces each bit with a small saturating counter so that items can be
*removed* — the property plain Bloom filters lack. Counters saturate at 255
(uint8) and, once saturated, are never decremented, which preserves the
no-false-negative guarantee at the cost of a stuck counter (vanishingly rare
at sensible loads: P[counter >= 16] is ~1e-15 per slot at optimal k).
"""

from __future__ import annotations

import math
from typing import Any, Iterable

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily
from repro.common.mergeable import SynopsisBase

_SATURATED = np.iinfo(np.uint8).max


class CountingBloomFilter(SynopsisBase):
    """Bloom filter over uint8 counters supporting ``remove``."""

    def __init__(self, m: int, k: int, seed: int = 0):
        if m <= 0:
            raise ParameterError("counter count m must be positive")
        if k <= 0:
            raise ParameterError("hash count k must be positive")
        self.m = m
        self.k = k
        self.family = HashFamily(seed)
        self.count = 0
        self._counters = np.zeros(m, dtype=np.uint8)

    @classmethod
    def for_capacity(
        cls, capacity: int, fp_rate: float = 0.01, seed: int = 0
    ) -> "CountingBloomFilter":
        """Optimally sized filter for *capacity* items at *fp_rate*."""
        if capacity <= 0:
            raise ParameterError("capacity must be positive")
        if not 0 < fp_rate < 1:
            raise ParameterError("fp_rate must lie in (0, 1)")
        m = math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))
        k = max(1, round(m / capacity * math.log(2)))
        return cls(m=m, k=k, seed=seed)

    def _slots(self, item: Any) -> list[int]:
        return [h % self.m for h in self.family.hashes(item, self.k)]

    def update(self, item: Any) -> None:
        """Insert *item* (counted; duplicate inserts must be matched by removes)."""
        self.count += 1
        for slot in self._slots(item):
            if self._counters[slot] < _SATURATED:
                self._counters[slot] += 1

    add = update

    def update_many(self, items: Iterable[Any]) -> None:
        """Batch insert: bincount the probe slots, one saturating bulk add.

        Bit-identical to sequential inserts: per-slot increments commute,
        and a counter that would pass 255 under repeated ``+1`` ends at
        exactly ``min(current + hits, 255)`` either way.
        """
        items = items if isinstance(items, (list, tuple)) else list(items)
        if not items:
            return
        probes = self.family.hashes_batch(items, self.k)  # (n, k) uint64
        slots = (probes % np.uint64(self.m)).astype(np.intp).ravel()
        hits = np.bincount(slots, minlength=self.m)
        summed = self._counters.astype(np.int64) + hits
        self._counters = np.minimum(summed, _SATURATED).astype(np.uint8)
        self.count += len(items)

    add_many = update_many

    def remove(self, item: Any) -> None:
        """Remove one previously inserted occurrence of *item*.

        Removing an item that was never inserted can introduce false
        negatives for other items; callers must pair removes with inserts.
        """
        slots = self._slots(item)
        if any(self._counters[s] == 0 for s in slots):
            raise ParameterError("cannot remove an item that is definitely absent")
        for slot in slots:
            if self._counters[slot] < _SATURATED:  # saturated counters stay put
                self._counters[slot] -= 1
        self.count -= 1

    def contains(self, item: Any) -> bool:
        """True if *item* may currently be in the set."""
        return all(self._counters[s] > 0 for s in self._slots(item))

    __contains__ = contains

    def _merge_key(self) -> tuple:
        return (self.m, self.k, self.family.seed)

    def _merge_into(self, other: "CountingBloomFilter") -> None:
        summed = self._counters.astype(np.uint16) + other._counters.astype(np.uint16)
        self._counters = np.minimum(summed, _SATURATED).astype(np.uint8)
        self.count += other.count

    def _empty_clone(self) -> "CountingBloomFilter":
        return CountingBloomFilter(self.m, self.k, seed=self.family.seed)

    def _split_into(self, n: int) -> list["CountingBloomFilter"]:
        # Saturating-add merge: adding zeroed counters is the identity, so
        # seed-part splitting is exact even at saturated cells.
        return self._split_seed_part(n)

    def size_bytes(self) -> int:
        return int(self._counters.nbytes)
