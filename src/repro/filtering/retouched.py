"""Retouched Bloom filter [Donnet, Baynat & Friedman, CoNEXT 2006].

Table 1's filtering row cites this variant: a Bloom filter whose operator
may *clear* bits to remove troublesome false positives, accepting some
false negatives in exchange — worthwhile when specific false positives
are expensive (e.g. blacklisting a popular benign URL) while occasional
false negatives are cheap. Tracks how many inserted keys each removal
may have damaged.
"""

from __future__ import annotations

from typing import Any

from repro.common.exceptions import ParameterError
from repro.filtering.bloom import BloomFilter


class RetouchedBloomFilter(BloomFilter):
    """Bloom filter with selective false-positive removal."""

    def __init__(self, m: int, k: int, seed: int = 0):
        super().__init__(m, k, seed=seed)
        self.bits_cleared = 0

    def remove_false_positive(self, item: Any) -> bool:
        """Clear one of *item*'s bits so it no longer tests positive.

        Returns False if *item* already tests negative. Clearing a bit may
        turn some genuinely inserted keys into false negatives — the
        documented retouching trade.
        """
        slots = [h % self.m for h in self.family.hashes(item, self.k)]
        if not all(self._bits[s] for s in slots):
            return False
        # Clear the slot heuristically least likely to be shared: any one
        # works for correctness; the first is deterministic.
        self._bits[slots[0]] = False
        self.bits_cleared += 1
        return True

    def remove_false_positives(self, items) -> int:
        """Retouch every item in *items*; returns how many were cleared."""
        return sum(1 for item in items if self.remove_false_positive(item))

    def false_negative_rate(self, inserted_sample) -> float:
        """Measured false-negative rate over a sample of inserted keys."""
        inserted_sample = list(inserted_sample)
        if not inserted_sample:
            raise ParameterError("need at least one inserted key to measure")
        misses = sum(1 for item in inserted_sample if item not in self)
        return misses / len(inserted_sample)
