"""Versioned byte serialization for synopses and shipped operator state.

Sketches travel between nodes in a scaled-out deployment (the speed layer of
the Lambda Architecture ships partial sketches to the serving layer for
merging; ``repro.cluster`` workers ship checkpoints and merge-on-query
partials to the coordinator), so every synopsis that supports it exposes
``to_bytes`` / ``from_bytes`` built on these helpers. Payloads are framed
with a magic prefix, a type tag and a format version so that decoding errors
surface as :class:`~repro.common.exceptions.SerializationError` instead of
garbage.

The payload body is a JSON document (numpy arrays are encoded as base64 of
their raw buffer plus dtype/shape), which keeps the format debuggable and
language-portable — the priority here is correctness and inspectability,
not the absolute minimum byte count.

Format version 2 extends version 1 (a strict superset — every v1 payload
decodes identically) with the encodings cross-process state shipping needs
to round-trip synopsis state **bit-identically**:

* tuples, sets, frozensets and deques keep their types (v1 collapsed
  tuples into lists);
* numpy scalars keep their dtype;
* ``random.Random`` / numpy ``Generator`` ship their full internal state,
  so restored synopses continue the *same* random stream;
* library objects (``repro.*`` classes) are encoded structurally — class
  path plus attribute state — honouring ``__getstate__``/``__setstate__``
  when defined; shared references and cycles are preserved via a
  two-pass memo, so aliased sub-objects stay aliased after decoding;
* classes with unserializable internals can register a *reducer*
  (:func:`register_reducer`) mapping them to a plain state dict and back;
* large lists of plain floats pack as base64 of little-endian IEEE-754
  doubles (``__floats__``) instead of element-wise JSON — bit-exact
  (a Python float *is* a C double) and ~100× faster to ship, which is
  what keeps checkpoint capture and elastic-rescale state migration off
  the critical path when a quantile buffer holds 10^5+ samples.

Callables are configuration, not stream state: object encoding skips
callable attributes, and restoring *into* a freshly constructed instance
(:mod:`repro.core.stateship`) re-supplies them from the factory side.
"""

from __future__ import annotations

import base64
import collections
import itertools
import json
import random
from typing import Any, Callable

import numpy as np

from repro.common.exceptions import SerializationError

_MAGIC = b"RPRO"
_VERSION = 2
_ACCEPTED_VERSIONS = (1, 2)

#: Only classes from these package roots may be encoded structurally.
_TRUSTED_PREFIXES = ("repro.",)

# -- reducer registry --------------------------------------------------------

#: class -> (reduce(obj) -> dict, restore(dict) -> obj)
_REDUCERS: dict[type, tuple[Callable[[Any], dict], Callable[[dict], Any]]] = {}
_REDUCER_NAMES: dict[str, type] = {}


def _class_path(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def register_reducer(
    cls: type,
    reduce: Callable[[Any], dict],
    restore: Callable[[dict], Any],
) -> None:
    """Register a custom (reduce, restore) pair for *cls*.

    Used by classes whose instances hold unserializable internals that can
    be rebuilt from parameters (e.g. pre-keyed hash states). ``reduce``
    must return a plain serializable dict; ``restore`` receives that dict
    and returns an equivalent instance.
    """
    if cls in _REDUCERS:
        raise SerializationError(f"reducer for {cls.__name__} already registered")
    _REDUCERS[cls] = (reduce, restore)
    _REDUCER_NAMES[_class_path(cls)] = cls


def register_unshippable(
    cls: type, refuse: Callable[[Any], Any] | None = None
) -> None:
    """Mark *cls* as excluded from shipped state: encoding an instance
    raises :class:`SerializationError` instead of serializing it.

    For process-local runtime plumbing (shared-memory rings, transport
    channels) that must never ride a checkpoint or a merge-on-query
    payload — a shipped handle would dangle in the receiving process.
    *refuse* customises the error; the default names the class.
    """

    def _default_refuse(value: Any) -> Any:
        raise SerializationError(
            f"{type(value).__name__} is process-local runtime state and is "
            "excluded from shipped state"
        )

    action = refuse or _default_refuse
    register_reducer(cls, action, action)


def _resolve_class(path: str) -> type:
    if not any(path.startswith(prefix) for prefix in _TRUSTED_PREFIXES):
        raise SerializationError(f"refusing to resolve untrusted class {path!r}")
    module_name, _, qualname = path.partition(":")
    import importlib

    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SerializationError(f"cannot import module for {path!r}: {exc}") from exc
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            raise SerializationError(f"class {path!r} not found")
    if not isinstance(obj, type):
        raise SerializationError(f"{path!r} does not name a class")
    return obj


def _is_trusted_instance(value: Any) -> bool:
    cls = type(value)
    return any(cls.__module__.startswith(p) for p in _TRUSTED_PREFIXES)


def _object_state(value: Any) -> dict[str, Any]:
    """The attribute state of *value*: ``__getstate__`` if defined, else
    ``__dict__`` + slots with callable values skipped (they are
    configuration re-supplied by the constructing side)."""
    getstate = getattr(value, "__getstate__", None)
    if getstate is not None and type(value).__dict__.get("__getstate__") is not None:
        state = getstate()
        if not isinstance(state, dict):
            raise SerializationError(
                f"{type(value).__name__}.__getstate__ must return a dict"
            )
        return state
    state: dict[str, Any] = {}
    if hasattr(value, "__dict__"):
        state.update(vars(value))
    for slot in _all_slots(type(value)):
        if hasattr(value, slot):
            state.setdefault(slot, getattr(value, slot))
    return {k: v for k, v in state.items() if not callable(v)}


def _all_slots(cls: type) -> list[str]:
    slots: list[str] = []
    for klass in cls.__mro__:
        declared = klass.__dict__.get("__slots__", ())
        if isinstance(declared, str):
            declared = (declared,)
        for slot in declared:
            if slot not in ("__dict__", "__weakref__"):
                slots.append(slot)
    return slots


# -- shared-reference analysis ----------------------------------------------

_COMPOUND_TYPES = (
    dict,
    list,
    set,
    frozenset,
    collections.deque,
    np.ndarray,
    # Stateful stream positions: aliasing matters (a draw through one
    # reference must advance every other), so they join the shared-ref
    # analysis even though they encode through dedicated branches.
    random.Random,
    np.random.Generator,
    itertools.count,
)


#: Below this length the generic element-wise list encoding wins (no
#: base64 framing overhead, and the type scan is the same single pass).
_FLOAT_PACK_MIN = 32


def _is_float_list(value: list) -> bool:
    """True for lists worth packing: long enough and *exactly* floats.

    The type check is deliberately exact (``type``, not ``isinstance``):
    bools and ints must take the generic path so they round-trip as their
    own types, and numpy scalars keep their dtype-preserving encoding.
    ``set(map(type, ...))`` runs the scan at C speed.
    """
    return len(value) >= _FLOAT_PACK_MIN and set(map(type, value)) == {float}


def _is_compound(value: Any) -> bool:
    return isinstance(value, _COMPOUND_TYPES) or (
        not isinstance(value, (str, bytes, int, float, bool, tuple, type(None)))
        and (_is_trusted_instance(value) or type(value) in _REDUCERS)
        and not callable(value)
    )


def _count_refs(value: Any, counts: dict[int, int], on_stack: set[int]) -> None:
    """First pass: count occurrences of every mutable compound value so the
    encoder knows which ones need a shared-reference id (count >= 2, which
    also covers cycles — a cycle revisits its entry while it is still on
    the traversal stack)."""
    if isinstance(value, tuple):
        for item in value:
            _count_refs(item, counts, on_stack)
        return
    if not _is_compound(value):
        return
    oid = id(value)
    if oid in counts:
        counts[oid] += 1
        return
    counts[oid] = 1
    if oid in on_stack:  # pragma: no cover - defensive (cycles hit counts)
        return
    on_stack.add(oid)
    if isinstance(value, dict):
        for k, v in value.items():
            _count_refs(k, counts, on_stack)
            _count_refs(v, counts, on_stack)
    elif isinstance(value, (list, set, frozenset, collections.deque)):
        if isinstance(value, list) and _is_float_list(value):
            pass  # floats are never shared-reference targets: skip the walk
        else:
            for item in value:
                _count_refs(item, counts, on_stack)
    elif isinstance(value, np.ndarray):
        pass
    elif isinstance(value, (random.Random, np.random.Generator)):
        pass
    else:
        for v in _object_state(value).values():
            _count_refs(v, counts, on_stack)
    on_stack.discard(oid)


class _Encoder:
    """Second pass: render the value graph into JSON-ready structures,
    emitting ``__shared__``/``__ref__`` markers for values the first pass
    saw more than once."""

    def __init__(self, shared_ids: set[int]):
        self.shared_ids = shared_ids
        self.memo: dict[int, int] = {}
        self.next_ref = 0

    def encode(self, value: Any) -> Any:
        oid = id(value)
        if oid in self.memo:
            return {"__ref__": self.memo[oid]}
        if oid in self.shared_ids and _is_compound(value):
            ref = self.next_ref
            self.next_ref += 1
            self.memo[oid] = ref
            return {"__shared__": ref, "value": self._encode_body(value)}
        return self._encode_body(value)

    def _encode_body(self, value: Any) -> Any:
        if isinstance(value, np.ndarray):
            return {
                "__ndarray__": base64.b64encode(
                    np.ascontiguousarray(value).tobytes()
                ).decode("ascii"),
                "dtype": str(value.dtype),
                "shape": list(value.shape),
            }
        if isinstance(value, np.generic):
            return {
                "__npscalar__": base64.b64encode(value.tobytes()).decode("ascii"),
                "dtype": str(value.dtype),
            }
        if isinstance(value, bytes):
            return {"__bytes__": base64.b64encode(value).decode("ascii")}
        if isinstance(value, bytearray):
            return {
                "__bytearray__": base64.b64encode(bytes(value)).decode("ascii")
            }
        if isinstance(value, collections.Counter):
            return {
                "__counter__": [
                    [self.encode(k), self.encode(v)] for k, v in value.items()
                ]
            }
        if isinstance(value, dict):
            return {
                "__dict__": [
                    [self.encode(k), self.encode(v)] for k, v in value.items()
                ]
            }
        if isinstance(value, tuple):
            return {"__tuple__": [self.encode(v) for v in value]}
        if isinstance(value, list):
            if _is_float_list(value):
                packed = np.asarray(value, dtype="<f8").tobytes()
                return {"__floats__": base64.b64encode(packed).decode("ascii")}
            return {"__list__": [self.encode(v) for v in value]}
        if isinstance(value, (set, frozenset)):
            tag = "__frozenset__" if isinstance(value, frozenset) else "__set__"
            # Sort by the canonical encoding for a deterministic payload.
            encoded = [self.encode(v) for v in value]
            encoded.sort(key=lambda e: json.dumps(e, sort_keys=True, default=str))
            return {tag: encoded}
        if isinstance(value, collections.deque):
            return {
                "__deque__": [self.encode(v) for v in value],
                "maxlen": value.maxlen,
            }
        if isinstance(value, itertools.count):
            # ``__reduce__`` exposes ``(count, (current[, step]))`` — enough
            # to resume the counter exactly where it stopped, so tie-break
            # orderings stay deterministic across a restore.
            args = value.__reduce__()[1]
            return {"__itercount__": [self.encode(a) for a in args]}
        if isinstance(value, random.Random):
            return {"__pyrandom__": self.encode(value.getstate())}
        if isinstance(value, np.random.Generator):
            state = value.bit_generator.state
            return {
                "__npgen__": type(value.bit_generator).__name__,
                "state": self.encode(state),
            }
        if isinstance(value, (np.integer,)):  # pragma: no cover - np.generic above
            return int(value)
        if isinstance(value, (np.floating,)):  # pragma: no cover
            return float(value)
        if value is None or isinstance(value, (int, float, str, bool)):
            return value
        reducer = _REDUCERS.get(type(value))
        if reducer is not None:
            reduce_fn, __ = reducer
            return {
                "__reduced__": _class_path(type(value)),
                "state": self.encode(reduce_fn(value)),
            }
        if _is_trusted_instance(value) and not callable(value):
            return {
                "__object__": _class_path(type(value)),
                "state": self.encode(_object_state(value)),
            }
        raise SerializationError(
            f"cannot serialize value of type {type(value).__name__}"
        )


def _encode_value(value: Any) -> Any:
    """Encode one value graph (two passes: ref-count, then render)."""
    counts: dict[int, int] = {}
    _count_refs(value, counts, set())
    shared = {oid for oid, n in counts.items() if n >= 2}
    return _Encoder(shared).encode(value)


# -- decoding ----------------------------------------------------------------


class _Decoder:
    def __init__(self) -> None:
        self.refs: dict[int, Any] = {}

    def decode(self, value: Any) -> Any:
        if not isinstance(value, dict):
            return value
        if "__ref__" in value:
            ref = value["__ref__"]
            if ref not in self.refs:
                raise SerializationError(
                    f"unresolvable shared reference {ref} (cycle through an "
                    "unorderable container?)"
                )
            return self.refs[ref]
        if "__shared__" in value:
            return self._decode_body(value["value"], share_as=value["__shared__"])
        return self._decode_body(value, share_as=None)

    def _decode_body(self, value: Any, share_as: int | None) -> Any:
        def register(obj: Any) -> Any:
            if share_as is not None:
                self.refs[share_as] = obj
            return obj

        if not isinstance(value, dict):
            return register(value)
        if "__ndarray__" in value:
            raw = base64.b64decode(value["__ndarray__"])
            arr = np.frombuffer(raw, dtype=np.dtype(value["dtype"])).copy()
            return register(arr.reshape(value["shape"]))
        if "__npscalar__" in value:
            raw = base64.b64decode(value["__npscalar__"])
            return register(np.frombuffer(raw, dtype=np.dtype(value["dtype"]))[0])
        if "__bytes__" in value:
            return register(base64.b64decode(value["__bytes__"]))
        if "__bytearray__" in value:
            return register(bytearray(base64.b64decode(value["__bytearray__"])))
        if "__counter__" in value:
            out: collections.Counter = collections.Counter()
            register(out)
            for k, v in value["__counter__"]:
                out[_freeze(self.decode(k))] = self.decode(v)
            return out
        if "__dict__" in value:
            out_dict: dict = {}
            register(out_dict)
            for k, v in value["__dict__"]:
                out_dict[_freeze(self.decode(k))] = self.decode(v)
            return out_dict
        if "__tuple__" in value:
            # Tuples are immutable: decode children first (a cycle cannot
            # pass through a tuple alone — it would need a mutable link).
            return register(tuple(self.decode(v) for v in value["__tuple__"]))
        if "__list__" in value:
            out_list: list = []
            register(out_list)
            out_list.extend(self.decode(v) for v in value["__list__"])
            return out_list
        if "__floats__" in value:
            raw = base64.b64decode(value["__floats__"])
            return register(np.frombuffer(raw, dtype="<f8").tolist())
        if "__set__" in value:
            return register({self.decode(v) for v in value["__set__"]})
        if "__frozenset__" in value:
            return register(frozenset(self.decode(v) for v in value["__frozenset__"]))
        if "__deque__" in value:
            items = [self.decode(v) for v in value["__deque__"]]
            return register(collections.deque(items, maxlen=value.get("maxlen")))
        if "__itercount__" in value:
            args = [self.decode(a) for a in value["__itercount__"]]
            return register(itertools.count(*args))
        if "__pyrandom__" in value:
            rng = random.Random(0)  # seed irrelevant: setstate overwrites it
            rng.setstate(_tuplify(self.decode(value["__pyrandom__"])))
            return register(rng)
        if "__npgen__" in value:
            bitgen_cls = getattr(np.random, value["__npgen__"], None)
            if bitgen_cls is None:
                raise SerializationError(
                    f"unknown numpy bit generator {value['__npgen__']!r}"
                )
            bitgen = bitgen_cls()
            bitgen.state = self.decode(value["state"])
            return register(np.random.Generator(bitgen))
        if "__reduced__" in value:
            path = value["__reduced__"]
            cls = _REDUCER_NAMES.get(path)
            if cls is None:
                cls = _resolve_class(path)
                if cls not in _REDUCERS:
                    raise SerializationError(f"no reducer registered for {path!r}")
            __, restore_fn = _REDUCERS[cls]
            return register(restore_fn(self.decode(value["state"])))
        if "__object__" in value:
            cls = _resolve_class(value["__object__"])
            obj = cls.__new__(cls)
            register(obj)
            state = self.decode(value["state"])
            _apply_object_state(obj, state)
            return obj
        raise SerializationError(f"unknown encoded mapping: {sorted(value)}")


def _apply_object_state(obj: Any, state: dict[str, Any]) -> None:
    setstate = type(obj).__dict__.get("__setstate__")
    if setstate is not None:
        setstate(obj, state)
        return
    for name, val in state.items():
        try:
            setattr(obj, name, val)
        except AttributeError:
            # Frozen dataclasses (and other classes with a raising
            # __setattr__): bypass it the same way their __init__ does.
            try:
                object.__setattr__(obj, name, val)
            except AttributeError as exc:
                raise SerializationError(
                    f"cannot restore attribute {name!r} on {type(obj).__name__}"
                ) from exc


def _decode_value(value: Any) -> Any:
    return _Decoder().decode(value)


def _freeze(key: Any) -> Any:
    return tuple(key) if isinstance(key, list) else key


def _tuplify(value: Any) -> Any:
    """Deep list->tuple conversion (``random.Random.setstate`` wants the
    exact tuple shape ``getstate`` produced; v1 payloads stored lists)."""
    if isinstance(value, (list, tuple)):
        return tuple(_tuplify(v) for v in value)
    return value


# -- framing -----------------------------------------------------------------


def dump_state(type_tag: str, state: dict[str, Any]) -> bytes:
    """Frame *state* as a versioned byte payload for synopsis *type_tag*."""
    # One shared-reference analysis + one encoder across the whole state
    # dict, so values aliased between top-level keys stay aliased.
    counts: dict[int, int] = {}
    stack: set[int] = set()
    for v in state.values():
        _count_refs(v, counts, stack)
    shared = {oid for oid, n in counts.items() if n >= 2}
    encoder = _Encoder(shared)
    body = json.dumps(
        {k: encoder.encode(v) for k, v in state.items()}, separators=(",", ":")
    )
    tag = type_tag.encode("ascii")
    return _MAGIC + bytes([_VERSION, len(tag)]) + tag + body.encode("utf-8")


def load_state(type_tag: str, payload: bytes) -> dict[str, Any]:
    """Decode a payload produced by :func:`dump_state` for *type_tag*."""
    if len(payload) < 6 or payload[:4] != _MAGIC:
        raise SerializationError("payload does not start with the repro magic prefix")
    version = payload[4]
    if version not in _ACCEPTED_VERSIONS:
        raise SerializationError(f"unsupported format version {version}")
    tag_len = payload[5]
    tag = payload[6 : 6 + tag_len].decode("ascii")
    if tag != type_tag:
        raise SerializationError(f"payload is a {tag!r} synopsis, expected {type_tag!r}")
    try:
        doc = json.loads(payload[6 + tag_len :].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt payload body: {exc}") from exc
    decoder = _Decoder()
    return {k: decoder.decode(v) for k, v in doc.items()}
