"""Versioned byte serialization for synopses.

Sketches travel between nodes in a scaled-out deployment (the speed layer of
the Lambda Architecture ships partial sketches to the serving layer for
merging), so every synopsis that supports it exposes ``to_bytes`` /
``from_bytes`` built on these helpers. Payloads are framed with a magic
prefix, a type tag and a format version so that decoding errors surface as
:class:`~repro.common.exceptions.SerializationError` instead of garbage.

The payload body is a JSON document (numpy arrays are encoded as base64 of
their raw buffer plus dtype/shape), which keeps the format debuggable and
language-portable — the priority here is correctness and inspectability,
not the absolute minimum byte count.
"""

from __future__ import annotations

import base64
import json
from typing import Any

import numpy as np

from repro.common.exceptions import SerializationError

_MAGIC = b"RPRO"
_VERSION = 1


def _encode_value(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": base64.b64encode(np.ascontiguousarray(value).tobytes()).decode("ascii"),
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, dict):
        return {"__dict__": [[_encode_value(k), _encode_value(v)] for k, v in value.items()]}
    if isinstance(value, (list, tuple)):
        return {"__list__": [_encode_value(v) for v in value]}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    raise SerializationError(f"cannot serialize value of type {type(value).__name__}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__ndarray__" in value:
            raw = base64.b64decode(value["__ndarray__"])
            arr = np.frombuffer(raw, dtype=np.dtype(value["dtype"])).copy()
            return arr.reshape(value["shape"])
        if "__bytes__" in value:
            return base64.b64decode(value["__bytes__"])
        if "__dict__" in value:
            return {_freeze(_decode_value(k)): _decode_value(v) for k, v in value["__dict__"]}
        if "__list__" in value:
            return [_decode_value(v) for v in value["__list__"]]
        raise SerializationError(f"unknown encoded mapping: {sorted(value)}")
    return value


def _freeze(key: Any) -> Any:
    return tuple(key) if isinstance(key, list) else key


def dump_state(type_tag: str, state: dict[str, Any]) -> bytes:
    """Frame *state* as a versioned byte payload for synopsis *type_tag*."""
    body = json.dumps({k: _encode_value(v) for k, v in state.items()}, separators=(",", ":"))
    tag = type_tag.encode("ascii")
    return _MAGIC + bytes([_VERSION, len(tag)]) + tag + body.encode("utf-8")


def load_state(type_tag: str, payload: bytes) -> dict[str, Any]:
    """Decode a payload produced by :func:`dump_state` for *type_tag*."""
    if len(payload) < 6 or payload[:4] != _MAGIC:
        raise SerializationError("payload does not start with the repro magic prefix")
    version = payload[4]
    if version != _VERSION:
        raise SerializationError(f"unsupported format version {version}")
    tag_len = payload[5]
    tag = payload[6 : 6 + tag_len].decode("ascii")
    if tag != type_tag:
        raise SerializationError(f"payload is a {tag!r} synopsis, expected {type_tag!r}")
    try:
        doc = json.loads(payload[6 + tag_len :].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt payload body: {exc}") from exc
    return {k: _decode_value(v) for k, v in doc.items()}
