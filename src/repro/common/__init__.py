"""Shared substrate: hashing, synopsis protocol, RNG and serialization."""

from repro.common.exceptions import (
    CapacityError,
    ExecutionError,
    MergeError,
    ParameterError,
    ReproError,
    SerializationError,
    TopologyError,
)
from repro.common.hashing import HashFamily, hash64, hash_bytes, murmur3_32, to_bytes
from repro.common.mergeable import Synopsis, SynopsisBase
from repro.common.rng import derive_seed, make_np_rng, make_rng
from repro.common.serialization import dump_state, load_state

__all__ = [
    "CapacityError",
    "ExecutionError",
    "HashFamily",
    "MergeError",
    "ParameterError",
    "ReproError",
    "SerializationError",
    "Synopsis",
    "SynopsisBase",
    "TopologyError",
    "derive_seed",
    "dump_state",
    "hash64",
    "hash_bytes",
    "load_state",
    "make_np_rng",
    "make_rng",
    "murmur3_32",
    "to_bytes",
]
