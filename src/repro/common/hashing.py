"""Hash functions and hash families used by the probabilistic structures.

Two kinds of hashing live here:

* :func:`murmur3_32` — a faithful pure-Python port of MurmurHash3 (x86,
  32-bit). It is the classic sketching hash and is tested against the
  published test vectors; use it when you need bit-compatibility with other
  MurmurHash3 implementations.
* :func:`hash64` / :class:`HashFamily` — the library's workhorse. It keys
  ``blake2b`` (a fast, keyed, cryptographic-quality hash from the standard
  library) with the family seed, which gives effectively independent 64-bit
  hash functions without hand-rolling avalanche mixers. Every sketch in the
  library draws its hash functions from a :class:`HashFamily` so that two
  sketches built with the same seed are mergeable.

All functions accept arbitrary Python objects; non-bytes inputs are
canonicalised by :func:`to_bytes` (UTF-8 for strings, two's-complement
little-endian for ints, IEEE-754 for floats, ``repr`` for everything else).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable

from repro.common.exceptions import ParameterError

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def to_bytes(item: object) -> bytes:
    """Canonicalise *item* to bytes for hashing.

    The encoding is type-tagged so that, e.g., the int ``1`` and the string
    ``"1"`` hash differently, and stable across processes (unlike built-in
    ``hash``, which is salted per-process for str/bytes).
    """
    if isinstance(item, bytes):
        return b"b" + item
    if isinstance(item, str):
        return b"s" + item.encode("utf-8")
    if isinstance(item, bool):
        return b"o" + (b"\x01" if item else b"\x00")
    if isinstance(item, int):
        length = (item.bit_length() + 8) // 8 or 1
        return b"i" + item.to_bytes(length, "little", signed=True)
    if isinstance(item, float):
        return b"f" + struct.pack("<d", item)
    if isinstance(item, tuple):
        parts = [to_bytes(part) for part in item]
        body = b"".join(struct.pack("<I", len(p)) + p for p in parts)
        return b"t" + body
    return b"r" + repr(item).encode("utf-8")


def murmur3_32(data: bytes | str, seed: int = 0) -> int:
    """MurmurHash3 x86 32-bit of *data* with the given *seed*.

    Pure-Python port of Austin Appleby's reference implementation; matches
    the published test vectors (see ``tests/common/test_hashing.py``).
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    c1 = 0xCC9E2D51
    c2 = 0x1B873593
    h = seed & _MASK32
    length = len(data)
    rounded_end = length & ~0x3

    for i in range(0, rounded_end, 4):
        k = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16) | (data[i + 3] << 24)
        k = (k * c1) & _MASK32
        k = ((k << 15) | (k >> 17)) & _MASK32
        k = (k * c2) & _MASK32
        h ^= k
        h = ((h << 13) | (h >> 19)) & _MASK32
        h = (h * 5 + 0xE6546B64) & _MASK32

    k = 0
    tail = length & 0x3
    if tail >= 3:
        k ^= data[rounded_end + 2] << 16
    if tail >= 2:
        k ^= data[rounded_end + 1] << 8
    if tail >= 1:
        k ^= data[rounded_end]
        k = (k * c1) & _MASK32
        k = ((k << 15) | (k >> 17)) & _MASK32
        k = (k * c2) & _MASK32
        h ^= k

    h ^= length
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def hash64(item: object, seed: int = 0) -> int:
    """A stable 64-bit hash of *item* under hash function number *seed*."""
    key = (seed & _MASK64).to_bytes(8, "little")
    digest = hashlib.blake2b(to_bytes(item), digest_size=8, key=key).digest()
    return int.from_bytes(digest, "little")


def hash_bytes(item: object, n_bytes: int, seed: int = 0) -> bytes:
    """A stable *n_bytes*-byte digest of *item* (for wide hashes, n<=64)."""
    key = (seed & _MASK64).to_bytes(8, "little")
    return hashlib.blake2b(to_bytes(item), digest_size=n_bytes, key=key).digest()


class HashFamily:
    """A family of independent 64-bit hash functions sharing one base seed.

    ``HashFamily(seed).hashes(item, k)`` yields ``k`` independent hashes.
    Two families with equal ``(seed, count)`` produce identical hashes, which
    is the compatibility contract sketches check before merging.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise ParameterError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed & _MASK64

    def hash(self, item: object, index: int = 0) -> int:
        """The *index*-th hash function of the family applied to *item*."""
        return hash64(item, seed=self.seed * 0x9E3779B97F4A7C15 + index + 1)

    def hashes(self, item: object, count: int) -> Iterable[int]:
        """Yield the first *count* hash values of *item*.

        Uses Kirsch–Mitzenmacher double hashing: ``h_i = h1 + i*h2``. This
        costs two real hash evaluations regardless of *count* and is proven
        to preserve Bloom-filter asymptotics.
        """
        h1 = self.hash(item, 0)
        h2 = self.hash(item, 1) | 1  # force odd so all slots are reachable
        for i in range(count):
            yield (h1 + i * h2) & _MASK64

    def independent_hashes(self, item: object, count: int) -> Iterable[int]:
        """Yield *count* fully independent hash values (slower than double
        hashing; used where pairwise tricks would correlate estimators)."""
        for i in range(count):
            yield self.hash(item, i)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashFamily) and other.seed == self.seed

    def __hash__(self) -> int:
        return hash(("HashFamily", self.seed))

    def __repr__(self) -> str:
        return f"HashFamily(seed={self.seed})"
