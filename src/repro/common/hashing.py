"""Hash functions and hash families used by the probabilistic structures.

Two kinds of hashing live here:

* :func:`murmur3_32` — a faithful pure-Python port of MurmurHash3 (x86,
  32-bit). It is the classic sketching hash and is tested against the
  published test vectors; use it when you need bit-compatibility with other
  MurmurHash3 implementations.
* :func:`hash64` / :class:`HashFamily` — the library's workhorse. It keys
  ``blake2b`` (a fast, keyed, cryptographic-quality hash from the standard
  library) with the family seed, which gives effectively independent 64-bit
  hash functions without hand-rolling avalanche mixers. Every sketch in the
  library draws its hash functions from a :class:`HashFamily` so that two
  sketches built with the same seed are mergeable.

All functions accept arbitrary Python objects; non-bytes inputs are
canonicalised by :func:`to_bytes` (UTF-8 for strings, two's-complement
little-endian for ints, IEEE-754 for floats, ``repr`` for everything else).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, Sequence

import numpy as np

from repro.common.exceptions import ParameterError

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def bit_length64(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for a uint64 array.

    Uses a binary-reduction shift cascade so it is exact for the full
    64-bit range (``log2``-based tricks lose precision past 2**53 and
    misreport values that round up to a power of two).
    """
    arr = np.ascontiguousarray(values, dtype=np.uint64)
    out = np.zeros(arr.shape, dtype=np.int64)
    work = arr.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        big = work >= np.uint64(1) << np.uint64(shift)
        out[big] += shift
        work = np.where(big, work >> np.uint64(shift), work)
    out += work > 0  # the residual bit (work is now 0 or 1)
    return out


def to_bytes(item: object) -> bytes:
    """Canonicalise *item* to bytes for hashing.

    The encoding is type-tagged so that, e.g., the int ``1`` and the string
    ``"1"`` hash differently, and stable across processes (unlike built-in
    ``hash``, which is salted per-process for str/bytes).
    """
    if isinstance(item, bytes):
        return b"b" + item
    if isinstance(item, str):
        return b"s" + item.encode("utf-8")
    if isinstance(item, bool):
        return b"o" + (b"\x01" if item else b"\x00")
    if isinstance(item, int):
        length = (item.bit_length() + 8) // 8 or 1
        return b"i" + item.to_bytes(length, "little", signed=True)
    if isinstance(item, float):
        return b"f" + struct.pack("<d", item)
    if isinstance(item, tuple):
        parts = [to_bytes(part) for part in item]
        body = b"".join(struct.pack("<I", len(p)) + p for p in parts)
        return b"t" + body
    return b"r" + repr(item).encode("utf-8")


def murmur3_32(data: bytes | str, seed: int = 0) -> int:
    """MurmurHash3 x86 32-bit of *data* with the given *seed*.

    Pure-Python port of Austin Appleby's reference implementation; matches
    the published test vectors (see ``tests/common/test_hashing.py``).
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    c1 = 0xCC9E2D51
    c2 = 0x1B873593
    h = seed & _MASK32
    length = len(data)
    rounded_end = length & ~0x3

    for i in range(0, rounded_end, 4):
        k = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16) | (data[i + 3] << 24)
        k = (k * c1) & _MASK32
        k = ((k << 15) | (k >> 17)) & _MASK32
        k = (k * c2) & _MASK32
        h ^= k
        h = ((h << 13) | (h >> 19)) & _MASK32
        h = (h * 5 + 0xE6546B64) & _MASK32

    k = 0
    tail = length & 0x3
    if tail >= 3:
        k ^= data[rounded_end + 2] << 16
    if tail >= 2:
        k ^= data[rounded_end + 1] << 8
    if tail >= 1:
        k ^= data[rounded_end]
        k = (k * c1) & _MASK32
        k = ((k << 15) | (k >> 17)) & _MASK32
        k = (k * c2) & _MASK32
        h ^= k

    h ^= length
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def hash64(item: object, seed: int = 0) -> int:
    """A stable 64-bit hash of *item* under hash function number *seed*."""
    key = (seed & _MASK64).to_bytes(8, "little")
    digest = hashlib.blake2b(to_bytes(item), digest_size=8, key=key).digest()
    return int.from_bytes(digest, "little")


def hash_bytes(item: object, n_bytes: int, seed: int = 0) -> bytes:
    """A stable *n_bytes*-byte digest of *item* (for wide hashes, n<=64)."""
    key = (seed & _MASK64).to_bytes(8, "little")
    return hashlib.blake2b(to_bytes(item), digest_size=n_bytes, key=key).digest()


# Pre-keyed blake2b states for (family seed, function count), shared by
# every batch-hash call. Keying blake2b costs one extra compression per
# call; a pre-keyed state is absorbed once and then ``.copy()``-ed per
# item, which yields byte-identical digests (verified in the hashing
# tests) at a fraction of the cost. Bounded so pathological seed churn
# cannot grow it without limit.
_KEYED_STATE_CACHE: dict[tuple[int, int], list] = {}
_KEYED_STATE_CACHE_MAX = 64


def _keyed_states(seed: int, count: int) -> list:
    states = _KEYED_STATE_CACHE.get((seed, count))
    if states is None:
        base = seed * 0x9E3779B97F4A7C15
        states = [
            hashlib.blake2b(
                digest_size=8, key=((base + j + 1) & _MASK64).to_bytes(8, "little")
            )
            for j in range(count)
        ]
        if len(_KEYED_STATE_CACHE) >= _KEYED_STATE_CACHE_MAX:
            _KEYED_STATE_CACHE.clear()
        _KEYED_STATE_CACHE[(seed, count)] = states
    return states


class HashFamily:
    """A family of independent 64-bit hash functions sharing one base seed.

    ``HashFamily(seed).hashes(item, k)`` yields ``k`` independent hashes.
    Two families with equal ``(seed, count)`` produce identical hashes, which
    is the compatibility contract sketches check before merging.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise ParameterError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed & _MASK64

    def hash(self, item: object, index: int = 0) -> int:
        """The *index*-th hash function of the family applied to *item*."""
        return hash64(item, seed=self.seed * 0x9E3779B97F4A7C15 + index + 1)

    def hashes(self, item: object, count: int) -> Iterable[int]:
        """Yield the first *count* hash values of *item*.

        Uses Kirsch–Mitzenmacher double hashing: ``h_i = h1 + i*h2``. This
        costs two real hash evaluations regardless of *count* and is proven
        to preserve Bloom-filter asymptotics.
        """
        h1 = self.hash(item, 0)
        h2 = self.hash(item, 1) | 1  # force odd so all slots are reachable
        for i in range(count):
            yield (h1 + i * h2) & _MASK64

    def independent_hashes(self, item: object, count: int) -> Iterable[int]:
        """Yield *count* fully independent hash values (slower than double
        hashing; used where pairwise tricks would correlate estimators)."""
        for i in range(count):
            yield self.hash(item, i)

    def hash_batch(self, items: Sequence[object], count: int) -> np.ndarray:
        """Hash every item under the first *count* independent functions.

        Returns an ``(n, count)`` uint64 ndarray where ``out[i, j] ==
        self.hash(items[i], j)`` **exactly** — the batch kernel changes how
        the values are computed (each item is canonicalised with
        :func:`to_bytes` once and all per-index digests are derived from
        that buffer), never what they are, so sketches filled through the
        batch path stay bit-compatible (and mergeable / serializable) with
        sketches filled one item at a time.

        The dtype is unsigned so callers can reduce modulo a table width
        with plain ``%`` and get the same residues as Python's unbounded
        ints; reinterpret with ``.view(np.int64)`` if two's-complement
        values are needed.

        Two batch-only optimisations keep the kernel fast without touching
        the values: pre-keyed blake2b states are ``.copy()``-ed per item
        (skipping the key-absorption compression each call), and duplicate
        items are hashed once — the batch sees the whole workload, so on
        skewed streams it digests only the distinct values and gathers the
        rest with a vectorized index.
        """
        if count <= 0:
            raise ParameterError("count must be positive")
        datas = [to_bytes(item) for item in items]
        n = len(datas)
        if n == 0:
            return np.empty((0, count), dtype=np.uint64)
        # Dedup pass: inverse[i] = row of datas[i] among the distinct values.
        index: dict[bytes, int] = {}
        order: list[bytes] = []
        inverse = np.empty(n, dtype=np.intp)
        get = index.get
        for i, data in enumerate(datas):
            slot = get(data)
            if slot is None:
                slot = len(order)
                index[data] = slot
                order.append(data)
            inverse[i] = slot
        states = _keyed_states(self.seed, count)
        chunks = bytearray()
        extend = chunks.extend
        for data in order:
            for state in states:
                h = state.copy()
                h.update(data)
                extend(h.digest())
        distinct = np.frombuffer(bytes(chunks), dtype="<u8").reshape(len(order), count)
        if len(order) == n:
            return distinct
        return distinct[inverse]

    def hashes_batch(self, items: Sequence[object], count: int) -> np.ndarray:
        """Batch form of :meth:`hashes` (Kirsch–Mitzenmacher double hashing).

        Returns an ``(n, count)`` uint64 ndarray whose row *i* equals
        ``list(self.hashes(items[i], count))`` exactly: two real hash
        evaluations per item, then ``h1 + j*h2`` (with ``h2`` forced odd)
        computed vectorized — uint64 arithmetic wraps modulo 2**64 just
        like the masked Python-int path.
        """
        pair = self.hash_batch(items, 2)
        h1 = pair[:, :1]
        h2 = pair[:, 1:] | np.uint64(1)  # force odd so all slots are reachable
        steps = np.arange(count, dtype=np.uint64)[None, :]
        with np.errstate(over="ignore"):
            return h1 + steps * h2

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashFamily) and other.seed == self.seed

    def __hash__(self) -> int:
        return hash(("HashFamily", self.seed))

    def __repr__(self) -> str:
        return f"HashFamily(seed={self.seed})"
