"""The synopsis protocol every sketch in the library implements.

A *synopsis* is a small summary of a data stream supporting three verbs:

* ``update(item)`` — absorb one stream element;
* ``query(...)``  — answer the synopsis' question (each concrete class names
  its query methods after the question: ``estimate()``, ``quantile(q)``,
  ``contains(x)``, ...);
* ``merge(other)`` — combine with a synopsis built over a *different*
  sub-stream, yielding a synopsis of the union. Mergeability is what lets
  the algorithms scale out across partitions, as Section 2 of the paper
  requires ("the algorithms should be able to scale out").

Elastic rescaling adds the inverse verb: ``split(n)`` partitions a
synopsis into *n* shards whose merge reproduces the original exactly
(``merge(split(s, n)...) ≡ s`` by state fingerprint). Splitting is what
lets a live cluster *increase* parallelism without replaying the stream:
the migration planner captures a bolt's shards, folds them, splits the
fold across the new task set, and resumes. Synopses whose state is
order-dependent or windowed cannot be split; they raise the typed
:class:`~repro.common.exceptions.SplitUnsupported` so the planner can
fall back to drain-and-restart instead of shipping wrong shards.

:class:`SynopsisBase` provides merge-compatibility checking, bulk update,
and the ``+`` operator; concrete sketches subclass it.
"""

from __future__ import annotations

import copy
import sys
from abc import ABC, abstractmethod
from typing import Any, Iterable, Protocol, TypeVar, runtime_checkable

from repro.common.exceptions import MergeError, ParameterError, SplitUnsupported
from repro.common.hashing import hash64

T = TypeVar("T", bound="SynopsisBase")

# Fixed seed for key->shard assignment. Splitting must be deterministic
# across processes and runs (the migration protocol splits on the
# coordinator and restores on freshly forked workers), so the shard hash
# is pinned rather than derived from any per-instance seed.
_SPLIT_HASH_SEED = 0x5EED_517E


def shard_of(key: Any, n: int) -> int:
    """The stable shard index of *key* among *n* shards.

    Used by every key-partitioned ``split`` implementation so that the
    same key always lands in the same shard regardless of which synopsis
    (or which process) performs the split.
    """
    return hash64(key, seed=_SPLIT_HASH_SEED) % n


@runtime_checkable
class Synopsis(Protocol):
    """Structural type for stream synopses (see module docstring)."""

    def update(self, item: Any) -> None:
        """Absorb one stream element."""
        ...

    def merge(self, other: "Synopsis") -> None:
        """Merge a synopsis built over a different sub-stream into this one."""
        ...


class SynopsisBase(ABC):
    """Shared machinery for concrete synopses.

    Subclasses implement :meth:`update` and :meth:`_merge_into`, and may
    override :meth:`_merge_key` to declare which parameters must match for a
    merge to be legal (hash seeds, widths, epsilons, ...).
    """

    @abstractmethod
    def update(self, item: Any) -> None:
        """Absorb one stream element."""

    def update_many(self, items: Iterable[Any]) -> None:
        """Absorb every element of *items* in order."""
        for item in items:
            self.update(item)

    def _merge_key(self) -> tuple:
        """Parameters that must be equal on both sides of a merge."""
        return ()

    def _check_mergeable(self: T, other: object) -> T:
        if type(other) is not type(self):
            raise MergeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if other._merge_key() != self._merge_key():
            raise MergeError(
                f"incompatible {type(self).__name__} parameters: "
                f"{self._merge_key()} != {other._merge_key()}"
            )
        return other  # type: ignore[return-value]

    @abstractmethod
    def _merge_into(self: T, other: T) -> None:
        """Merge *other* (already verified compatible) into ``self``."""

    def merge(self: T, other: T) -> None:
        """Merge *other* into ``self`` in place.

        Raises :class:`~repro.common.exceptions.MergeError` when the two
        synopses were built with incompatible parameters.
        """
        self._merge_into(self._check_mergeable(other))

    def __add__(self: T, other: T) -> T:
        """Return a merged copy, leaving both operands untouched."""
        merged = copy.deepcopy(self)
        merged.merge(other)
        return merged

    # -- splitting (the elastic-rescale half of mergeability) -------------

    def _split_into(self: T, n: int) -> list[T]:
        """Partition ``self`` into *n* shards; override where valid.

        Implementations must not mutate ``self`` and must satisfy
        ``merge(shards...) ≡ self`` by state fingerprint. The base class
        declares the synopsis unsplittable.
        """
        raise SplitUnsupported(
            f"{type(self).__name__} state cannot be partitioned; "
            "the elastic planner must drain-and-restart this operator"
        )

    @classmethod
    def supports_split(cls) -> bool:
        """Whether this synopsis class implements a valid ``split``."""
        return cls._split_into is not SynopsisBase._split_into

    def split(self: T, n: int) -> list[T]:
        """Partition into *n* shards whose merge reproduces ``self``.

        The contract the elastic runtime depends on:

        * ``len(split(s, n)) == n``;
        * folding the shards with :meth:`merge` (in any order) yields a
          synopsis fingerprint-identical to ``s``;
        * ``s`` itself is left untouched (shards share no mutable state
          with it).

        Raises :class:`~repro.common.exceptions.SplitUnsupported` when the
        synopsis has no mathematically valid partition, and
        :class:`~repro.common.exceptions.ParameterError` for ``n < 1``.
        """
        if n < 1:
            raise ParameterError("shard count n must be at least 1")
        shards = self._split_into(n)
        if len(shards) != n:  # pragma: no cover - implementation bug guard
            raise SplitUnsupported(
                f"{type(self).__name__}._split_into returned {len(shards)} "
                f"shards for n={n}"
            )
        return shards

    def _split_seed_part(self: T, n: int) -> list[T]:
        """Shard 0 inherits the full state; shards 1..n-1 start empty.

        The workhorse strategy for sketches whose merge is a pure fold of
        an empty-identity operation (bitwise OR, register max, table add):
        merging a full copy with n-1 empty clones reproduces the original
        *including* additive bookkeeping like ``count``, which a naive
        copy-to-every-shard split would multiply by n.

        Subclasses using this helper implement :meth:`_empty_clone`.
        """
        return [copy.deepcopy(self)] + [self._empty_clone() for __ in range(n - 1)]

    def _empty_clone(self: T) -> T:
        """A same-parameter synopsis with no absorbed stream (for
        :meth:`_split_seed_part`); override alongside it."""
        raise NotImplementedError

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the synopsis in bytes.

        The default walks the object graph with ``sys.getsizeof``; sketches
        backed by numpy arrays override this with ``arr.nbytes`` based
        accounting for a tighter answer.
        """
        seen: set[int] = set()
        return _deep_sizeof(self, seen)

    # -- observability hooks (repro.obs) ---------------------------------

    def memory_footprint(self) -> int:
        """The observability plane's canonical footprint gauge.

        Always a plain positive ``int`` (numpy scalars from ``nbytes``
        accounting are coerced), so exporters can publish it directly.
        """
        return int(self.size_bytes())

    def instrumented(
        self, registry: Any = None, name: str | None = None
    ) -> "Any":
        """Wrap this synopsis in a counting/memory-gauging wrapper.

        Returns an :class:`~repro.obs.instrument.InstrumentedSynopsis`
        publishing update/merge/query call counts, batch sizes and a live
        ``memory_footprint`` gauge into *registry* (default: the
        process-wide registry). Opt-in: the unwrapped synopsis stays
        untouched and reachable via ``.synopsis``.
        """
        from repro.obs.instrument import InstrumentedSynopsis

        return InstrumentedSynopsis(self, registry=registry, name=name)


def _deep_sizeof(obj: Any, seen: set[int]) -> int:
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)
    size = sys.getsizeof(obj, 0)
    if hasattr(obj, "nbytes") and isinstance(getattr(obj, "nbytes"), int):
        return size + obj.nbytes
    if isinstance(obj, dict):
        size += sum(
            _deep_sizeof(k, seen) + _deep_sizeof(v, seen) for k, v in obj.items()
        )
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(_deep_sizeof(it, seen) for it in obj)
    elif hasattr(obj, "__dict__"):
        size += _deep_sizeof(vars(obj), seen)
    elif hasattr(obj, "__slots__"):
        size += sum(
            _deep_sizeof(getattr(obj, slot), seen)
            for slot in obj.__slots__
            if hasattr(obj, slot)
        )
    return size
