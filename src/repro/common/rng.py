"""Seeded randomness helpers.

Every randomized structure in the library takes an explicit ``seed`` and
builds its generator through :func:`make_rng`, so experiments are exactly
reproducible and two structures given the same seed behave identically.
"""

from __future__ import annotations

import random

import numpy as np


def make_rng(seed: int | None) -> random.Random:
    """A ``random.Random`` seeded with *seed* (entropy-seeded when None)."""
    return random.Random(seed)


def make_np_rng(seed: int | None) -> np.random.Generator:
    """A numpy ``Generator`` seeded with *seed* (entropy-seeded when None)."""
    return np.random.default_rng(seed)


def derive_seed(seed: int, stream: int) -> int:
    """Derive the *stream*-th child seed from *seed* deterministically.

    Uses a SplitMix64 step so that children of nearby parents do not overlap.
    """
    z = (seed + 0x9E3779B97F4A7C15 * (stream + 1)) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)
