"""Exception hierarchy shared by every repro subpackage.

All library errors derive from :class:`ReproError` so that callers can catch
a single base class at API boundaries while still distinguishing programmer
errors (bad parameters) from runtime conditions (incompatible merges,
exhausted capacity).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """A constructor or method argument is outside its documented domain."""


class MergeError(ReproError):
    """Two synopses cannot be merged (incompatible shape, seed or type)."""


class SplitUnsupported(ReproError):
    """The synopsis has no mathematically valid ``split(n)``.

    Raised by :meth:`repro.common.mergeable.SynopsisBase.split` for
    synopses whose state cannot be partitioned into shards that merge back
    to the original (order-dependent or windowed structures). The elastic
    planner catches this and falls back to drain-and-restart for the
    affected bolt instead of silently producing wrong shards.
    """


class CapacityError(ReproError):
    """A bounded structure cannot accept more items (e.g. full cuckoo filter)."""


class SerializationError(ReproError):
    """A byte payload does not decode to the expected synopsis."""


class TopologyError(ReproError):
    """A streaming topology is malformed (cycles, missing components, ...)."""


class ExecutionError(ReproError):
    """A topology failed at runtime (component crash, undeliverable tuple)."""
