"""Live delta telemetry: periodic, change-only metric/span shipping.

:mod:`repro.cluster.obsbridge` ships a worker's whole registry once, at
shutdown. This module is the streaming version — the Heron metrics-manager
move: each worker keeps a :class:`DeltaExporter` over its private registry
and, at every interval tick, ships only the children whose values changed
since the last flush. Counters and histograms ship *cumulative* state
(counters their running value, histograms their full t-digest bytes), so
any single flush makes the coordinator's view exact again — a lost or
reordered flush degrades freshness, never correctness.

The coordinator side is :class:`TelemetryAbsorber`: records land in the
shared registry under a ``worker`` label with **replace** semantics (the
shipped value *is* the worker's truth, unlike the accumulate semantics of
``obsbridge.absorb_metrics``). Histograms are replaced with
``TDigest.from_bytes`` of the shipped bytes — and since
``from_bytes(to_bytes())`` round-trips bit-identically, the coordinator's
per-worker tail quantiles are *exactly* the worker's own, not an estimate
of an estimate. When a worker dies and is respawned,
:meth:`TelemetryAbsorber.seal_worker` folds the dead incarnation's last
known values into per-child bases so the new incarnation's cumulative
stream stacks on top instead of erasing history.

Spans ride the same flushes, which is what fixes the obsbridge span-loss
caveat: a crashed worker now loses at most one flush interval of spans
(whatever it recorded after its last shipped flush), not everything.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.tracing import Span, SpanCollector
from repro.quantiles.tdigest import TDigest

#: Default worker flush period (seconds). Chosen so a live dashboard feels
#: live while the per-flush work (a registry walk + a few pickles) stays
#: far off the per-tuple hot path; the bench's telemetry-overhead row
#: guards the budget.
DEFAULT_FLUSH_INTERVAL = 0.25


class DeltaExporter:
    """Change-only exporter over one registry (the worker half).

    :meth:`collect` walks the registry and returns ``obsbridge``-shaped
    records for every child whose value moved since the previous call.
    Counters/gauges ship their current value; histograms ship their full
    t-digest bytes plus count/sum. Shipping cumulative state (not diffs)
    keeps the protocol idempotent — absorbing the same flush twice, or
    skipping one, converges to the same registry.
    """

    def __init__(self, registry: MetricRegistry):
        self.registry = registry
        self.seq = 0
        self._shipped: dict[tuple[str, tuple[str, ...]], Any] = {}

    def collect(self) -> list[dict[str, Any]]:
        """Records for every child that changed since the last collect."""
        self.seq += 1
        records: list[dict[str, Any]] = []
        for family in self.registry.families():
            base = {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
            }
            for labels, child in family._label_tuples():
                key = (family.name, tuple(v for __, v in labels))
                if isinstance(family, Histogram):
                    fingerprint: Any = (child.count, child.sum)
                else:
                    fingerprint = child.value
                if self._shipped.get(key) == fingerprint:
                    continue
                self._shipped[key] = fingerprint
                record = dict(base)
                record["labels"] = dict(labels)
                if isinstance(family, Histogram):
                    record["count"] = child.count
                    record["sum"] = child.sum
                    record["digest"] = child.digest.to_bytes()
                    record["delta"] = family.delta
                else:
                    record["value"] = child.value
                records.append(record)
        return records


class TelemetryAbsorber:
    """Replace-semantics absorption of cumulative per-worker telemetry.

    The mirror of :class:`DeltaExporter`: each record overwrites the
    ``worker``-labeled child in the target registry. Sealed bases (from
    dead incarnations, see :meth:`seal_worker`) are added back on top so
    a respawned worker's fresh-from-zero counters don't erase the work
    its predecessor already reported.
    """

    def __init__(
        self,
        registry: MetricRegistry,
        collector: SpanCollector | None = None,
        flight: Any | None = None,
    ):
        self.registry = registry
        self.collector = collector
        self.flight = flight
        #: Flushes absorbed per worker (respawns keep counting up).
        self.flushes: dict[int, int] = {}
        # Last applied record per (worker, name, labelvalues) — what
        # seal_worker folds into the bases when an incarnation dies.
        self._live: dict[int, dict[tuple, tuple]] = {}
        # (worker, name, labelvalues) -> sealed cumulative state:
        # counters a float, histograms (digest_bytes, count, sum).
        self._counter_bases: dict[tuple, float] = {}
        self._digest_bases: dict[tuple, tuple[bytes, int, float]] = {}

    def absorb(
        self,
        worker: int,
        records: list[dict[str, Any]],
        spans: list[Span] = (),
    ) -> None:
        """Apply one flush from *worker*: metrics replace, spans append."""
        self.flushes[worker] = self.flushes.get(worker, 0) + 1
        live = self._live.setdefault(worker, {})
        for record in records:
            labelnames = ["worker", *record["labelnames"]]
            labels = {"worker": str(worker), **record["labels"]}
            key = (
                worker,
                record["name"],
                tuple(str(record["labels"][n]) for n in record["labelnames"]),
            )
            if record["kind"] == Counter.kind:
                family = self.registry.counter(
                    record["name"], record["help"], labelnames
                )
                base = self._counter_bases.get(key, 0.0)
                family.labels(**labels)._set(base + record["value"])
                live[key] = (Counter.kind, record["value"])
            elif record["kind"] == Gauge.kind:
                family = self.registry.gauge(
                    record["name"], record["help"], labelnames
                )
                family.labels(**labels).set(record["value"])
            elif record["kind"] == Histogram.kind:
                family = self.registry.histogram(
                    record["name"], record["help"], labelnames,
                    delta=record["delta"],
                )
                child = family.labels(**labels)
                sealed = self._digest_bases.get(key)
                if sealed is None:
                    # The common case: the shipped digest *is* the child.
                    # from_bytes(to_bytes()) round-trips bit-identically,
                    # so coordinator quantiles == worker quantiles.
                    child.digest = TDigest.from_bytes(record["digest"])
                    child.count = record["count"]
                    child.sum = record["sum"]
                else:
                    base_bytes, base_count, base_sum = sealed
                    digest = TDigest.from_bytes(base_bytes)
                    digest.merge(TDigest.from_bytes(record["digest"]))
                    child.digest = digest
                    child.count = base_count + record["count"]
                    child.sum = base_sum + record["sum"]
                live[key] = (
                    Histogram.kind,
                    record["digest"],
                    record["count"],
                    record["sum"],
                )
            # Unknown kinds are dropped silently, as in obsbridge: a newer
            # worker build must not wedge an older coordinator.
        for span in spans:
            if self.collector is not None:
                self.collector.record(span)
            if self.flight is not None:
                self.flight.record_span(span)

    def absorb_spans_only(self, spans: list[Span]) -> None:
        """Record *spans* without touching metrics — the path for flushes
        from an already-sealed (dead) incarnation, whose metric state is
        covered by the seal but whose spans are still real history."""
        for span in spans:
            if self.collector is not None:
                self.collector.record(span)
            if self.flight is not None:
                self.flight.record_span(span)

    def seal_worker(self, worker: int) -> None:
        """Fold *worker*'s last absorbed values into its bases.

        Called when an incarnation dies: its cumulative stream has ended,
        so its final values become the floor under the respawned
        incarnation's fresh-from-zero stream. Gauges need no base — the
        new incarnation's first flush simply overwrites the stale point
        value.
        """
        for key, state in self._live.pop(worker, {}).items():
            if state[0] == Counter.kind:
                self._counter_bases[key] = (
                    self._counter_bases.get(key, 0.0) + state[1]
                )
            elif state[0] == Histogram.kind:
                __, digest_bytes, count, total = state
                sealed = self._digest_bases.get(key)
                if sealed is not None:
                    base = TDigest.from_bytes(sealed[0])
                    base.merge(TDigest.from_bytes(digest_bytes))
                    digest_bytes = base.to_bytes()
                    count += sealed[1]
                    total += sealed[2]
                self._digest_bases[key] = (digest_bytes, count, total)
