"""Typed cluster health snapshots: the autoscaler-facing signal feed.

Every Table-2 system surfaces a *live* control view of a running topology
— Storm's UI, Heron's metrics manager, MillWheel's per-computation
watermarks. :class:`HealthSnapshot` is our typed equivalent, built by a
:class:`HealthMonitor` from the telemetry flushes the workers stream to
the coordinator (:mod:`repro.obs.live`) plus the coordinator's own
transport counters and shm ring occupancy. It is deliberately a frozen,
JSON-round-trippable schema (``repro.obs.health/v1``): ROADMAP item 3's
backpressure-driven autoscaler consumes exactly this object, and
``repro-obs top`` renders it.

**Watermark semantics.** Workers report, per operator, the highest source
*root id* they have fully processed (root ids are coordinator-issued and
monotone, so they are an offset-unit event clock — MillWheel's "low
watermark" over a trivially in-order source). The operator watermark is
the **min** across the workers owning its tasks: everything at or below it
has provably passed through every shard. ``lag`` is the distance from the
source frontier (the newest root the coordinator has issued) to that
watermark — the per-operator backlog the autoscaler watches. When the
topology carries real event times, an ``event_time_fn`` lifts both
frontier and watermarks into event-time units instead
(``watermark_unit == "event_time"``); in unreliable at-most-once runs no
root ids exist, so offset-unit watermarks stay at 0 and only throughput/
occupancy signals move.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable

#: Schema tag embedded in every snapshot dict (versioned for consumers).
HEALTH_SCHEMA = "repro.obs.health/v1"


@dataclass(frozen=True)
class OperatorHealth:
    """One operator's streaming health (cluster-wide, all shards folded)."""

    name: str
    kind: str  # "spout" | "bolt"
    processed: int
    emitted: int
    #: Highest source position fully processed by *every* owning shard.
    watermark: float
    #: ``source_frontier - watermark`` (>= 0): the operator's backlog.
    lag: float
    processed_rate: float  # tuples/s since the previous snapshot


@dataclass(frozen=True)
class WorkerHealth:
    """One worker process as seen through its telemetry stream."""

    worker: int
    alive: bool
    #: Process incarnation (0 for the original, +1 per respawn).
    incarnation: int
    #: Sequence number of the last absorbed flush (per incarnation).
    telemetry_seq: int
    #: Seconds since the last flush was absorbed (-1.0: never heard from).
    telemetry_age_s: float
    #: Total flushes absorbed across all incarnations.
    flushes: int
    ring_in_used: int
    ring_out_used: int
    ring_capacity: int
    processed_total: int

    @property
    def ring_in_occupancy(self) -> float:
        """Inbox ring fill fraction in [0, 1] (0 when no shm rings)."""
        return self.ring_in_used / self.ring_capacity if self.ring_capacity else 0.0

    @property
    def ring_out_occupancy(self) -> float:
        """Outbox ring fill fraction in [0, 1] (0 when no shm rings)."""
        return self.ring_out_used / self.ring_capacity if self.ring_capacity else 0.0


@dataclass(frozen=True)
class HealthSnapshot:
    """One point-in-time cluster health view (the item-3 autoscaler feed)."""

    seq: int
    clock: float  # monotonic seconds; ages/rates are deltas of this
    reason: str  # "interval" | "query" | "crash" | "mismatch" | "final"
    watermark_unit: str  # "offset" | "event_time"
    source_frontier: float
    backpressure_waits: int
    latency_p50_s: float
    latency_p99_s: float
    workers: tuple[WorkerHealth, ...] = field(default_factory=tuple)
    operators: tuple[OperatorHealth, ...] = field(default_factory=tuple)
    #: Serving-layer counters (epoch, cache hits/misses, …) when the
    #: snapshot comes from a query front-end; None for plain cluster runs.
    serving: dict[str, Any] | None = None
    #: Envelopes issued but not yet acknowledged at snapshot time — the
    #: tuples a migration barrier would have to drain.
    in_flight: int = 0
    #: Cumulative spout-pull rounds skipped because ``outstanding``
    #: exceeded the credit cap. Like ``backpressure_waits`` this is a
    #: monotone counter; the autoscaler watches its *delta* between
    #: ticks as the "sources are being held back" pressure signal.
    spout_throttled: int = 0
    #: Elastic-runtime state (current parallelism, last rescale decision,
    #: autoscaler cooldown) when the run has an elastic coordinator;
    #: None otherwise. See ``repro.cluster.elastic``.
    elastic: dict[str, Any] | None = None
    schema: str = HEALTH_SCHEMA

    def worker(self, worker_id: int) -> WorkerHealth | None:
        """The entry for *worker_id*, or None."""
        for entry in self.workers:
            if entry.worker == worker_id:
                return entry
        return None

    def operator(self, name: str) -> OperatorHealth | None:
        """The entry for operator *name*, or None."""
        for entry in self.operators:
            if entry.name == name:
                return entry
        return None

    def max_ring_occupancy(self) -> float:
        """The fullest ring across all workers and directions, in [0, 1]."""
        peaks = [
            max(w.ring_in_occupancy, w.ring_out_occupancy) for w in self.workers
        ]
        return max(peaks, default=0.0)

    def max_lag(self) -> float:
        """The laggiest operator's backlog (the autoscale-up trigger)."""
        return max((op.lag for op in self.operators), default=0.0)

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-ready dict (``workers``/``operators`` as lists)."""
        out = asdict(self)
        out["workers"] = [asdict(w) for w in self.workers]
        out["operators"] = [asdict(op) for op in self.operators]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "HealthSnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output."""
        payload = dict(data)
        payload["workers"] = tuple(
            WorkerHealth(**w) for w in payload.get("workers", ())
        )
        payload["operators"] = tuple(
            OperatorHealth(**op) for op in payload.get("operators", ())
        )
        return cls(**payload)


class _WorkerState:
    """Mutable per-worker accumulation between snapshots."""

    __slots__ = (
        "alive",
        "incarnation",
        "seq",
        "flushes",
        "last_flush_clock",
        "frontier",
        "event_frontier",
        "processed_total",
        "ring_in_used",
        "ring_out_used",
    )

    def __init__(self) -> None:
        self.alive = True
        self.incarnation = 0
        self.seq = 0
        self.flushes = 0
        self.last_flush_clock: float | None = None
        self.frontier: dict[str, float] = {}
        self.event_frontier: dict[str, float] = {}
        self.processed_total = 0
        self.ring_in_used = 0
        self.ring_out_used = 0


class HealthMonitor:
    """Folds telemetry flushes + transport state into health snapshots.

    Deliberately knows nothing about the cluster executor: it is fed
    primitives (flush payload fields, ring byte counts, operator → owner
    maps) so it can be unit-tested with a fake clock and reused by any
    runtime that can produce the same signals.
    """

    def __init__(
        self,
        n_workers: int,
        operators: dict[str, tuple[str, tuple[int, ...]]],
        ring_capacity: int = 0,
        watermark_unit: str = "offset",
        clock: Callable[[], float] = time.monotonic,
    ):
        self.n_workers = n_workers
        #: name -> (kind, worker ids owning at least one task of it).
        self.operators = operators
        self.ring_capacity = ring_capacity
        self.watermark_unit = watermark_unit
        self._clock = clock
        self._workers = {w: _WorkerState() for w in range(n_workers)}
        self._seq = 0
        self._source_frontier = 0.0
        self._last_counts: dict[str, int] = {}
        self._last_clock: float | None = None
        self.last_snapshot: HealthSnapshot | None = None

    # -- signal intake -----------------------------------------------------

    def record_flush(
        self,
        worker: int,
        seq: int,
        frontier: dict[str, float],
        event_frontier: dict[str, float] | None = None,
        processed_total: int = 0,
    ) -> None:
        """Absorb one telemetry flush's health fields from *worker*."""
        state = self._workers.get(worker)
        if state is None:
            # A worker id the monitor no longer tracks: the last flush of
            # an incarnation retired by an elastic scale-down can trail
            # the reconfigure. Stale by construction — drop it.
            return
        state.seq = seq
        state.flushes += 1
        state.last_flush_clock = self._clock()
        state.frontier.update(frontier)
        if event_frontier:
            state.event_frontier.update(event_frontier)
        state.processed_total = processed_total
        state.alive = True

    def note_respawn(self, worker: int) -> None:
        """A worker died and is being replaced: reset its stream state.

        The dead incarnation's frontiers are dropped — after rollback the
        new incarnation re-earns its watermark, which correctly *lowers*
        the operator watermark until replayed work catches back up.
        """
        state = self._workers[worker]
        state.incarnation += 1
        state.seq = 0
        state.last_flush_clock = None
        state.frontier = {}
        state.event_frontier = {}

    def reconfigure(
        self,
        n_workers: int,
        operators: dict[str, tuple[str, tuple[int, ...]]],
    ) -> None:
        """Re-shape the monitor after an elastic rescale.

        Worker ids retained across the rescale keep their cumulative
        totals (flush counts survive, like a respawn) but start a new
        incarnation with cleared frontiers — post-restore they re-earn
        their watermarks exactly as a crash-respawned worker does.
        Retired ids are dropped; grown ids start fresh.
        """
        survivors: dict[int, _WorkerState] = {}
        for worker in range(n_workers):
            state = self._workers.get(worker)
            if state is not None:
                state.incarnation += 1
                state.seq = 0
                state.last_flush_clock = None
                state.frontier = {}
                state.event_frontier = {}
                state.ring_in_used = 0
                state.ring_out_used = 0
                survivors[worker] = state
            else:
                survivors[worker] = _WorkerState()
        self._workers = survivors
        self.n_workers = n_workers
        self.operators = operators

    def set_source_frontier(self, value: float) -> None:
        """Newest source position issued (same unit as the watermarks)."""
        self._source_frontier = max(self._source_frontier, float(value))

    def set_worker_io(
        self, worker: int, alive: bool, ring_in_used: int, ring_out_used: int
    ) -> None:
        """Point-in-time liveness + shm ring fill for *worker*."""
        state = self._workers.get(worker)
        if state is None:  # retired by a rescale (see record_flush)
            return
        state.alive = alive
        state.ring_in_used = ring_in_used
        state.ring_out_used = ring_out_used

    # -- derived -----------------------------------------------------------

    def _watermark(self, name: str, owners: tuple[int, ...]) -> float:
        """Min over owning workers of their reported frontier for *name*."""
        event_time = self.watermark_unit == "event_time"
        values = []
        for worker in owners:
            state = self._workers.get(worker)
            if state is None:
                return 0.0
            front = state.event_frontier if event_time else state.frontier
            values.append(front.get(name, 0.0))
        return min(values, default=0.0)

    def snapshot(
        self,
        reason: str = "interval",
        counts: dict[str, tuple[int, int]] | None = None,
        backpressure_waits: int = 0,
        latency_p50_s: float = 0.0,
        latency_p99_s: float = 0.0,
        in_flight: int = 0,
        spout_throttled: int = 0,
        elastic: dict[str, Any] | None = None,
    ) -> HealthSnapshot:
        """Build (and remember) the next snapshot.

        *counts* maps operator name to cluster-wide ``(processed,
        emitted)`` totals — the coordinator supplies them from its metric
        façade so the monitor needs no registry access.
        """
        self._seq += 1
        now = self._clock()
        elapsed = (
            now - self._last_clock if self._last_clock is not None else None
        )
        workers = []
        for worker_id in sorted(self._workers):
            state = self._workers[worker_id]
            age = (
                now - state.last_flush_clock
                if state.last_flush_clock is not None
                else -1.0
            )
            workers.append(
                WorkerHealth(
                    worker=worker_id,
                    alive=state.alive,
                    incarnation=state.incarnation,
                    telemetry_seq=state.seq,
                    telemetry_age_s=age,
                    flushes=state.flushes,
                    ring_in_used=state.ring_in_used,
                    ring_out_used=state.ring_out_used,
                    ring_capacity=self.ring_capacity,
                    processed_total=state.processed_total,
                )
            )
        operators = []
        for name, (kind, owners) in sorted(self.operators.items()):
            processed, emitted = (counts or {}).get(name, (0, 0))
            if kind == "spout":
                watermark = self._source_frontier
            else:
                watermark = self._watermark(name, owners)
            lag = max(0.0, self._source_frontier - watermark)
            previous = self._last_counts.get(name)
            rate = 0.0
            if previous is not None and elapsed and elapsed > 0:
                rate = max(0.0, (processed - previous) / elapsed)
            self._last_counts[name] = processed
            operators.append(
                OperatorHealth(
                    name=name,
                    kind=kind,
                    processed=processed,
                    emitted=emitted,
                    watermark=watermark,
                    lag=lag,
                    processed_rate=round(rate, 3),
                )
            )
        self._last_clock = now
        snapshot = HealthSnapshot(
            seq=self._seq,
            clock=now,
            reason=reason,
            watermark_unit=self.watermark_unit,
            source_frontier=self._source_frontier,
            backpressure_waits=backpressure_waits,
            latency_p50_s=latency_p50_s,
            latency_p99_s=latency_p99_s,
            workers=tuple(workers),
            operators=tuple(operators),
            in_flight=in_flight,
            spout_throttled=spout_throttled,
            elastic=elastic,
        )
        self.last_snapshot = snapshot
        return snapshot
