"""The observability bundle threaded through executors and pipelines.

One :class:`Observability` object carries everything a run publishes
into: the metric registry, the (optional) trace sampler, and the span
collector. The executor accepts it as a single ``obs=`` parameter so the
plumbing stays one argument wide; ``Observability.create`` builds a
sensibly-configured bundle in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import MetricRegistry
from repro.obs.tracing import SpanCollector, TraceSampler

#: Default sampled fraction of spout messages (1%).
DEFAULT_SAMPLE_RATE = 0.01


@dataclass
class Observability:
    """Registry + sampler + collector for one (or several) runs.

    The collector deliberately lives outside checkpointed operator state:
    spans recorded before a crash survive recovery, which is what makes
    post-mortem trace trees possible.
    """

    registry: MetricRegistry = field(default_factory=MetricRegistry)
    sampler: TraceSampler | None = None
    collector: SpanCollector = field(default_factory=SpanCollector)

    @classmethod
    def create(
        cls,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
        seed: int = 0,
        registry: MetricRegistry | None = None,
    ) -> "Observability":
        """A bundle with tracing at *sample_rate* (0 disables tracing)."""
        return cls(
            registry=registry if registry is not None else MetricRegistry(),
            sampler=TraceSampler(rate=sample_rate, seed=seed) if sample_rate > 0 else None,
            collector=SpanCollector(),
        )
