"""The demo topology the obs CLI (and CI's obs-smoke job) observes.

A small but non-trivial Storm-shaped topology over a seeded Zipf word
stream: one spout fanning into a splitter bolt, whose output feeds
**two** consumers — a keyed word counter (parallelism 2) and an
instrumented :class:`~repro.platform.operators.SynopsisBolt` carrying a
:class:`~repro.core.summary.StreamSummary` (distinct count + top-k +
point frequencies). The two-way fan-out makes trace trees branch, the
keyed grouping exercises queue-wait accounting across tasks, and the
sketch stage demonstrates synopsis instrumentation — every layer of the
obs plane is visible in one run.
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.obs.context import Observability
from repro.platform.executor import LocalExecutor
from repro.platform.faults import FaultInjector
from repro.platform.operators import CountBolt, FlatMapBolt, SynopsisBolt
from repro.platform.topology import ListSpout, Topology, TopologyBuilder


def demo_records(n: int = 2_000, seed: int = 7) -> list[tuple[str]]:
    """Seeded sentences with Zipf-ish word frequencies."""
    rnd = make_rng(seed)
    words = [f"w{int(rnd.random() ** 2 * 50)}" for __ in range(4 * n)]
    return [
        (" ".join(words[4 * i : 4 * i + 4]),)
        for i in range(n)
    ]


def _summary_factory():
    from repro.cardinality.hyperloglog import HyperLogLog
    from repro.core.summary import StreamSummary
    from repro.frequency.count_min import CountMinSketch
    from repro.frequency.space_saving import SpaceSaving

    return StreamSummary(
        uniques=HyperLogLog(precision=12),
        topk=SpaceSaving(64),
        freq=CountMinSketch(width=1024, depth=4),
    )


def build_demo_topology(records: list[tuple[str]], obs: Observability | None = None) -> Topology:
    """words → split → {count (keyed, parallelism 2), sketch (instrumented)}."""
    # Only instrument the sketch when an obs bundle is supplied: the bare
    # configuration (obs=None) is the overhead bench's baseline and must
    # not touch the process-wide default registry.
    registry = obs.registry if obs is not None else None
    instrument = "demo_summary" if obs is not None else False
    builder = TopologyBuilder()
    builder.set_spout("sentences", lambda: ListSpout(records))
    builder.set_bolt(
        "split",
        lambda: FlatMapBolt(lambda v: [(w,) for w in v[0].split()]),
    ).shuffle("sentences")
    builder.set_bolt("count", lambda: CountBolt(0), parallelism=2).fields("split", 0)
    builder.set_bolt(
        "sketch",
        lambda: SynopsisBolt(
            _summary_factory,
            batch_size=64,
            instrument=instrument,
            registry=registry,
        ),
    ).shuffle("split")
    return builder.build()


def run_demo(
    n_records: int = 2_000,
    sample_rate: float = 0.1,
    semantics: str = "at_least_once",
    seed: int = 7,
    crash_after: int | None = None,
    drop_probability: float = 0.0,
    checkpoint_interval: int = 500,
) -> tuple[LocalExecutor, Observability]:
    """Run the demo topology under an Observability bundle.

    ``crash_after`` injects a one-shot worker crash (with
    ``semantics="exactly_once"`` this exercises checkpoint recovery and
    trace-across-recovery); ``drop_probability`` loses tuples in transit.
    """
    obs = Observability.create(sample_rate=sample_rate, seed=seed)
    topology = build_demo_topology(demo_records(n_records, seed), obs)
    faults = None
    if crash_after is not None or drop_probability:
        faults = FaultInjector(
            drop_probability=drop_probability, crash_after=crash_after, seed=seed
        )
    executor = LocalExecutor(
        topology,
        semantics=semantics,
        faults=faults,
        checkpoint_interval=checkpoint_interval,
        obs=obs,
    )
    executor.run()
    return executor, obs
