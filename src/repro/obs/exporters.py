"""Exporters: JSON-lines events and Prometheus v0 text exposition.

Two wire formats cover the two consumption patterns the Table 2 systems
converged on:

* **JSON lines** (:func:`to_jsonl`) — one self-describing record per
  line (``{"type": "metric", ...}`` / ``{"type": "span", ...}``), the
  archival/pipeline format: greppable, streamable, diffable in CI
  artifacts.
* **Prometheus text exposition v0** (:func:`to_prometheus`) — the
  pull-scrape format (``# HELP`` / ``# TYPE`` / ``name{labels} value``),
  so a registry can be mounted behind any HTTP handler and scraped.

:func:`parse_prometheus` reads the exposition format back into samples;
the CI round-trip test uses it to prove both exporters publish identical
values from one registry.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.common.exceptions import ParameterError
from repro.obs.metrics import MetricRegistry, Sample
from repro.obs.tracing import SpanCollector

# -- JSON lines --------------------------------------------------------------


def metric_records(registry: MetricRegistry) -> list[dict]:
    """Every registry sample as a JSON-ready dict."""
    return [
        {
            "type": "metric",
            "name": sample.name,
            "labels": sample.labels_dict(),
            "value": sample.value,
        }
        for sample in registry.collect()
    ]


def to_jsonl(registry: MetricRegistry, collector: SpanCollector | None = None) -> str:
    """All metrics (and spans, when a collector is given) as JSON lines."""
    records = metric_records(registry)
    if collector is not None:
        records.extend(collector.to_records())
    return "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)


def write_jsonl(
    path: str | Path,
    registry: MetricRegistry,
    collector: SpanCollector | None = None,
) -> Path:
    """Write :func:`to_jsonl` output to *path*; returns the path."""
    path = Path(path)
    path.write_text(to_jsonl(registry, collector), encoding="utf-8")
    return path


def read_jsonl(text: str) -> list[dict]:
    """Parse JSON-lines export text back into records."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


# -- Prometheus text exposition ----------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_sample(sample: Sample) -> str:
    if sample.labels:
        inner = ",".join(
            f'{key}="{_escape_label_value(str(val))}"' for key, val in sample.labels
        )
        return f"{sample.name}{{{inner}}} {_format_value(sample.value)}"
    return f"{sample.name} {_format_value(sample.value)}"


def to_prometheus(registry: MetricRegistry) -> str:
    """Prometheus text exposition (v0) of every family in *registry*.

    Histograms are exposed as Prometheus *summaries* (count/sum plus
    ``quantile``-labeled samples) since they publish t-digest quantiles,
    not fixed buckets.
    """
    lines: list[str] = []
    for family in registry.families():
        kind = "summary" if family.kind == "histogram" else family.kind
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {kind}")
        for sample in family.samples():
            lines.append(_format_sample(sample))
    return "\n".join(lines) + "\n" if lines else ""


_PARSE_ERROR = "not Prometheus text exposition"


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text into ``{(name, sorted labels): value}``.

    Supports the subset :func:`to_prometheus` emits (which is the subset
    nearly all real exporters emit): one sample per line, optional label
    block, float value, ``#``-prefixed comment lines.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, value = _parse_sample_line(line, lineno)
        out[(name, tuple(sorted(labels)))] = value
    return out


def _parse_sample_line(
    line: str, lineno: int
) -> tuple[str, list[tuple[str, str]], float]:
    labels: list[tuple[str, str]] = []
    if "{" in line:
        name, rest = line.split("{", 1)
        if "}" not in rest:
            raise ParameterError(f"line {lineno}: unterminated label block")
        body, value_part = rest.rsplit("}", 1)
        labels = _parse_labels(body, lineno)
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise ParameterError(f"line {lineno}: {_PARSE_ERROR}")
        name, value_part = parts
    name = name.strip()
    if not name:
        raise ParameterError(f"line {lineno}: empty metric name")
    value_text = value_part.strip().split()[0]
    try:
        value = float(value_text)
    except ValueError as exc:
        raise ParameterError(f"line {lineno}: bad value {value_text!r}") from exc
    return name, labels, value


def _parse_labels(body: str, lineno: int) -> list[tuple[str, str]]:
    labels: list[tuple[str, str]] = []
    i, n = 0, len(body)
    while i < n:
        while i < n and body[i] in ", ":
            i += 1
        if i >= n:
            break
        eq = body.find("=", i)
        if eq < 0 or eq + 1 >= n or body[eq + 1] != '"':
            raise ParameterError(f"line {lineno}: malformed label block")
        key = body[i:eq].strip()
        j = eq + 2
        chars: list[str] = []
        while j < n:
            ch = body[j]
            if ch == "\\" and j + 1 < n:
                nxt = body[j + 1]
                chars.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
                j += 2
                continue
            if ch == '"':
                break
            chars.append(ch)
            j += 1
        else:
            raise ParameterError(f"line {lineno}: unterminated label value")
        labels.append((key, "".join(chars)))
        i = j + 1
    return labels


def registry_as_samples(
    registry: MetricRegistry,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Registry contents in :func:`parse_prometheus`'s key shape (for
    round-trip comparisons between the two exporters)."""
    return {
        (sample.name, tuple(sorted(sample.labels))): sample.value
        for sample in registry.collect()
    }
