"""The metric registry: labeled instruments with cheap no-op defaults.

Every Table 2 system ships a first-class metrics plane (Storm's UI
counters, Heron's metrics manager, MillWheel's per-computation watermarks
and latencies). This module is ours: three instrument kinds —

* :class:`Counter` — monotonically increasing totals (tuples emitted,
  synopsis update calls);
* :class:`Gauge` — point-in-time values (queue high-water, memory
  footprint), optionally backed by a callback so collection reads the
  live value;
* :class:`Histogram` — value distributions summarised by the library's
  own :class:`~repro.quantiles.tdigest.TDigest` (the observability plane
  eats its own dog food), exposed as count/sum plus tail quantiles.

Instruments are *labeled*: an instrument declares its label names once
and hands out per-label-value children (``counter.labels(component="x")``),
exactly Prometheus' model, so exporters can render one family per name.
A :class:`MetricRegistry` owns instruments by name (get-or-create, so two
subsystems asking for the same family share it); :data:`NULL_REGISTRY`
is the no-op default — every method is a cheap pass-through, which keeps
uninstrumented hot paths free of overhead. A process-wide default
registry (:func:`get_default_registry`) serves code that does not thread
an explicit registry.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.common.exceptions import ParameterError
from repro.quantiles.tdigest import TDigest

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Quantiles every histogram family exports.
HISTOGRAM_QUANTILES = (0.5, 0.9, 0.99)


@dataclass(frozen=True)
class Sample:
    """One collected measurement: a fully-qualified name, labels, value."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float

    def labels_dict(self) -> dict[str, str]:
        """The label pairs as a plain dict."""
        return dict(self.labels)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise ParameterError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Iterable[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label):
            raise ParameterError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise ParameterError(f"duplicate label names in {names!r}")
    return names


class _Instrument:
    """Shared machinery: a family of per-label-value children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._children: dict[tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:
        raise NotImplementedError

    def labels(self, **labelvalues: Any) -> Any:
        """The child instrument for this exact label-value combination."""
        if set(labelvalues) != set(self.labelnames):
            raise ParameterError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def _default_child(self) -> Any:
        if self.labelnames:
            raise ParameterError(
                f"{self.name} is labeled {self.labelnames}; use .labels(...)"
            )
        key = ()
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def _label_tuples(self) -> list[tuple[tuple[tuple[str, str], ...], Any]]:
        return [
            (tuple(zip(self.labelnames, key)), child)
            for key, child in sorted(self._children.items())
        ]

    def samples(self) -> list[Sample]:
        """Every collected sample of the family, sorted by label values."""
        raise NotImplementedError


class _CounterChild:
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ParameterError("counters only go up; inc amount must be >= 0")
        self._value += amount

    def _set(self, value: float) -> None:
        # Internal escape hatch for facades that expose attribute
        # assignment (ExecutionMetrics); the public API stays monotonic.
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Increase the (unlabeled) counter by *amount* (must be >= 0)."""
        self._default_child().inc(amount)

    def _set(self, value: float) -> None:
        self._default_child()._set(value)

    @property
    def value(self) -> float:
        return self._default_child().value

    def samples(self) -> list[Sample]:
        return [
            Sample(self.name, labels, child.value)
            for labels, child in self._label_tuples()
        ]


class _GaugeChild:
    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._fn = None
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Collect the gauge by calling *fn* (live memory footprints etc.)."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Gauge(_Instrument):
    """A value that can go up and down (or be computed at collect time)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        """Set the (unlabeled) gauge to *value*."""
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Increase the gauge by *amount*."""
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrease the gauge by *amount*."""
        self._default_child().dec(amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Collect the gauge by calling *fn* at read time."""
        self._default_child().set_function(fn)

    @property
    def value(self) -> float:
        return self._default_child().value

    def samples(self) -> list[Sample]:
        return [
            Sample(self.name, labels, child.value)
            for labels, child in self._label_tuples()
        ]


class _HistogramChild:
    __slots__ = ("digest", "count", "sum")

    def __init__(self, delta: float) -> None:
        self.digest = TDigest(delta=delta)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ParameterError("cannot observe NaN")
        self.digest.update(value)
        self.count += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        if self.count == 0:
            return 0.0
        return self.digest.quantile(q)


class Histogram(_Instrument):
    """A t-digest-backed distribution: count, sum and tail quantiles."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        delta: float = 100.0,
    ):
        super().__init__(name, help, labelnames)
        self.delta = delta

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.delta)

    def observe(self, value: float) -> None:
        """Record one observation (NaN rejected)."""
        self._default_child().observe(value)

    def quantile(self, q: float) -> float:
        """Estimated *q*-quantile of the observations (0.0 when empty)."""
        return self._default_child().quantile(q)

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum

    def samples(self) -> list[Sample]:
        out: list[Sample] = []
        for labels, child in self._label_tuples():
            out.append(Sample(f"{self.name}_count", labels, float(child.count)))
            out.append(Sample(f"{self.name}_sum", labels, child.sum))
            for q in HISTOGRAM_QUANTILES:
                out.append(
                    Sample(
                        self.name,
                        labels + (("quantile", repr(q)),),
                        child.quantile(q),
                    )
                )
        return out


class MetricRegistry:
    """Owns instruments by name; get-or-create so subsystems share families."""

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(
        self, cls: type, name: str, help: str, labelnames: Iterable[str], **kwargs: Any
    ) -> Any:
        labelnames = _check_labelnames(labelnames)
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != labelnames:
                raise ParameterError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.labelnames}"
                )
            return existing
        instrument = cls(name, help, labelnames, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        """Get or create the counter family *name*."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        """Get or create the gauge family *name*."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        delta: float = 100.0,
    ) -> Histogram:
        """Get or create the histogram family *name*."""
        return self._get_or_create(Histogram, name, help, labelnames, delta=delta)

    def get(self, name: str) -> _Instrument | None:
        """The instrument registered under *name*, or None."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        """Sorted names of every registered family."""
        return sorted(self._instruments)

    def families(self) -> list[_Instrument]:
        """Every registered instrument, sorted by name."""
        return [self._instruments[name] for name in self.names()]

    def collect(self) -> list[Sample]:
        """Every sample of every family, in stable (name, labels) order."""
        out: list[Sample] = []
        for family in self.families():
            out.extend(family.samples())
        return out


class _NullChild:
    """Accepts every instrument verb and does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def _set(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def labels(self, **labelvalues: Any) -> "_NullChild":
        return self

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def samples(self) -> list[Sample]:
        return []


_NULL_CHILD = _NullChild()


class NullRegistry(MetricRegistry):
    """The cheap default: every instrument is a shared no-op."""

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Any:
        return _NULL_CHILD

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Any:
        return _NULL_CHILD

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        delta: float = 100.0,
    ) -> Any:
        return _NULL_CHILD

    def collect(self) -> list[Sample]:
        return []

    def families(self) -> list[_Instrument]:
        return []


#: Shared no-op registry: instrument against it freely, nothing is stored.
NULL_REGISTRY = NullRegistry()

_default_registry = MetricRegistry()


def get_default_registry() -> MetricRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_default_registry(registry: MetricRegistry) -> MetricRegistry:
    """Swap the process-wide default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
