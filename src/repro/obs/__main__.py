"""``python -m repro.obs`` — see :mod:`repro.obs.cli`."""

from repro.obs.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
