"""Sampled per-tuple tracing: trace ids, spans, and tree reconstruction.

MillWheel-style systems answer "where did this record spend its time?"
with distributed tracing: a small sampled fraction of records carries a
trace id, and every hop appends a *span* (component, queue wait, process
time, fan-out). This module provides the pieces the executor threads
through a topology run:

* :class:`TraceSampler` — a seeded, **deterministic** sampling decision
  keyed on the spout message id. Determinism matters: when a message is
  replayed (at-least-once) or re-emitted after checkpoint recovery
  (exactly-once), the same message id re-samples to the same decision and
  the same trace id, so the trace continues across failures instead of
  being cut at the crash.
* :class:`Span` — one hop of one traced tuple tree. Spans form a tree via
  ``parent_id``; ``attempt`` numbers re-emissions of the same root
  message so post-crash replays are distinguishable from the aborted
  first try.
* :class:`SpanCollector` — the sink spans are recorded into. It lives
  *outside* checkpointed operator state on purpose: observability data
  must survive recovery (the whole point is debugging the crash). It can
  reconstruct a traced message's span tree end-to-end
  (:meth:`SpanCollector.tree`) and serialise everything for export.

Timestamps are supplied by the caller (the platform layer owns the
clock); nothing here reads wall time, so the module stays replay-safe.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.common.exceptions import ParameterError
from repro.common.rng import derive_seed

_span_counter = itertools.count(1)

#: Span kinds recorded by the executor.
SPAN_KINDS = (
    "spout_emit",
    "process",
    "ack",
    "fail",
    "replay",
    "checkpoint",
    "recovery",
    "crash",
    "rescale",
)


def next_span_id() -> int:
    """Process-unique span id (well-scrambled, like tuple ids)."""
    return derive_seed(0x0B5E7A11, next(_span_counter))


class TraceSampler:
    """Deterministic head-based sampling of spout messages.

    ``rate`` is the sampled fraction in ``[0, 1]``; the decision for a
    message id is a pure function of ``(seed, msg_id)``, so replays of
    the same message are consistently traced (or consistently not).
    """

    def __init__(self, rate: float = 0.01, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ParameterError("sample rate must lie in [0, 1]")
        self.rate = rate
        self.seed = seed
        # Pre-scaled threshold against the 64-bit hash range.
        self._threshold = int(rate * float(1 << 64))

    def sample(self, msg_id: int) -> int | None:
        """The trace id for *msg_id*, or None when unsampled."""
        if self._threshold == 0:
            return None
        if derive_seed(self.seed, msg_id) < self._threshold:
            return self.trace_id(msg_id)
        return None

    def trace_id(self, msg_id: int) -> int:
        """The (stable) trace id assigned to *msg_id* when sampled."""
        return derive_seed(self.seed ^ 0x7ACE, msg_id)


@dataclass
class Span:
    """One hop of a traced tuple: timing, queueing and fan-out for a
    single component visit (or a lifecycle event when ``trace_id`` is
    None — checkpoint/recovery/crash markers)."""

    trace_id: int | None
    span_id: int
    parent_id: int | None
    component: str
    kind: str
    start: float = 0.0
    duration: float = 0.0
    queue_wait: float = 0.0
    fan_out: int = 0
    attempt: int = 1
    task: int = 0
    msg_id: int | None = None

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the JSON-lines exporter)."""
        return {
            "type": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "component": self.component,
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "queue_wait": self.queue_wait,
            "fan_out": self.fan_out,
            "attempt": self.attempt,
            "task": self.task,
            "msg_id": self.msg_id,
        }


@dataclass
class SpanNode:
    """One node of a reconstructed span tree."""

    span: Span
    children: list["SpanNode"] = field(default_factory=list)

    def walk(self) -> Iterator["SpanNode"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def components(self) -> list[str]:
        return [node.span.component for node in self.walk()]


class SpanCollector:
    """Accumulates spans and lifecycle events for one (or more) runs."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.events: list[Span] = []  # trace-less lifecycle markers

    def record(self, span: Span) -> Span:
        """Store *span* (events — trace_id None — are kept separately)."""
        if span.kind not in SPAN_KINDS:
            raise ParameterError(f"unknown span kind {span.kind!r}")
        if span.trace_id is None:
            self.events.append(span)
        else:
            self.spans.append(span)
        return span

    # -- queries -----------------------------------------------------------

    def trace_ids(self) -> list[int]:
        """Distinct trace ids, in first-seen order."""
        seen: dict[int, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def spans_for(self, trace_id: int) -> list[Span]:
        """All spans of *trace_id*, in record order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def attempts(self, trace_id: int) -> int:
        """Highest attempt number seen for *trace_id* (0 when unknown)."""
        spans = self.spans_for(trace_id)
        return max((s.attempt for s in spans), default=0)

    def tree(self, trace_id: int, attempt: int | None = None) -> SpanNode:
        """Reconstruct the span tree of *trace_id*.

        By default the **final attempt** is reconstructed — the one that
        ran to completion after any crash/replay; pass ``attempt`` to
        inspect an earlier (possibly aborted) try. The root is the
        attempt's ``spout_emit`` span; terminal ``ack``/``fail`` spans
        parent onto the root.
        """
        spans = self.spans_for(trace_id)
        if not spans:
            raise ParameterError(f"no spans recorded for trace {trace_id}")
        want = self.attempts(trace_id) if attempt is None else attempt
        spans = [s for s in spans if s.attempt == want]
        roots = [s for s in spans if s.parent_id is None]
        if len(roots) != 1:
            raise ParameterError(
                f"trace {trace_id} attempt {want}: expected one root span, "
                f"found {len(roots)}"
            )
        nodes = {s.span_id: SpanNode(s) for s in spans}
        root = nodes[roots[0].span_id]
        for span in spans:
            if span.parent_id is None:
                continue
            parent = nodes.get(span.parent_id)
            if parent is None:
                # Parent belongs to an earlier attempt (pre-crash emission
                # whose child survived); hang it off the root so the tree
                # stays connected end-to-end.
                parent = root
            parent.children.append(nodes[span.span_id])
        return root

    # -- export ------------------------------------------------------------

    def to_records(self) -> list[dict]:
        """Every span and event as a JSON-ready dict, in record order."""
        return [s.to_dict() for s in self.spans] + [s.to_dict() for s in self.events]

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)


def critical_path(node: SpanNode) -> list[Span]:
    """The longest (queue_wait + duration)-weighted root→leaf chain."""

    def best(n: SpanNode) -> tuple[float, list[Span]]:
        cost = n.span.queue_wait + n.span.duration
        if not n.children:
            return cost, [n.span]
        child_cost, child_path = max(
            (best(c) for c in n.children), key=lambda pair: pair[0]
        )
        return cost + child_cost, [n.span] + child_path

    return best(node)[1]


def span_stats(spans: list[Span]) -> dict[str, dict[str, Any]]:
    """Per-component aggregates over *spans*: hop count, mean/max process
    time and queue wait (seconds), total fan-out. Feeds the console
    report's per-component latency table."""
    out: dict[str, dict[str, Any]] = {}
    for span in spans:
        if span.kind not in ("process", "spout_emit"):
            continue
        entry = out.setdefault(
            span.component,
            {
                "hops": 0,
                "process_s": 0.0,
                "process_max_s": 0.0,
                "queue_wait_s": 0.0,
                "queue_wait_max_s": 0.0,
                "fan_out": 0,
            },
        )
        entry["hops"] += 1
        entry["process_s"] += span.duration
        entry["process_max_s"] = max(entry["process_max_s"], span.duration)
        entry["queue_wait_s"] += span.queue_wait
        entry["queue_wait_max_s"] = max(entry["queue_wait_max_s"], span.queue_wait)
        entry["fan_out"] += span.fan_out
    return out
