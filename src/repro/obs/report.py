"""Console rendering: per-component tables and ASCII trace trees.

The human endpoint of the obs plane (what Storm's UI and Heron's
tracker put behind HTTP): a throughput/latency/queue table per component,
fed by the metric registry, enriched with queue-wait/process-time
aggregates from traced spans — and span trees rendered as indented ASCII
so a single sampled tuple's life is readable end-to-end:

    spout:source  spout_emit  attempt 2  fan_out=1
    └─ bolt:flatmap0  0.01ms wait / 0.02ms proc  fan_out=3
       ├─ bolt:count1 ...
       └─ ...
"""

from __future__ import annotations

from repro.obs.health import HealthSnapshot
from repro.obs.tracing import SpanCollector, SpanNode, span_stats
from repro.platform.metrics import ExecutionMetrics


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def summary_lines(metrics: ExecutionMetrics) -> list[str]:
    """Headline run summary: throughput, tail latency, reliability."""
    summary = metrics.summary()
    return [
        f"throughput      {summary['throughput_tps']:>12,.1f} tuples/s",
        f"latency p50     {summary['latency_p50_ms']:>12.3f} ms",
        f"latency p99     {summary['latency_p99_ms']:>12.3f} ms",
        f"replays         {summary['replays']:>12d}",
        f"checkpoints     {summary['checkpoints']:>12d}",
        f"recoveries      {summary['recoveries']:>12d}",
    ]


def component_table(
    metrics: ExecutionMetrics, collector: SpanCollector | None = None
) -> str:
    """Per-component counters (+ span-derived timing when traced)."""
    stats = span_stats(collector.spans) if collector is not None else {}
    header = (
        f"{'component':<18} {'emitted':>9} {'processed':>9} {'acked':>7} "
        f"{'failed':>7} {'queue_hw':>8}"
    )
    if collector is not None:
        header += f" {'hops':>6} {'avg wait':>10} {'avg proc':>10}"
    lines = [header, "-" * len(header)]
    for name, entry in sorted(metrics.components.items()):
        counters = entry.as_dict()
        line = (
            f"{name:<18} {counters['emitted']:>9} {counters['processed']:>9} "
            f"{counters['acked']:>7} {counters['failed']:>7} "
            f"{counters['queue_high_water']:>8}"
        )
        if collector is not None:
            st = stats.get(name)
            if st and st["hops"]:
                line += (
                    f" {st['hops']:>6}"
                    f" {_ms(st['queue_wait_s'] / st['hops']):>10}"
                    f" {_ms(st['process_s'] / st['hops']):>10}"
                )
            else:
                line += f" {'-':>6} {'-':>10} {'-':>10}"
        lines.append(line)
    return "\n".join(lines)


def _node_label(node: SpanNode) -> str:
    span = node.span
    bits = [span.component, span.kind]
    if span.kind == "process":
        bits.append(f"{_ms(span.queue_wait)} wait / {_ms(span.duration)} proc")
    if span.fan_out:
        bits.append(f"fan_out={span.fan_out}")
    if span.task:
        bits.append(f"task={span.task}")
    return "  ".join(bits)


def render_trace_tree(collector: SpanCollector, trace_id: int) -> str:
    """The final-attempt span tree of *trace_id* as an indented ASCII tree."""
    root = collector.tree(trace_id)
    attempts = collector.attempts(trace_id)
    lines = [
        f"trace {trace_id:#018x}  attempt {root.span.attempt}/{attempts}  "
        f"({len(list(root.walk()))} spans)"
    ]
    lines.append(_node_label(root))

    def walk(node: SpanNode, prefix: str) -> None:
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            lines.append(f"{prefix}{'└─ ' if last else '├─ '}{_node_label(child)}")
            walk(child, prefix + ("   " if last else "│  "))

    walk(root, "")
    return "\n".join(lines)


def render_report(
    metrics: ExecutionMetrics,
    collector: SpanCollector | None = None,
    n_traces: int = 1,
) -> str:
    """The full console report: summary, component table, trace trees."""
    sections = [
        "== run summary ==",
        "\n".join(summary_lines(metrics)),
        "",
        "== components ==",
        component_table(metrics, collector),
    ]
    if collector is not None:
        trace_ids = collector.trace_ids()
        if trace_ids:
            sections += ["", f"== traces ({len(trace_ids)} sampled) =="]
            for trace_id in trace_ids[:n_traces]:
                sections.append(render_trace_tree(collector, trace_id))
                sections.append("")
        events = [e for e in collector.events]
        if events:
            sections += [
                "== lifecycle events ==",
                ", ".join(f"{e.kind}@{e.component}" for e in events[:20])
                + (" ..." if len(events) > 20 else ""),
            ]
    return "\n".join(sections).rstrip() + "\n"


def render_top(snapshot: HealthSnapshot) -> str:
    """One :class:`~repro.obs.health.HealthSnapshot` as a ``top``-style
    frame: headline line, per-worker table, per-operator table. The
    ``repro-obs top`` dashboard repaints this in place every interval."""
    head = (
        f"== cluster health  seq {snapshot.seq}  reason={snapshot.reason}  "
        f"unit={snapshot.watermark_unit} =="
    )
    lines = [
        head,
        f"source frontier {snapshot.source_frontier:,.0f}   "
        f"latency p50 {_ms(snapshot.latency_p50_s)} / "
        f"p99 {_ms(snapshot.latency_p99_s)}   "
        f"backpressure {snapshot.backpressure_waits}",
        "",
    ]
    worker_head = (
        f"{'worker':<7} {'alive':>5} {'inc':>4} {'seq':>6} {'age_s':>7} "
        f"{'flushes':>8} {'in_ring%':>9} {'out_ring%':>10} {'processed':>10}"
    )
    lines += [worker_head, "-" * len(worker_head)]
    for worker in snapshot.workers:
        age = "-" if worker.telemetry_age_s < 0 else f"{worker.telemetry_age_s:.2f}"
        lines.append(
            f"{worker.worker:<7} {('yes' if worker.alive else 'NO'):>5} "
            f"{worker.incarnation:>4} {worker.telemetry_seq:>6} {age:>7} "
            f"{worker.flushes:>8} {worker.ring_in_occupancy * 100:>8.1f}% "
            f"{worker.ring_out_occupancy * 100:>9.1f}% "
            f"{worker.processed_total:>10,}"
        )
    op_head = (
        f"{'operator':<18} {'kind':>6} {'watermark':>11} {'lag':>9} "
        f"{'processed':>10} {'emitted':>10} {'rate/s':>10}"
    )
    lines += ["", op_head, "-" * len(op_head)]
    for op in snapshot.operators:
        lines.append(
            f"{op.name:<18} {op.kind:>6} {op.watermark:>11,.0f} "
            f"{op.lag:>9,.0f} {op.processed:>10,} {op.emitted:>10,} "
            f"{op.processed_rate:>10,.1f}"
        )
    if snapshot.elastic:
        elastic = snapshot.elastic
        parallelism = ", ".join(
            f"{name}={p}"
            for name, p in sorted(elastic.get("parallelism", {}).items())
        )
        lines += [
            "",
            "== elastic ==",
            f"workers {int(elastic.get('workers', 0))}   "
            f"rescales {int(elastic.get('rescales', 0))}   "
            f"in flight {snapshot.in_flight:,}   "
            f"spout throttled {snapshot.spout_throttled:,}",
            f"parallelism: {parallelism or '-'}",
        ]
        last = elastic.get("last_rescale")
        if last:
            recovery = last.get("lag_recovery_s")
            lines.append(
                f"last rescale: {last.get('trigger', '?')} "
                f"{last.get('from_workers', '?')}→{last.get('to_workers', '?')} "
                f"({last.get('reason', '')}) in {last.get('total_s', 0.0):.3f}s"
                + (
                    f", lag recovered in {recovery:.2f}s"
                    if recovery is not None
                    else ""
                )
            )
        scaler = elastic.get("autoscaler")
        if scaler:
            decision = scaler.get("last_decision") or {}
            lines.append(
                f"autoscaler: tick {int(scaler.get('ticks', 0))}   "
                f"cooldown {int(scaler.get('cooldown_remaining', 0))}   "
                f"streaks up={int(scaler.get('pressure_streak', 0))}/"
                f"down={int(scaler.get('idle_streak', 0))}   "
                f"bounds [{int(scaler.get('min_workers', 0))}, "
                f"{int(scaler.get('max_workers', 0))}]   "
                f"last={decision.get('action', '-')}"
                + (
                    f" ({decision.get('reason', '')})"
                    if decision.get("reason")
                    else ""
                )
            )
    if snapshot.serving:
        serving = snapshot.serving
        hits = int(serving.get("cache_hits", 0))
        misses = int(serving.get("cache_misses", 0))
        lines += [
            "",
            "== serving ==",
            f"epoch {int(serving.get('epoch', 0))}   "
            f"snapshot age {serving.get('snapshot_age_s', 0.0):.3f}s   "
            f"requests {int(serving.get('requests', 0)):,}",
            f"cache {int(serving.get('cache_entries', 0)):,} entries   "
            f"hits {hits:,} / misses {misses:,}   "
            f"hit ratio {serving.get('cache_hit_ratio', 0.0) * 100:.1f}%",
        ]
    return "\n".join(lines) + "\n"
