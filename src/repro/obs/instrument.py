"""Opt-in synopsis instrumentation: per-sketch cost without editing 89 files.

:class:`InstrumentedSynopsis` wraps any library synopsis and publishes to
a :class:`~repro.obs.metrics.MetricRegistry`:

* ``repro_synopsis_calls_total{synopsis,op}`` — calls to ``update``,
  ``update_many``, ``merge`` and every query method (any other public
  method counts under ``op="query:<name>"``);
* ``repro_synopsis_items_total{synopsis}`` — items absorbed (1 per
  ``update``, batch length per ``update_many``);
* ``repro_synopsis_batch_size{synopsis}`` — histogram of ``update_many``
  batch sizes (is the vectorized path actually seeing batches?);
* ``repro_synopsis_memory_bytes{synopsis}`` — a callback gauge reading
  ``memory_footprint()`` live at collect time.

The wrapper is transparent: attributes and query methods delegate to the
wrapped synopsis, ``merge`` unwraps instrumented peers, and the wrapped
object stays reachable via ``.synopsis``. Construction goes through
``SynopsisBase.instrumented(...)`` or directly through this class.
"""

from __future__ import annotations

from typing import Any, Iterable, Sized

from repro.obs.metrics import MetricRegistry, get_default_registry


class InstrumentedSynopsis:
    """Counting/memory-gauging wrapper around one synopsis instance."""

    def __init__(
        self,
        synopsis: Any,
        registry: MetricRegistry | None = None,
        name: str | None = None,
    ):
        self.synopsis = synopsis
        self.registry = registry if registry is not None else get_default_registry()
        self.name = name or type(synopsis).__name__.lower()
        calls = self.registry.counter(
            "repro_synopsis_calls_total",
            "Synopsis protocol calls by operation.",
            labelnames=("synopsis", "op"),
        )
        self._calls = calls
        self._c_update = calls.labels(synopsis=self.name, op="update")
        self._c_update_many = calls.labels(synopsis=self.name, op="update_many")
        self._c_merge = calls.labels(synopsis=self.name, op="merge")
        self._items = self.registry.counter(
            "repro_synopsis_items_total",
            "Stream items absorbed by the synopsis.",
            labelnames=("synopsis",),
        ).labels(synopsis=self.name)
        self._batch_sizes = self.registry.histogram(
            "repro_synopsis_batch_size",
            "update_many batch-size distribution.",
            labelnames=("synopsis",),
        ).labels(synopsis=self.name)
        self.registry.gauge(
            "repro_synopsis_memory_bytes",
            "Live memory footprint of the synopsis.",
            labelnames=("synopsis",),
        ).labels(synopsis=self.name).set_function(
            lambda: float(self.memory_footprint())
        )

    # -- the counted protocol ----------------------------------------------

    def update(self, item: Any) -> None:
        """Absorb one item (counted)."""
        self._c_update.inc()
        self._items.inc()
        self.synopsis.update(item)

    def update_many(self, items: Iterable[Any]) -> None:
        """Absorb a batch (counted, with batch-size histogram)."""
        if not isinstance(items, Sized):
            items = list(items)
        self._c_update_many.inc()
        self._items.inc(len(items))
        self._batch_sizes.observe(len(items))
        self.synopsis.update_many(items)

    def merge(self, other: Any) -> None:
        """Merge (counted); instrumented peers are unwrapped first."""
        self._c_merge.inc()
        if isinstance(other, InstrumentedSynopsis):
            other = other.synopsis
        self.synopsis.merge(other)

    def memory_footprint(self) -> int:
        """Delegated footprint (falls back to ``size_bytes`` / deep sizeof)."""
        fn = getattr(self.synopsis, "memory_footprint", None)
        if fn is None:
            fn = getattr(self.synopsis, "size_bytes", None)
        if fn is None:  # non-SynopsisBase object: best-effort deep sizeof
            from repro.common.mergeable import _deep_sizeof

            return int(_deep_sizeof(self.synopsis, set()))
        return int(fn())

    # -- transparent delegation --------------------------------------------

    def __getattr__(self, attr: str) -> Any:
        # Only called when normal lookup fails: delegate to the synopsis,
        # counting public method calls as queries.
        value = getattr(self.synopsis, attr)
        if callable(value) and not attr.startswith("_"):
            counter = self._calls.labels(synopsis=self.name, op=f"query:{attr}")

            def counted(*args: Any, **kwargs: Any) -> Any:
                counter.inc()
                return value(*args, **kwargs)

            return counted
        return value

    def __getitem__(self, key: Any) -> Any:
        return self.synopsis[key]

    def __len__(self) -> int:
        return len(self.synopsis)

    def __repr__(self) -> str:
        return f"InstrumentedSynopsis({self.synopsis!r}, name={self.name!r})"

    def call_count(self, op: str) -> float:
        """Recorded call count for *op* (e.g. "update", "query:estimate")."""
        return self._calls.labels(synopsis=self.name, op=op).value
