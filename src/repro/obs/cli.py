"""``repro-obs`` / ``python -m repro.obs`` entry point.

Runs the demo topology with tracing on, prints the console report
(summary + per-component table + trace trees), and optionally exports
the run as JSON lines and/or Prometheus text — the end-to-end proof that
every layer of the obs plane works together. CI's ``obs-smoke`` job runs
exactly this with an injected crash and uploads the JSON-lines export.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.obs.demo import run_demo
from repro.obs.exporters import to_prometheus, write_jsonl
from repro.obs.report import render_report


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=(
            "Observe the demo topology: metrics, sampled traces, exporters."
        ),
    )
    parser.add_argument(
        "--records",
        type=int,
        default=2_000,
        help="source sentences to stream (default: %(default)s)",
    )
    parser.add_argument(
        "--sample-rate",
        type=float,
        default=0.1,
        help="traced fraction of spout messages (default: %(default)s)",
    )
    parser.add_argument(
        "--semantics",
        choices=("at_most_once", "at_least_once", "exactly_once"),
        default="at_least_once",
        help="delivery semantics (default: %(default)s)",
    )
    parser.add_argument(
        "--crash-after",
        type=int,
        default=None,
        help="inject a one-shot worker crash after N processed tuples",
    )
    parser.add_argument(
        "--drop-probability",
        type=float,
        default=0.0,
        help="probability a tuple is lost in transit (default: %(default)s)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=500,
        help="exactly-once checkpoint period in source tuples",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload/sampler seed (default: %(default)s)"
    )
    parser.add_argument(
        "--traces",
        type=int,
        default=1,
        help="trace trees to render in the report (default: %(default)s)",
    )
    parser.add_argument(
        "--export",
        metavar="PATH",
        default=None,
        help="write the JSON-lines event export (metrics + spans) here",
    )
    parser.add_argument(
        "--prom",
        metavar="PATH",
        default=None,
        help="write the Prometheus text exposition here",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the demo under observation; render and export."""
    args = build_parser().parse_args(argv)
    executor, obs = run_demo(
        n_records=args.records,
        sample_rate=args.sample_rate,
        semantics=args.semantics,
        seed=args.seed,
        crash_after=args.crash_after,
        drop_probability=args.drop_probability,
        checkpoint_interval=args.checkpoint_interval,
    )
    print(render_report(executor.metrics, obs.collector, n_traces=args.traces))
    if args.export:
        path = write_jsonl(args.export, obs.registry, obs.collector)
        n_lines = len(path.read_text(encoding="utf-8").splitlines())
        print(f"wrote {path} ({n_lines} event lines)")
    if args.prom:
        path = Path(args.prom)
        path.write_text(to_prometheus(obs.registry), encoding="utf-8")
        print(f"wrote {path} ({len(obs.registry.collect())} samples)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
