"""``repro-obs`` / ``python -m repro.obs`` entry point.

Runs the demo topology with tracing on, prints the console report
(summary + per-component table + trace trees), and optionally exports
the run as JSON lines and/or Prometheus text — the end-to-end proof that
every layer of the obs plane works together. CI's ``obs-smoke`` job runs
exactly this with an injected crash and uploads the JSON-lines export.

``repro-obs top`` is the live dashboard: it tails the health-log
JSON-lines stream a running :class:`~repro.cluster.coordinator.
ClusterExecutor` writes (``health_log=...``) and repaints a per-worker /
per-operator table in place every interval — Storm UI in a terminal.
``--demo`` spins up the demo cluster in the background to watch;
``--once`` renders the latest snapshot and exits (the CI artifact mode).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.obs.demo import run_demo
from repro.obs.exporters import to_prometheus, write_jsonl
from repro.obs.health import HealthSnapshot
from repro.obs.report import render_report, render_top

#: ANSI "clear screen, home cursor" — the repaint-in-place escape.
_CLEAR = "\x1b[2J\x1b[H"


def latest_snapshot(path: str | Path) -> HealthSnapshot | None:
    """The newest snapshot in a health-log JSON-lines file (None if none)."""
    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except OSError:
        return None
    for line in reversed(lines):
        if line.strip():
            return HealthSnapshot.from_dict(json.loads(line))
    return None


def build_top_parser() -> argparse.ArgumentParser:
    """The ``repro-obs top`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-obs top",
        description="Live per-worker/per-operator cluster health dashboard.",
    )
    parser.add_argument(
        "--snapshots",
        metavar="PATH",
        default=None,
        help="health-log JSON-lines file a ClusterExecutor is writing "
        "(health_log=PATH)",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run the demo cluster in the background and watch it live",
    )
    parser.add_argument(
        "--records",
        type=int,
        default=20_000,
        help="demo source sentences (default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="demo workers (default: %(default)s)"
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=0.25,
        help="refresh/telemetry interval seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="stop following after N seconds (default: until the source ends)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render the latest snapshot once and exit (CI artifact mode)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="demo seed (default: %(default)s)"
    )
    return parser


def _follow(path: Path, interval: float, duration: float | None, done) -> int:
    """Repaint the newest snapshot until *done* (or the deadline)."""
    deadline = time.monotonic() + duration if duration is not None else None
    rendered_seq = -1
    while True:
        snapshot = latest_snapshot(path)
        if snapshot is not None and snapshot.seq != rendered_seq:
            rendered_seq = snapshot.seq
            sys.stdout.write(_CLEAR + render_top(snapshot))
            sys.stdout.flush()
        if done() or (deadline is not None and time.monotonic() > deadline):
            return 0
        time.sleep(interval)


def top_main(argv: list[str] | None = None) -> int:
    """``repro-obs top``: follow a health log, or run-and-watch the demo."""
    args = build_top_parser().parse_args(argv)
    if args.demo:
        import tempfile
        import threading

        from repro.cluster.coordinator import ClusterExecutor
        from repro.obs.context import Observability
        from repro.obs.demo import build_demo_topology, demo_records

        log_path = Path(tempfile.mkstemp(suffix=".health.jsonl")[1])
        records = demo_records(args.records, args.seed)
        obs = Observability.create(sample_rate=0.05, seed=args.seed)
        executor = ClusterExecutor(
            build_demo_topology(records),
            n_workers=args.workers,
            semantics="at_least_once",
            obs=obs,
            telemetry_interval=args.interval,
            health_log=log_path,
        )

        def _run() -> None:
            with executor:
                executor.run()

        runner = threading.Thread(target=_run, daemon=True)
        runner.start()
        try:
            if args.once:
                while runner.is_alive() and latest_snapshot(log_path) is None:
                    time.sleep(args.interval)
                runner.join()
                snapshot = latest_snapshot(log_path)
                if snapshot is None:
                    print("no health snapshots produced", file=sys.stderr)
                    return 1
                print(render_top(snapshot), end="")
                return 0
            return _follow(
                log_path,
                args.interval,
                args.duration,
                done=lambda: not runner.is_alive(),
            )
        finally:
            runner.join(timeout=5.0)
            log_path.unlink(missing_ok=True)
    if args.snapshots is None:
        print("top: need --snapshots PATH or --demo", file=sys.stderr)
        return 2
    path = Path(args.snapshots)
    if args.once:
        snapshot = latest_snapshot(path)
        if snapshot is None:
            print(f"no snapshots in {path}", file=sys.stderr)
            return 1
        print(render_top(snapshot), end="")
        return 0
    return _follow(path, args.interval, args.duration, done=lambda: False)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=(
            "Observe the demo topology: metrics, sampled traces, exporters."
        ),
    )
    parser.add_argument(
        "--records",
        type=int,
        default=2_000,
        help="source sentences to stream (default: %(default)s)",
    )
    parser.add_argument(
        "--sample-rate",
        type=float,
        default=0.1,
        help="traced fraction of spout messages (default: %(default)s)",
    )
    parser.add_argument(
        "--semantics",
        choices=("at_most_once", "at_least_once", "exactly_once"),
        default="at_least_once",
        help="delivery semantics (default: %(default)s)",
    )
    parser.add_argument(
        "--crash-after",
        type=int,
        default=None,
        help="inject a one-shot worker crash after N processed tuples",
    )
    parser.add_argument(
        "--drop-probability",
        type=float,
        default=0.0,
        help="probability a tuple is lost in transit (default: %(default)s)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=500,
        help="exactly-once checkpoint period in source tuples",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload/sampler seed (default: %(default)s)"
    )
    parser.add_argument(
        "--traces",
        type=int,
        default=1,
        help="trace trees to render in the report (default: %(default)s)",
    )
    parser.add_argument(
        "--export",
        metavar="PATH",
        default=None,
        help="write the JSON-lines event export (metrics + spans) here",
    )
    parser.add_argument(
        "--prom",
        metavar="PATH",
        default=None,
        help="write the Prometheus text exposition here",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the demo under observation; render and export."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "top":
        return top_main(argv[1:])
    args = build_parser().parse_args(argv)
    executor, obs = run_demo(
        n_records=args.records,
        sample_rate=args.sample_rate,
        semantics=args.semantics,
        seed=args.seed,
        crash_after=args.crash_after,
        drop_probability=args.drop_probability,
        checkpoint_interval=args.checkpoint_interval,
    )
    print(render_report(executor.metrics, obs.collector, n_traces=args.traces))
    if args.export:
        path = write_jsonl(args.export, obs.registry, obs.collector)
        n_lines = len(path.read_text(encoding="utf-8").splitlines())
        print(f"wrote {path} ({n_lines} event lines)")
    if args.prom:
        path = Path(args.prom)
        path.write_text(to_prometheus(obs.registry), encoding="utf-8")
        print(f"wrote {path} ({len(obs.registry.collect())} samples)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
