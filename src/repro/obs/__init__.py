"""``repro.obs`` — the unified observability plane.

Metrics (labeled Counter/Gauge/Histogram in a :class:`MetricRegistry`),
sampled per-tuple tracing (:class:`TraceSampler`, :class:`SpanCollector`),
opt-in synopsis instrumentation (:class:`InstrumentedSynopsis`), and
exporters (JSON lines, Prometheus text, console report). Thread an
:class:`Observability` bundle through an executor or pipeline to light
it all up; by default everything is off and costs (almost) nothing.
"""

from repro.obs.context import DEFAULT_SAMPLE_RATE, Observability
from repro.obs.flight import FlightRecorder, read_flight
from repro.obs.health import (
    HEALTH_SCHEMA,
    HealthMonitor,
    HealthSnapshot,
    OperatorHealth,
    WorkerHealth,
)
from repro.obs.live import DEFAULT_FLUSH_INTERVAL, DeltaExporter, TelemetryAbsorber
from repro.obs.exporters import (
    metric_records,
    parse_prometheus,
    read_jsonl,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.obs.instrument import InstrumentedSynopsis
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
    Sample,
    get_default_registry,
    set_default_registry,
)
from repro.obs.tracing import (
    Span,
    SpanCollector,
    SpanNode,
    TraceSampler,
    critical_path,
    next_span_id,
    span_stats,
)

__all__ = [
    "DEFAULT_FLUSH_INTERVAL",
    "DEFAULT_SAMPLE_RATE",
    "HEALTH_SCHEMA",
    "NULL_REGISTRY",
    "Counter",
    "DeltaExporter",
    "FlightRecorder",
    "Gauge",
    "HealthMonitor",
    "HealthSnapshot",
    "Histogram",
    "InstrumentedSynopsis",
    "MetricRegistry",
    "NullRegistry",
    "Observability",
    "OperatorHealth",
    "Sample",
    "Span",
    "TelemetryAbsorber",
    "WorkerHealth",
    "SpanCollector",
    "SpanNode",
    "TraceSampler",
    "critical_path",
    "get_default_registry",
    "metric_records",
    "next_span_id",
    "parse_prometheus",
    "read_flight",
    "read_jsonl",
    "set_default_registry",
    "span_stats",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
]
