"""``repro.obs`` — the unified observability plane.

Metrics (labeled Counter/Gauge/Histogram in a :class:`MetricRegistry`),
sampled per-tuple tracing (:class:`TraceSampler`, :class:`SpanCollector`),
opt-in synopsis instrumentation (:class:`InstrumentedSynopsis`), and
exporters (JSON lines, Prometheus text, console report). Thread an
:class:`Observability` bundle through an executor or pipeline to light
it all up; by default everything is off and costs (almost) nothing.
"""

from repro.obs.context import DEFAULT_SAMPLE_RATE, Observability
from repro.obs.exporters import (
    metric_records,
    parse_prometheus,
    read_jsonl,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.obs.instrument import InstrumentedSynopsis
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
    Sample,
    get_default_registry,
    set_default_registry,
)
from repro.obs.tracing import (
    Span,
    SpanCollector,
    SpanNode,
    TraceSampler,
    critical_path,
    next_span_id,
    span_stats,
)

__all__ = [
    "DEFAULT_SAMPLE_RATE",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "InstrumentedSynopsis",
    "MetricRegistry",
    "NullRegistry",
    "Observability",
    "Sample",
    "Span",
    "SpanCollector",
    "SpanNode",
    "TraceSampler",
    "critical_path",
    "get_default_registry",
    "metric_records",
    "next_span_id",
    "parse_prometheus",
    "read_jsonl",
    "set_default_registry",
    "span_stats",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
]
