"""The flight recorder: a bounded post-mortem buffer for cluster runs.

A crash in a multi-process topology used to leave nothing but an exit
code. The flight recorder is the black box: a fixed-size ring of the most
recent :class:`~repro.obs.health.HealthSnapshot`\\ s, recent spans and
coordinator events, held in memory at O(capacity) cost and dumped to
JSON-lines only when something goes wrong (a worker crash, a fingerprint
mismatch) or on explicit request. Because workers stream telemetry every
flush interval (:mod:`repro.obs.live`), the last buffered snapshot is at
most one interval stale at the moment of the crash — the dump shows what
the cluster looked like *just before* it died, which is exactly what a
post-mortem needs.

Dump format: one JSON object per line. The first line is a header
(``{"type": "flight_header", ...}``); then every buffered health snapshot
(``type: "health"``, oldest first), then events, then spans. Consumers
can stream-filter on ``type`` without loading the whole file.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.obs.health import HealthSnapshot
from repro.obs.tracing import Span

#: Dump-format version (bumped on breaking layout changes).
FLIGHT_FORMAT = 1


class FlightRecorder:
    """Bounded in-memory ring of health snapshots, spans and events."""

    def __init__(self, capacity: int = 64, span_capacity: int = 256):
        self.capacity = capacity
        self.span_capacity = span_capacity
        self.snapshots: deque[HealthSnapshot] = deque(maxlen=capacity)
        self.spans: deque[Span] = deque(maxlen=span_capacity)
        self.events: deque[dict[str, Any]] = deque(maxlen=capacity)

    def record_snapshot(self, snapshot: HealthSnapshot) -> None:
        """Buffer one health snapshot (oldest falls off the ring)."""
        self.snapshots.append(snapshot)

    def record_span(self, span: Span) -> None:
        """Buffer one span (oldest falls off the ring)."""
        self.spans.append(span)

    def record_event(
        self, kind: str, detail: dict[str, Any] | None = None
    ) -> None:
        """Buffer one coordinator event (crash, mismatch, rollback, …)."""
        self.events.append(
            {"kind": kind, "clock": time.monotonic(), "detail": detail or {}}
        )

    @property
    def last_snapshot(self) -> HealthSnapshot | None:
        """The most recent buffered snapshot (None when empty)."""
        return self.snapshots[-1] if self.snapshots else None

    def to_records(self, reason: str = "dump") -> list[dict[str, Any]]:
        """The full buffer as JSON-ready records, header first."""
        records: list[dict[str, Any]] = [
            {
                "type": "flight_header",
                "format": FLIGHT_FORMAT,
                "reason": reason,
                "snapshots": len(self.snapshots),
                "events": len(self.events),
                "spans": len(self.spans),
            }
        ]
        for snapshot in self.snapshots:
            records.append({"type": "health", **snapshot.to_dict()})
        for event in self.events:
            records.append({"type": "event", **event})
        for span in self.spans:
            records.append({"type": "span", **asdict(span)})
        return records

    def dump(self, path: str | Path, reason: str = "dump") -> Path:
        """Write the buffer as JSON-lines to *path*; returns the path."""
        path = Path(path)
        lines = [
            json.dumps(record, sort_keys=True)
            for record in self.to_records(reason)
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path


def read_flight(path: str | Path) -> list[dict[str, Any]]:
    """Parse a flight dump back into records (tests, tooling)."""
    out = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            out.append(json.loads(line))
    return out
