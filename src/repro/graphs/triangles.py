"""Streaming triangle counting (TRIÈST-style reservoir estimator).

Triangle counts drive clustering-coefficient and spam-detection analyses on
web/social graphs. The estimator keeps a uniform edge reservoir of size
*m*; each arriving edge is checked against the reservoir for closing
wedges, and counted with the inverse sampling probability
``max(1, (t-1)(t-2) / (m(m-1)))`` — the TRIÈST-IMPR weighting, unbiased
for global triangle counts.
"""

from __future__ import annotations

from typing import Hashable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import make_rng


class TriangleCounter(SynopsisBase):
    """Reservoir-based global triangle count estimator."""

    def __init__(self, reservoir_size: int = 5_000, seed: int = 0):
        if reservoir_size < 3:
            raise ParameterError("reservoir_size must be at least 3")
        self.m = reservoir_size
        self.count = 0
        self._rng = make_rng(seed)
        self._edges: list[tuple[Hashable, Hashable]] = []
        self._adj: dict[Hashable, set[Hashable]] = {}
        self._estimate = 0.0

    def _weight(self) -> float:
        t = self.count
        if t <= self.m:
            return 1.0
        return max(1.0, (t - 1) * (t - 2) / (self.m * (self.m - 1)))

    def update(self, item: tuple[Hashable, Hashable]) -> None:
        u, v = item
        if u == v:
            return
        # TRIÈST analyses simple-graph streams; drop duplicates we can see
        # (those currently resident in the reservoir).
        if v in self._adj.get(u, ()):
            return
        self.count += 1
        # Count wedges this edge closes inside the reservoir (IMPR: count
        # before sampling, with the current inverse probability weight).
        common = self._adj.get(u, set()) & self._adj.get(v, set())
        self._estimate += len(common) * self._weight()
        # Reservoir maintenance.
        if len(self._edges) < self.m:
            self._insert_edge(u, v)
        elif self._rng.random() < self.m / self.count:
            self._remove_edge(*self._edges[self._rng.randrange(self.m)])
            self._insert_edge(u, v)

    def _insert_edge(self, u: Hashable, v: Hashable) -> None:
        self._edges.append((u, v))
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    def _remove_edge(self, u: Hashable, v: Hashable) -> None:
        self._edges.remove((u, v))
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def estimate(self) -> float:
        """Estimated number of triangles in the streamed graph."""
        return self._estimate

    @property
    def reservoir_edges(self) -> int:
        """Edges currently held (bounded by reservoir_size)."""
        return len(self._edges)

    def _merge_key(self) -> tuple:
        return (self.m,)

    def _merge_into(self, other: "TriangleCounter") -> None:
        raise NotImplementedError(
            "triangle reservoirs are stream-position-bound; count per "
            "partition only if partitions are vertex-disjoint"
        )


def count_triangles_exact(edges: list[tuple[Hashable, Hashable]]) -> int:
    """Exact triangle count of an edge list (baseline for the estimator)."""
    adj: dict[Hashable, set[Hashable]] = {}
    for u, v in edges:
        if u == v:
            continue
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    total = 0
    for u, v in {tuple(sorted((a, b), key=repr)) for a, b in edges if a != b}:
        total += len(adj[u] & adj[v])
    return total // 3
