"""Random walks and Monte-Carlo PageRank over streamed graphs.

Table 1's graph row lists random walks among the semi-streaming
primitives ([Sarma et al.] estimate PageRank by running short random
walks). This module ingests an edge stream into an adjacency structure
and estimates PageRank as the visit distribution of walks with restart —
R walks of geometric length per node approximate PageRank within
O(sqrt(log n / R)) [Avrachenkov et al.].
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import make_rng


class StreamingRandomWalker(SynopsisBase):
    """Adjacency accumulator with random-walk queries."""

    def __init__(self, seed: int = 0):
        self.count = 0
        self._rng = make_rng(seed)
        self._adj: dict[Hashable, list[Hashable]] = defaultdict(list)

    def update(self, item: tuple[Hashable, Hashable]) -> None:
        u, v = item
        if u == v:
            return
        self.count += 1
        self._adj[u].append(v)
        self._adj[v].append(u)

    @property
    def n_vertices(self) -> int:
        return len(self._adj)

    def walk(self, start: Hashable, length: int) -> list[Hashable]:
        """One simple random walk of *length* steps from *start*."""
        if start not in self._adj:
            raise ParameterError(f"unknown vertex {start!r}")
        if length < 0:
            raise ParameterError("length must be non-negative")
        path = [start]
        node = start
        for __ in range(length):
            nbrs = self._adj[node]
            if not nbrs:
                break
            node = nbrs[self._rng.randrange(len(nbrs))]
            path.append(node)
        return path

    def pagerank(
        self, walks_per_node: int = 10, damping: float = 0.85
    ) -> dict[Hashable, float]:
        """Monte-Carlo PageRank: visit frequencies of restart walks.

        Runs ``walks_per_node`` walks from every vertex; each walk
        terminates with probability ``1 - damping`` per step. The visit
        distribution converges to PageRank as walks increase.
        """
        if walks_per_node <= 0:
            raise ParameterError("walks_per_node must be positive")
        if not 0 < damping < 1:
            raise ParameterError("damping must lie in (0, 1)")
        visits: dict[Hashable, int] = defaultdict(int)
        total = 0
        for start in self._adj:
            for __ in range(walks_per_node):
                node = start
                visits[node] += 1
                total += 1
                while self._rng.random() < damping:
                    nbrs = self._adj[node]
                    if not nbrs:
                        break
                    node = nbrs[self._rng.randrange(len(nbrs))]
                    visits[node] += 1
                    total += 1
        return {node: count / total for node, count in visits.items()}

    def hitting_time_estimate(
        self, source: Hashable, target: Hashable, max_steps: int = 1_000, trials: int = 50
    ) -> float:
        """Mean steps for a walk from *source* to first reach *target*
        (``inf`` if never reached within *max_steps* in any trial)."""
        if source not in self._adj or target not in self._adj:
            raise ParameterError("both endpoints must be known vertices")
        times = []
        for __ in range(trials):
            node = source
            for step in range(1, max_steps + 1):
                nbrs = self._adj[node]
                if not nbrs:
                    break
                node = nbrs[self._rng.randrange(len(nbrs))]
                if node == target:
                    times.append(step)
                    break
        if not times:
            return float("inf")
        return sum(times) / len(times)

    def _merge_key(self) -> tuple:
        return ()

    def _merge_into(self, other: "StreamingRandomWalker") -> None:
        for u, nbrs in other._adj.items():
            self._adj[u].extend(nbrs)
        self.count += other.count
