"""Semi-streaming matching and vertex cover.

One greedy pass over the edge stream builds a *maximal* matching: a
2-approximation to maximum matching, and its endpoint set is a
2-approximate vertex cover — the standard semi-streaming results behind
Table 1's matching/vertex-cover citations [Feigenbaum et al. 2005;
Chitnis et al. 2015].
"""

from __future__ import annotations

from typing import Hashable

from repro.common.mergeable import SynopsisBase


class GreedyMatching(SynopsisBase):
    """Maximal matching over an edge stream (2-approx maximum matching)."""

    def __init__(self):
        self.count = 0
        self._matched: set[Hashable] = set()
        self._edges: list[tuple[Hashable, Hashable]] = []

    def update(self, item: tuple[Hashable, Hashable]) -> None:
        u, v = item
        self.count += 1
        if u != v and u not in self._matched and v not in self._matched:
            self._matched.add(u)
            self._matched.add(v)
            self._edges.append((u, v))

    def matching(self) -> list[tuple[Hashable, Hashable]]:
        """The matched edge set."""
        return list(self._edges)

    def matching_size(self) -> int:
        """Number of matched edges (>= max matching / 2)."""
        return len(self._edges)

    def vertex_cover(self) -> set[Hashable]:
        """Endpoints of the matching: a 2-approximate vertex cover."""
        return set(self._matched)

    def is_covered(self, edge: tuple[Hashable, Hashable]) -> bool:
        """Whether *edge* is covered by the current vertex cover."""
        u, v = edge
        return u in self._matched or v in self._matched

    def _merge_key(self) -> tuple:
        return ()

    def _merge_into(self, other: "GreedyMatching") -> None:
        """Feed the other side's matched edges through the greedy rule."""
        for edge in other._edges:
            self.update(edge)
        self.count += other.count - len(other._edges)


class WeightedGreedyMatching(SynopsisBase):
    """One-pass weighted matching with charging (McGregor-style).

    A new edge evicts conflicting matched edges only if its weight exceeds
    ``(1 + gamma)`` times their combined weight, giving a constant-factor
    approximation to maximum weight matching in one pass.
    """

    def __init__(self, gamma: float = 0.1):
        if gamma <= 0:
            from repro.common.exceptions import ParameterError

            raise ParameterError("gamma must be positive")
        self.gamma = gamma
        self.count = 0
        self._match: dict[Hashable, tuple[Hashable, float]] = {}

    def update(self, item: tuple[Hashable, Hashable, float]) -> None:
        u, v, w = item
        self.count += 1
        if u == v:
            return
        conflict_weight = 0.0
        for end in (u, v):
            if end in self._match:
                conflict_weight += self._match[end][1]
        if w > (1.0 + self.gamma) * conflict_weight:
            for end in (u, v):
                if end in self._match:
                    partner, __ = self._match.pop(end)
                    self._match.pop(partner, None)
            self._match[u] = (v, w)
            self._match[v] = (u, w)

    def matching(self) -> list[tuple[Hashable, Hashable, float]]:
        """Current matched edges with weights."""
        seen = set()
        out = []
        for u, (v, w) in self._match.items():
            key = frozenset((u, v))
            if key not in seen:
                seen.add(key)
                out.append((u, v, w))
        return out

    def total_weight(self) -> float:
        """Total weight of the current matching."""
        return sum(w for __, __, w in self.matching())

    def _merge_key(self) -> tuple:
        return (self.gamma,)

    def _merge_into(self, other: "WeightedGreedyMatching") -> None:
        for edge in other.matching():
            self.update(edge)
        self.count += other.count - len(other.matching())
