"""Bounded-length path queries on dynamic graphs.

Table 1 row "Path Analysis": "determine whether there exists a path of
length <= l between two nodes in a dynamic graph" (application: web graph
analysis). :class:`DynamicGraph` supports edge insertions *and* deletions
with exact bidirectional-BFS queries; :class:`ApproxPathOracle` answers
from a t-spanner, trading exactness for sublinear edge retention.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.graphs.spanner import StreamingSpanner


class DynamicGraph(SynopsisBase):
    """Adjacency-set dynamic graph with bounded-depth path queries."""

    def __init__(self):
        self.count = 0
        self._adj: dict[Hashable, set[Hashable]] = {}

    def update(self, item: tuple[Hashable, Hashable]) -> None:
        """Insert an edge (stream-style alias for :meth:`add_edge`)."""
        self.add_edge(*item)

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Insert the undirected edge (u, v)."""
        if u == v:
            raise ParameterError("self-loops are not allowed")
        self.count += 1
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Delete the undirected edge (u, v)."""
        if v not in self._adj.get(u, set()):
            raise ParameterError(f"edge {(u, v)!r} is not present")
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def has_path_within(self, u: Hashable, v: Hashable, limit: int) -> bool:
        """Whether a path of length <= *limit* connects *u* and *v*.

        Bidirectional BFS: explores O(branching^(limit/2)) per side instead
        of O(branching^limit).
        """
        if limit < 0:
            raise ParameterError("limit must be non-negative")
        if u == v:
            return True
        if u not in self._adj or v not in self._adj:
            return False
        dist_u = {u: 0}
        dist_v = {v: 0}
        frontier_u = deque([u])
        frontier_v = deque([v])
        budget_u = limit // 2
        budget_v = limit - budget_u
        for frontier, dist, other, budget in (
            (frontier_u, dist_u, dist_v, budget_u),
            (frontier_v, dist_v, dist_u, budget_v),
        ):
            while frontier:
                node = frontier.popleft()
                if dist[node] == budget:
                    continue
                for nbr in self._adj.get(node, ()):
                    if nbr not in dist:
                        dist[nbr] = dist[node] + 1
                        frontier.append(nbr)
        best = float("inf")
        for node, du in dist_u.items():
            dv = dist_v.get(node)
            if dv is not None:
                best = min(best, du + dv)
        return best <= limit

    def distance(self, u: Hashable, v: Hashable, max_depth: int = 1 << 30) -> float:
        """Exact BFS distance (inf if disconnected)."""
        if u == v:
            return 0.0
        if u not in self._adj or v not in self._adj:
            return float("inf")
        dist = {u: 0}
        frontier = deque([u])
        while frontier:
            node = frontier.popleft()
            if dist[node] >= max_depth:
                continue
            for nbr in self._adj.get(node, ()):
                if nbr == v:
                    return dist[node] + 1
                if nbr not in dist:
                    dist[nbr] = dist[node] + 1
                    frontier.append(nbr)
        return float("inf")

    @property
    def n_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    @property
    def n_vertices(self) -> int:
        return len(self._adj)

    def _merge_key(self) -> tuple:
        return ()

    def _merge_into(self, other: "DynamicGraph") -> None:
        for u, nbrs in other._adj.items():
            for v in nbrs:
                self._adj.setdefault(u, set()).add(v)
                self._adj.setdefault(v, set()).add(u)
        self.count += other.count


class ApproxPathOracle(SynopsisBase):
    """Space-bounded path oracle backed by a streaming t-spanner.

    ``has_path_within(u, v, l)`` never returns a false positive for
    ``l' = l`` on the spanner; a true path of length l in the full graph is
    reported when queried with slack ``t * l`` (the spanner stretch).
    """

    def __init__(self, t: int = 3):
        self.count = 0
        self._spanner = StreamingSpanner(t=t)

    @property
    def stretch(self) -> int:
        return self._spanner.t

    def update(self, item: tuple[Hashable, Hashable]) -> None:
        self.count += 1
        self._spanner.update(item)

    def has_path_within(self, u: Hashable, v: Hashable, limit: int) -> bool:
        """Path test on the spanner; apply stretch slack for full-graph
        guarantees (see class docstring)."""
        return self._spanner.spanner_distance(u, v, max_depth=limit) <= limit

    @property
    def n_edges(self) -> int:
        """Edges retained (sublinear in the stream for dense graphs)."""
        return self._spanner.n_edges

    def _merge_key(self) -> tuple:
        return (self._spanner.t,)

    def _merge_into(self, other: "ApproxPathOracle") -> None:
        self._spanner.merge(other._spanner)
        self.count += other.count
