"""Semi-streaming graph algorithms.

Table 1 rows "Graph analysis" (matching, vertex cover, spanners,
sparsification, min-cut) and "Path Analysis" (bounded-length path queries
on dynamic graphs).
"""

from repro.graphs.connectivity import StreamingConnectivity, UnionFind
from repro.graphs.matching import GreedyMatching, WeightedGreedyMatching
from repro.graphs.path import ApproxPathOracle, DynamicGraph
from repro.graphs.random_walk import StreamingRandomWalker
from repro.graphs.sparsifier import EdgeSamplingSparsifier
from repro.graphs.spanner import StreamingSpanner
from repro.graphs.triangles import TriangleCounter, count_triangles_exact

__all__ = [
    "ApproxPathOracle",
    "DynamicGraph",
    "EdgeSamplingSparsifier",
    "GreedyMatching",
    "StreamingConnectivity",
    "StreamingRandomWalker",
    "StreamingSpanner",
    "TriangleCounter",
    "UnionFind",
    "WeightedGreedyMatching",
    "count_triangles_exact",
]
