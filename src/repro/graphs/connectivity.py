"""Streaming connectivity via union-find.

Insert-only edge streams admit exact connectivity in O(V) memory with a
disjoint-set forest — the entry point of the semi-streaming model
[Feigenbaum et al. 2005] where O(n polylog n) memory is allowed while edges
stream by.
"""

from __future__ import annotations

from typing import Hashable

from repro.common.mergeable import SynopsisBase


class UnionFind:
    """Disjoint-set forest with union by rank and path compression."""

    def __init__(self):
        self._parent: dict[Hashable, Hashable] = {}
        self._rank: dict[Hashable, int] = {}
        self.n_components = 0

    def add(self, x: Hashable) -> None:
        """Register *x* as a singleton if unseen."""
        if x not in self._parent:
            self._parent[x] = x
            self._rank[x] = 0
            self.n_components += 1

    def find(self, x: Hashable) -> Hashable:
        """Root of *x*'s component (registers x if unseen)."""
        self.add(x)
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Join the components of *a* and *b*; True if they were separate."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self.n_components -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether *a* and *b* are in the same component."""
        return self.find(a) == self.find(b)

    def __len__(self) -> int:
        return len(self._parent)


class StreamingConnectivity(SynopsisBase):
    """Exact connectivity over an insert-only edge stream."""

    def __init__(self):
        self.count = 0
        self._uf = UnionFind()
        self._spanning_edges: list[tuple[Hashable, Hashable]] = []

    def update(self, item: tuple[Hashable, Hashable]) -> None:
        u, v = item
        self.count += 1
        if self._uf.union(u, v):
            self._spanning_edges.append((u, v))

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether a path exists between *a* and *b*."""
        return self._uf.connected(a, b)

    @property
    def n_components(self) -> int:
        """Number of connected components among seen vertices."""
        return self._uf.n_components

    @property
    def n_vertices(self) -> int:
        return len(self._uf)

    def spanning_forest(self) -> list[tuple[Hashable, Hashable]]:
        """Edges of a spanning forest (the semi-streaming certificate)."""
        return list(self._spanning_edges)

    def _merge_key(self) -> tuple:
        return ()

    def _merge_into(self, other: "StreamingConnectivity") -> None:
        """Union the spanning forests (a valid connectivity certificate)."""
        for u, v in other._spanning_edges:
            self.update((u, v))
        self.count += other.count - len(other._spanning_edges)
