"""Streaming graph spanners.

A *t-spanner* preserves all shortest-path distances up to factor *t* while
keeping far fewer edges. The classic one-pass construction [Feigenbaum et
al.; Ahn–Guha–McGregor survey]: admit an edge only if its endpoints are
currently at spanner-distance > t; otherwise the existing spanner already
t-approximates it. Distance checks are bounded-depth BFS over the (small)
spanner, so the pass stays cheap.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class StreamingSpanner(SynopsisBase):
    """One-pass t-spanner over an insert-only edge stream."""

    def __init__(self, t: int = 3):
        if t < 1:
            raise ParameterError("stretch t must be >= 1")
        self.t = t
        self.count = 0
        self._adj: dict[Hashable, set[Hashable]] = {}

    def update(self, item: tuple[Hashable, Hashable]) -> None:
        u, v = item
        self.count += 1
        if u == v:
            return
        if self._distance_at_most(u, v, self.t):
            return
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    def _distance_at_most(self, src: Hashable, dst: Hashable, limit: int) -> bool:
        if src not in self._adj or dst not in self._adj:
            return False
        if src == dst:
            return True
        visited = {src}
        frontier = deque([(src, 0)])
        while frontier:
            node, depth = frontier.popleft()
            if depth == limit:
                continue
            for nbr in self._adj.get(node, ()):
                if nbr == dst:
                    return True
                if nbr not in visited:
                    visited.add(nbr)
                    frontier.append((nbr, depth + 1))
        return False

    def spanner_distance(self, u: Hashable, v: Hashable, max_depth: int = 64) -> float:
        """BFS distance between *u* and *v* inside the spanner (inf if
        disconnected within *max_depth*)."""
        if u == v:
            return 0.0
        if u not in self._adj or v not in self._adj:
            return float("inf")
        visited = {u}
        frontier = deque([(u, 0)])
        while frontier:
            node, depth = frontier.popleft()
            if depth >= max_depth:
                continue
            for nbr in self._adj.get(node, ()):
                if nbr == v:
                    return depth + 1
                if nbr not in visited:
                    visited.add(nbr)
                    frontier.append((nbr, depth + 1))
        return float("inf")

    @property
    def n_edges(self) -> int:
        """Edges retained by the spanner."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    @property
    def n_vertices(self) -> int:
        return len(self._adj)

    def edges(self) -> list[tuple[Hashable, Hashable]]:
        """The spanner's edge list."""
        out = []
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if repr(u) <= repr(v):
                    out.append((u, v))
        return out

    def _merge_key(self) -> tuple:
        return (self.t,)

    def _merge_into(self, other: "StreamingSpanner") -> None:
        for u, v in other.edges():
            self.update((u, v))
        self.count += other.count - other.n_edges
