"""Graph sparsification by uniform edge sampling.

Cut sparsifiers keep each edge with probability *p* and weight ``1/p``,
preserving every cut to within ``1 ± epsilon`` w.h.p. for
``p = Theta(log n / (epsilon^2 * min_cut))`` [Karger; survey context:
"sparsification — a technique for speeding up dynamic graph algorithms",
Eppstein et al., and graph sketches, Ahn–Guha–McGregor]. Also estimates
the min-cut by running exact min-cut (via networkx) on the sparsifier —
the paper's "computing min-cut" application.
"""

from __future__ import annotations

from typing import Hashable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import make_rng


class EdgeSamplingSparsifier(SynopsisBase):
    """Uniform-sampling cut sparsifier with sampling probability *p*."""

    def __init__(self, p: float = 0.1, seed: int = 0):
        if not 0 < p <= 1:
            raise ParameterError("sampling probability p must lie in (0, 1]")
        self.p = p
        self.count = 0
        self._rng = make_rng(seed)
        self._edges: list[tuple[Hashable, Hashable]] = []
        self._vertices: set[Hashable] = set()

    def update(self, item: tuple[Hashable, Hashable]) -> None:
        u, v = item
        self.count += 1
        self._vertices.add(u)
        self._vertices.add(v)
        if self._rng.random() < self.p:
            self._edges.append((u, v))

    @property
    def edge_weight(self) -> float:
        """Weight carried by each retained edge (1/p)."""
        return 1.0 / self.p

    @property
    def n_edges(self) -> int:
        """Retained edges (≈ p * stream length)."""
        return len(self._edges)

    def estimate_cut(self, side: set[Hashable]) -> float:
        """Estimated weight of the cut separating *side* from the rest."""
        crossing = sum(1 for u, v in self._edges if (u in side) != (v in side))
        return crossing * self.edge_weight

    def estimate_total_edges(self) -> float:
        """Estimated number of edges in the full graph."""
        return len(self._edges) * self.edge_weight

    def estimate_min_cut(self) -> float:
        """Min-cut of the sparsifier scaled by 1/p (Karger's estimate)."""
        import networkx as nx

        if not self._edges:
            return 0.0
        g = nx.MultiGraph()
        g.add_nodes_from(self._vertices)
        g.add_edges_from(self._edges)
        if not nx.is_connected(nx.Graph(g)):
            return 0.0
        cut_value = nx.stoer_wagner(nx.Graph(_collapse_multi(g)))[0]
        return cut_value

    def _merge_key(self) -> tuple:
        return (self.p,)

    def _merge_into(self, other: "EdgeSamplingSparsifier") -> None:
        self._edges.extend(other._edges)
        self._vertices |= other._vertices
        self.count += other.count


def _collapse_multi(g):
    """Collapse a multigraph to a weighted simple graph."""
    import networkx as nx

    simple = nx.Graph()
    simple.add_nodes_from(g.nodes)
    for u, v in g.edges():
        if simple.has_edge(u, v):
            simple[u][v]["weight"] += 1
        else:
            simple.add_edge(u, v, weight=1)
    return simple
