"""General frequency-moment estimation F_k via AMS sampling.

The second estimator from [Alon, Matias & Szegedy 1996]: pick a uniformly
random stream position (reservoir-style), count the occurrences ``r`` of the
sampled item from that position onward, and output
``n * (r^k - (r-1)^k)`` — an unbiased estimate of ``F_k`` for any k >= 1.
Median-of-means over independent estimators concentrates it.
"""

from __future__ import annotations

import statistics
from typing import Any, Hashable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import derive_seed, make_rng


class _SamplingEstimator:
    __slots__ = ("rng", "item", "tail_count")

    def __init__(self, rng):
        self.rng = rng
        self.item: Hashable = None
        self.tail_count = 0

    def observe(self, index: int, item: Hashable) -> None:
        # Reservoir of size 1 over positions: position i replaces with prob 1/(i+1).
        if self.rng.randrange(index + 1) == 0:
            self.item = item
            self.tail_count = 1
        elif item == self.item:
            self.tail_count += 1


class FkEstimator(SynopsisBase):
    """Estimator for the k-th frequency moment ``F_k = sum_i f_i^k``."""

    def __init__(self, k: int, groups: int = 7, per_group: int = 40, seed: int = 0):
        if k < 1:
            raise ParameterError("moment order k must be >= 1")
        if groups <= 0 or per_group <= 0:
            raise ParameterError("groups and per_group must be positive")
        self.k = k
        self.groups = groups
        self.per_group = per_group
        self.count = 0
        self._estimators = [
            _SamplingEstimator(make_rng(derive_seed(seed, i)))
            for i in range(groups * per_group)
        ]

    def update(self, item: Any) -> None:
        index = self.count
        self.count += 1
        for est in self._estimators:
            est.observe(index, item)

    def estimate(self) -> float:
        """Median-of-means estimate of F_k over the stream so far."""
        if self.count == 0:
            return 0.0
        n, k = self.count, self.k
        values = [
            n * (e.tail_count**k - (e.tail_count - 1) ** k) for e in self._estimators
        ]
        means = [
            sum(values[g * self.per_group : (g + 1) * self.per_group]) / self.per_group
            for g in range(self.groups)
        ]
        return float(statistics.median(means))

    def _merge_key(self) -> tuple:
        return (self.k, self.groups, self.per_group)

    def _merge_into(self, other: "FkEstimator") -> None:
        raise NotImplementedError(
            "position-sampling F_k estimators are not mergeable; use AMSSketch "
            "(k=2) or per-partition estimation"
        )
