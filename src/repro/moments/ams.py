"""AMS "tug-of-war" sketch for the second frequency moment F2.

[Alon, Matias & Szegedy, STOC 1996] — the paper that introduced randomized
sketching (Section 2 credits it by name). Each estimator keeps a single
counter ``Z = sum_i f_i * s(i)`` with 4-wise-ish random signs ``s``; ``Z^2``
is an unbiased estimate of ``F2 = sum f_i^2``. Averaging groups of
estimators and taking the median of group means gives an
(epsilon, delta)-approximation.
"""

from __future__ import annotations

import statistics
from typing import Any

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily
from repro.common.mergeable import SynopsisBase


class AMSSketch(SynopsisBase):
    """Tug-of-war F2 sketch: *groups* x *per_group* sign counters."""

    def __init__(self, groups: int = 5, per_group: int = 16, seed: int = 0):
        if groups <= 0:
            raise ParameterError("groups must be positive")
        if per_group <= 0:
            raise ParameterError("per_group must be positive")
        self.groups = groups
        self.per_group = per_group
        self.family = HashFamily(seed)
        self.count = 0
        self._z = np.zeros((groups, per_group), dtype=np.float64)

    def update(self, item: Any) -> None:
        self.update_weighted(item, 1.0)

    def update_weighted(self, item: Any, weight: float) -> None:
        """Add *weight* to item's frequency (turnstile model allowed)."""
        if weight == 0:
            raise ParameterError("weight must be non-zero")
        self.count += abs(weight)
        for g in range(self.groups):
            for j in range(self.per_group):
                h = self.family.hash(item, g * self.per_group + j)
                sign = 1.0 if h & 1 else -1.0
                self._z[g, j] += sign * weight

    def estimate_f2(self) -> float:
        """Median-of-means estimate of ``F2 = sum_i f_i^2``."""
        means = (self._z**2).mean(axis=1)
        return float(statistics.median(means.tolist()))

    def surprise_number(self) -> float:
        """Alias for :meth:`estimate_f2` (Good's 'surprise number')."""
        return self.estimate_f2()

    def _merge_key(self) -> tuple:
        return (self.groups, self.per_group, self.family.seed)

    def _merge_into(self, other: "AMSSketch") -> None:
        """Counters are linear in the stream, so merging is addition."""
        self._z += other._z
        self.count += other.count

    def size_bytes(self) -> int:
        return int(self._z.nbytes)
