"""Frequency-moment estimation (F2 tug-of-war, general F_k sampling).

Table 1 row "Estimating Moments" — estimate the distribution of
frequencies of different elements (application: databases, e.g. join-size
and self-join-size estimation from F2).
"""

from repro.moments.ams import AMSSketch
from repro.moments.fk import FkEstimator

__all__ = ["AMSSketch", "FkEstimator"]
