"""The P² algorithm [Jain & Chlamtac, CACM 1985].

Tracks a single quantile with exactly five markers and no stored samples,
adjusting marker heights by piecewise-parabolic interpolation. Deterministic
and O(1) per update — the classic "calculate percentiles without storing
observations" method, included as the deterministic counterpart to frugal
streaming on the tiny-memory end of the spectrum.
"""

from __future__ import annotations

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class P2Quantile(SynopsisBase):
    """Five-marker P² estimator for quantile *q*."""

    def __init__(self, q: float = 0.5):
        if not 0 < q < 1:
            raise ParameterError("q must lie in (0, 1)")
        self.q = q
        self.count = 0
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def update(self, item: float) -> None:
        value = float(item)
        self.count += 1
        if len(self._initial) < 5:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0,
                    1.0 + 2.0 * self.q,
                    1.0 + 4.0 * self.q,
                    3.0 + 2.0 * self.q,
                    5.0,
                ]
            return

        h = self._heights
        # Find the cell k containing the observation; clamp extremes.
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while value >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        # Adjust interior markers.
        for i in range(1, 4):
            d = self._desired[i] - self._positions[i]
            n_i, n_prev, n_next = self._positions[i], self._positions[i - 1], self._positions[i + 1]
            if (d >= 1.0 and n_next - n_i > 1.0) or (d <= -1.0 and n_prev - n_i < -1.0):
                sign = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, sign)
                self._positions[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, sign: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(sign)
        return h[i] + sign * (h[j] - h[i]) / (n[j] - n[i])

    def quantile(self) -> float:
        """Current estimate of the tracked quantile."""
        if self.count == 0:
            raise ParameterError("quantile of an empty estimator")
        if len(self._initial) < 5:
            ordered = sorted(self._initial)
            index = min(len(ordered) - 1, int(self.q * len(ordered)))
            return ordered[index]
        return self._heights[2]

    def _merge_key(self) -> tuple:
        return (self.q,)

    def _merge_into(self, other: "P2Quantile") -> None:
        raise NotImplementedError(
            "P2 markers are not mergeable; use GKQuantiles or TDigest for "
            "scale-out quantile estimation"
        )
