"""Greenwald–Khanna epsilon-approximate quantile summary [SIGMOD 2001].

Maintains tuples ``(value, g, delta)`` where ``g`` is the gap in min-rank to
the previous tuple and ``delta`` bounds the rank uncertainty. Any rank query
is answered within ``epsilon * n`` using O((1/epsilon) log(epsilon n))
tuples — the deterministic classic the paper cites for quantile estimation.
"""

from __future__ import annotations

import bisect
import math

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class _Tuple:
    __slots__ = ("value", "g", "delta")

    def __init__(self, value: float, g: int, delta: int):
        self.value = value
        self.g = g
        self.delta = delta


class GKQuantiles(SynopsisBase):
    """epsilon-approximate quantile summary over a numeric stream."""

    def __init__(self, epsilon: float = 0.01):
        if not 0 < epsilon < 0.5:
            raise ParameterError("epsilon must lie in (0, 0.5)")
        self.epsilon = epsilon
        self.count = 0
        self._tuples: list[_Tuple] = []
        self._keys: list[float] = []  # values, kept parallel for bisect
        self._compress_every = max(1, int(1.0 / (2.0 * epsilon)))

    def update(self, item: float) -> None:
        value = float(item)
        self.count += 1
        pos = bisect.bisect_left(self._keys, value)
        if pos == 0 or pos == len(self._tuples):
            entry = _Tuple(value, 1, 0)  # new min or max is exact
        else:
            cap = max(0, int(math.floor(2.0 * self.epsilon * self.count)) - 1)
            entry = _Tuple(value, 1, cap)
        self._tuples.insert(pos, entry)
        self._keys.insert(pos, value)
        if self.count % self._compress_every == 0:
            self._compress()

    def _compress(self) -> None:
        if len(self._tuples) < 3:
            return
        limit = 2.0 * self.epsilon * self.count
        out = [self._tuples[0]]
        for entry in self._tuples[1:-1]:
            head = out[-1]
            # Merge the *previous* kept tuple forward into this one when the
            # combined uncertainty stays under the budget and the head is not
            # the exact minimum.
            if head is not self._tuples[0] and head.g + entry.g + entry.delta < limit:
                entry.g += head.g
                out[-1] = entry
            else:
                out.append(entry)
        out.append(self._tuples[-1])
        if out[0] is out[-1]:  # degenerate tiny summaries
            out = [self._tuples[0], self._tuples[-1]]
        self._tuples = out
        self._keys = [t.value for t in out]

    def quantile(self, q: float) -> float:
        """Value at quantile *q* in [0, 1], within ``epsilon`` rank error."""
        if not 0 <= q <= 1:
            raise ParameterError("q must lie in [0, 1]")
        if self.count == 0:
            raise ParameterError("quantile of an empty summary")
        rank = max(1, math.ceil(q * self.count))
        budget = self.epsilon * self.count
        r_min = 0
        for entry in self._tuples:
            r_min += entry.g
            if rank - r_min <= budget and (r_min + entry.delta) - rank <= budget:
                return entry.value
        return self._tuples[-1].value

    def rank(self, value: float) -> int:
        """Approximate rank of *value* (count of elements <= value)."""
        r_min = 0
        for entry in self._tuples:
            if entry.value > value:
                break
            r_min += entry.g
        return r_min

    @property
    def n_tuples(self) -> int:
        """Number of retained summary tuples (space gauge)."""
        return len(self._tuples)

    def _merge_key(self) -> tuple:
        return (self.epsilon,)

    def _merge_into(self, other: "GKQuantiles") -> None:
        """Merge two summaries (combined error stays within 2*epsilon).

        Standard merge: interleave the tuple lists in value order; ``g``
        values are preserved and ``delta`` values inherit the worst case.
        """
        merged: list[_Tuple] = []
        for entry in sorted(
            self._tuples + [_Tuple(t.value, t.g, t.delta) for t in other._tuples],
            key=lambda t: t.value,
        ):
            merged.append(entry)
        self._tuples = merged
        self._keys = [t.value for t in merged]
        self.count += other.count
        self._compress()
