"""KLL quantile sketch [Karnin, Lang & Liberty, FOCS 2016].

The modern mergeable quantile sketch (the default in Yahoo's DataSketches
library, whose open-sourcing the paper highlights): a hierarchy of
*compactors* whose capacities shrink geometrically with level. When a
level overflows it is sorted and every other element (random parity) is
promoted with doubled weight. Space is O(k), rank error O(1/k) with high
probability, and merging is concatenation + recompression.
"""

from __future__ import annotations

import math

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import make_rng
from repro.common.serialization import dump_state, load_state

_TYPE_TAG = "kll"


class KLLSketch(SynopsisBase):
    """Mergeable quantile sketch with parameter *k* (space/accuracy knob)."""

    _CAP_RATIO = 2.0 / 3.0

    def __init__(self, k: int = 200, seed: int | None = 0):
        if k < 8:
            raise ParameterError("k must be at least 8")
        self.k = k
        self.count = 0
        self._rng = make_rng(seed)
        self._levels: list[list[float]] = [[]]

    def _capacity(self, level: int) -> int:
        height = len(self._levels) - 1
        return max(2, int(math.ceil(self.k * self._CAP_RATIO ** (height - level))))

    def update(self, item: float) -> None:
        self.count += 1
        self._levels[0].append(float(item))
        self._compress()

    def _compress(self) -> None:
        level = 0
        while level < len(self._levels):
            if len(self._levels[level]) > self._capacity(level):
                buf = sorted(self._levels[level])
                # Only an even number of items can be compacted (pairs merge
                # into one double-weight survivor); an odd leftover stays.
                leftover: list[float] = []
                if len(buf) % 2:
                    leftover.append(buf.pop(self._rng.randrange(len(buf))))
                offset = self._rng.randrange(2)
                promoted = buf[offset::2]
                self._levels[level] = leftover
                if level + 1 == len(self._levels):
                    self._levels.append([])
                self._levels[level + 1].extend(promoted)
            level += 1

    def _weighted_items(self) -> list[tuple[float, int]]:
        out = []
        for level, buf in enumerate(self._levels):
            weight = 1 << level
            out.extend((v, weight) for v in buf)
        out.sort()
        return out

    def rank(self, value: float) -> int:
        """Approximate number of stream items <= *value*."""
        total = 0
        for level, buf in enumerate(self._levels):
            weight = 1 << level
            total += weight * sum(1 for v in buf if v <= value)
        return total

    def quantile(self, q: float) -> float:
        """Value at quantile *q* in [0, 1]."""
        if not 0 <= q <= 1:
            raise ParameterError("q must lie in [0, 1]")
        if self.count == 0:
            raise ParameterError("quantile of an empty sketch")
        items = self._weighted_items()
        target = q * self.count
        cum = 0
        for value, weight in items:
            cum += weight
            if cum >= target:
                return value
        return items[-1][0]

    def cdf(self, value: float) -> float:
        """Approximate fraction of the stream <= *value*."""
        if self.count == 0:
            raise ParameterError("cdf of an empty sketch")
        return min(1.0, self.rank(value) / self.count)

    @property
    def retained(self) -> int:
        """Items currently stored (O(k))."""
        return sum(len(buf) for buf in self._levels)

    def error_bound(self) -> float:
        """Approximate rank-error guarantee: ~ 1.7/k * n (w.h.p.)."""
        return 1.7 / self.k

    def _merge_key(self) -> tuple:
        return (self.k,)

    def _merge_into(self, other: "KLLSketch") -> None:
        while len(self._levels) < len(other._levels):
            self._levels.append([])
        for level, buf in enumerate(other._levels):
            self._levels[level].extend(buf)
        self.count += other.count
        self._compress()

    def to_bytes(self) -> bytes:
        """Serialize to a versioned byte payload."""
        return dump_state(
            _TYPE_TAG,
            {
                "k": self.k,
                "count": self.count,
                "levels": [list(buf) for buf in self._levels],
            },
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "KLLSketch":
        """Reconstruct a sketch from :meth:`to_bytes` output."""
        state = load_state(_TYPE_TAG, payload)
        obj = cls(k=state["k"])
        obj.count = state["count"]
        obj._levels = [list(buf) for buf in state["levels"]]
        return obj
