"""Exact quantiles from a sorted buffer — the ground-truth baseline.

Every sketch in this package answers rank queries approximately in small
memory; :class:`ExactQuantiles` answers them *exactly* by keeping every
value in one sorted buffer. It exists for two jobs:

* **accuracy reference** — tests compare GK/KLL/t-digest answers against
  the exact ranks this class reports over the same stream;
* **partitioned-state workload** — each insert costs ``O(n)`` in the
  buffer size (``bisect`` + list shift), so sharding the stream across K
  partitions divides the *total* maintenance work by ~K. The cluster
  bench uses exactly this property to measure scale-out gains that are
  real work reduction, not just parallel wall-clock (see
  :mod:`repro.bench.cluster`).

The merge is a sorted-multiset union, so merged shard partials are
bit-identical to a single-stream buffer regardless of how the stream was
partitioned — the strongest form of the paper's Section 2 scale-out
contract (merge-on-query with *zero* approximation drift).
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase, shard_of


class ExactQuantiles(SynopsisBase):
    """Exact rank/quantile queries over all values seen so far."""

    def __init__(self):
        self._values: list[Any] = []

    @property
    def count(self) -> int:
        """Number of values absorbed."""
        return len(self._values)

    def update(self, item: Any) -> None:
        """Insert *item* into the sorted buffer (``O(n)`` shift cost)."""
        insort(self._values, item)

    def quantile(self, q: float) -> Any:
        """The exact *q*-quantile (nearest-rank; ``0 <= q <= 1``)."""
        if not 0.0 <= q <= 1.0:
            raise ParameterError("q must lie in [0, 1]")
        if not self._values:
            raise ParameterError("quantile of an empty stream is undefined")
        rank = min(len(self._values) - 1, int(q * len(self._values)))
        return self._values[rank]

    def rank(self, value: Any) -> int:
        """How many absorbed values are strictly less than *value*."""
        from bisect import bisect_left

        return bisect_left(self._values, value)

    def _merge_into(self, other: "ExactQuantiles") -> None:
        # Sorted-multiset union: linear, and partition-independent — the
        # merged buffer is bit-identical to single-stream ingestion no
        # matter how the stream was sharded.
        self._values = list(heapq.merge(self._values, other._values))

    def _split_into(self, n: int) -> list["ExactQuantiles"]:
        """Partition the buffer by value hash.

        Appending in buffer order keeps every shard sorted, and the merge's
        sorted-multiset union restores the exact original buffer. This is
        the split the elastic runtime leans on hardest: each shard's O(n)
        insert cost drops with its share of the values, so raising a
        quantile bolt's parallelism genuinely divides the maintenance work.
        """
        parts = [ExactQuantiles() for __ in range(n)]
        for value in self._values:
            parts[shard_of(value, n)]._values.append(value)
        return parts

    def size_bytes(self) -> int:
        """Footprint is the buffer itself (exactness is paid in memory)."""
        return super().size_bytes()
