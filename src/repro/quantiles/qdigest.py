"""q-digest [Shrivastava et al., SenSys 2004] — quantiles over an integer
universe, designed for sensor-network aggregation (Table 1's "Medians and
beyond" citation).

Counts live on nodes of the implicit binary tree over ``[0, 2^depth)``.
Compression pushes small counts upward: a node survives only if
``count(node) + count(sibling) + count(parent) > n/k``. The digest is
mergeable by adding node counts — the property that made it the sensor
aggregation standard.
"""

from __future__ import annotations

import math

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class QDigest(SynopsisBase):
    """q-digest over integers in ``[0, 2^depth)`` with compression factor *k*."""

    def __init__(self, depth: int = 16, k: int = 64):
        if not 1 <= depth <= 32:
            raise ParameterError("depth must lie in [1, 32]")
        if k <= 0:
            raise ParameterError("compression factor k must be positive")
        self.depth = depth
        self.universe = 1 << depth
        self.k = k
        self.count = 0
        # Node ids follow the heap convention: root=1; leaf for value v is
        # universe + v. A node's range narrows as ids grow.
        self._counts: dict[int, int] = {}
        self._since_compress = 0

    def update(self, item: int) -> None:
        value = int(item)
        if not 0 <= value < self.universe:
            raise ParameterError(f"value {value} outside [0, {self.universe})")
        leaf = self.universe + value
        self._counts[leaf] = self._counts.get(leaf, 0) + 1
        self.count += 1
        self._since_compress += 1
        if self._since_compress >= max(32, self.count // 2):
            self.compress()

    def compress(self) -> None:
        """Push small counts upward until the q-digest property holds."""
        self._since_compress = 0
        threshold = math.floor(self.count / self.k)
        if threshold <= 0:
            return
        # Process level by level from the leaves up so that counts merged
        # into a parent can keep climbing on the next level's pass.
        for level in range(self.depth, 0, -1):
            lo, hi = 1 << level, 1 << (level + 1)
            for node in [n for n in self._counts if lo <= n < hi]:
                cnt = self._counts.get(node, 0)
                if cnt == 0:
                    continue
                sibling = node ^ 1
                parent = node >> 1
                sib_cnt = self._counts.get(sibling, 0)
                par_cnt = self._counts.get(parent, 0)
                if cnt + sib_cnt + par_cnt <= threshold:
                    self._counts[parent] = par_cnt + cnt + sib_cnt
                    self._counts.pop(node, None)
                    self._counts.pop(sibling, None)
        self._counts = {n: c for n, c in self._counts.items() if c > 0}

    def _node_range(self, node: int) -> tuple[int, int]:
        """Inclusive value range [lo, hi] covered by *node*."""
        level = node.bit_length() - 1
        span = self.universe >> level
        lo = (node - (1 << level)) * span
        return lo, lo + span - 1

    def quantile(self, q: float) -> int:
        """Value at quantile *q*; rank error is at most ``log2(U) * n / k``."""
        if not 0 <= q <= 1:
            raise ParameterError("q must lie in [0, 1]")
        if self.count == 0:
            raise ParameterError("quantile of an empty digest")
        self.compress()
        target = q * self.count
        # Sort nodes by (hi, lo): postorder over value space, so cumulative
        # counts lower-bound ranks.
        nodes = sorted(self._counts, key=lambda n: (self._node_range(n)[1], self._node_range(n)[0]))
        cum = 0
        for node in nodes:
            cum += self._counts[node]
            if cum >= target:
                return self._node_range(node)[1]
        return self._node_range(nodes[-1])[1]

    @property
    def n_nodes(self) -> int:
        """Number of stored tree nodes (space gauge)."""
        return len(self._counts)

    def error_bound(self) -> float:
        """Worst-case rank error of quantile answers: ``depth * n / k``."""
        return self.depth * self.count / self.k

    def _merge_key(self) -> tuple:
        return (self.depth, self.k)

    def _merge_into(self, other: "QDigest") -> None:
        for node, cnt in other._counts.items():
            self._counts[node] = self._counts.get(node, 0) + cnt
        self.count += other.count
        self.compress()
