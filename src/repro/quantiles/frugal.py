"""Frugal streaming quantile estimators [Ma, Muthukrishnan & Sandler, 2013].

The paper's "frugal streaming" citation: estimate a quantile using one (or
two) units of memory. Frugal-1U nudges the estimate up with probability
``q`` and down with probability ``1-q`` on each arrival; Frugal-2U adapts
the step size for faster convergence. Accuracy is modest, but memory is a
couple of machine words — the extreme end of the space/accuracy spectrum
the survey lays out.
"""

from __future__ import annotations

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import make_rng


class Frugal1U(SynopsisBase):
    """One-unit-of-memory streaming estimator for quantile *q*."""

    def __init__(self, q: float = 0.5, initial: float = 0.0, seed: int | None = 0):
        if not 0 < q < 1:
            raise ParameterError("q must lie in (0, 1)")
        self.q = q
        self.count = 0
        self.estimate_value = float(initial)
        self._rng = make_rng(seed)

    def update(self, item: float) -> None:
        value = float(item)
        self.count += 1
        r = self._rng.random()
        if value > self.estimate_value and r < self.q:
            self.estimate_value += 1.0
        elif value < self.estimate_value and r < 1.0 - self.q:
            self.estimate_value -= 1.0

    def quantile(self) -> float:
        """Current estimate of the tracked quantile."""
        return self.estimate_value

    def _merge_key(self) -> tuple:
        return (self.q,)

    def _merge_into(self, other: "Frugal1U") -> None:
        # Frugal state is a single scalar; averaging weighted by counts is
        # the only sensible combination and is what the authors suggest for
        # ensembling independent chains.
        total = self.count + other.count
        if total:
            self.estimate_value = (
                self.estimate_value * self.count + other.estimate_value * other.count
            ) / total
        self.count = total


class Frugal2U(SynopsisBase):
    """Two-units-of-memory estimator with adaptive step size."""

    def __init__(self, q: float = 0.5, initial: float = 0.0, seed: int | None = 0):
        if not 0 < q < 1:
            raise ParameterError("q must lie in (0, 1)")
        self.q = q
        self.count = 0
        self.estimate_value = float(initial)
        self._step = 1.0
        self._sign = 1
        self._rng = make_rng(seed)

    def update(self, item: float) -> None:
        value = float(item)
        self.count += 1
        r = self._rng.random()
        if value > self.estimate_value and r < self.q:
            self._step += 1.0 if self._sign > 0 else -1.0
            self.estimate_value += max(self._step, 1.0)
            if self.estimate_value > value:
                self._step += value - self.estimate_value
                self.estimate_value = value
            if self._sign < 0 and self._step > 1.0:
                self._step = 1.0
            self._sign = 1
        elif value < self.estimate_value and r < 1.0 - self.q:
            self._step += 1.0 if self._sign < 0 else -1.0
            self.estimate_value -= max(self._step, 1.0)
            if self.estimate_value < value:
                self._step += self.estimate_value - value
                self.estimate_value = value
            if self._sign > 0 and self._step > 1.0:
                self._step = 1.0
            self._sign = -1

    def quantile(self) -> float:
        """Current estimate of the tracked quantile."""
        return self.estimate_value

    def _merge_key(self) -> tuple:
        return (self.q,)

    def _merge_into(self, other: "Frugal2U") -> None:
        total = self.count + other.count
        if total:
            self.estimate_value = (
                self.estimate_value * self.count + other.estimate_value * other.count
            ) / total
        self.count = total
        self._step = 1.0
        self._sign = 1
