"""t-digest (merging variant) — accurate tail quantiles in small space.

[Dunning & Ertl] — the t-digest clusters points into centroids whose
allowed weight shrinks near the distribution's tails (controlled by the
scale function), so extreme quantiles (p99, p999) are far more accurate
than uniform-size summaries. This is the merging implementation: updates
are buffered and periodically merged into the centroid list in one sorted
sweep, which also makes digests mergeable across partitions.
"""

from __future__ import annotations

import math

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.serialization import dump_state, load_state

_TYPE_TAG = "tdigest"


class TDigest(SynopsisBase):
    """Merging t-digest with compression parameter *delta* (centroid budget)."""

    def __init__(self, delta: float = 100.0, buffer_size: int = 512):
        if delta < 10:
            raise ParameterError("delta must be >= 10")
        if buffer_size <= 0:
            raise ParameterError("buffer_size must be positive")
        self.delta = delta
        self.buffer_size = buffer_size
        self.count = 0
        self._means: list[float] = []
        self._weights: list[float] = []
        self._buffer: list[tuple[float, float]] = []

    def update(self, item: float) -> None:
        self.update_weighted(float(item), 1.0)

    def update_weighted(self, value: float, weight: float) -> None:
        """Absorb *value* with positive *weight*."""
        if weight <= 0:
            raise ParameterError("weight must be positive")
        self._buffer.append((value, weight))
        self.count += 1
        if len(self._buffer) >= self.buffer_size:
            self._flush()

    @staticmethod
    def _k(q: float, delta: float) -> float:
        # k1 scale function: asin-based, tightest at the tails.
        return delta / (2.0 * math.pi) * math.asin(2.0 * q - 1.0)

    def _flush(self) -> None:
        if not self._buffer:
            return
        points = sorted(
            list(zip(self._means, self._weights)) + self._buffer, key=lambda p: p[0]
        )
        self._buffer = []
        total = sum(w for __, w in points)
        means: list[float] = []
        weights: list[float] = []
        cum = 0.0
        cur_mean, cur_weight = points[0]
        k_lower = self._k(0.0, self.delta)
        for mean, weight in points[1:]:
            q_up = (cum + cur_weight + weight) / total
            if q_up <= 1.0 and self._k(q_up, self.delta) - k_lower <= 1.0:
                # Merge into the current centroid.
                cur_mean = (cur_mean * cur_weight + mean * weight) / (cur_weight + weight)
                cur_weight += weight
            else:
                means.append(cur_mean)
                weights.append(cur_weight)
                cum += cur_weight
                cur_mean, cur_weight = mean, weight
                k_lower = self._k(cum / total, self.delta)
        means.append(cur_mean)
        weights.append(cur_weight)
        self._means = means
        self._weights = weights

    def quantile(self, q: float) -> float:
        """Value at quantile *q* in [0, 1] (interpolated between centroids)."""
        if not 0 <= q <= 1:
            raise ParameterError("q must lie in [0, 1]")
        self._flush()
        if not self._means:
            raise ParameterError("quantile of an empty digest")
        if len(self._means) == 1:
            return self._means[0]
        total = sum(self._weights)
        target = q * total
        cum = 0.0
        for i, (mean, weight) in enumerate(zip(self._means, self._weights)):
            if cum + weight / 2.0 >= target:
                if i == 0:
                    return mean
                prev_mean = self._means[i - 1]
                prev_mid = cum - self._weights[i - 1] / 2.0
                mid = cum + weight / 2.0
                frac = (target - prev_mid) / (mid - prev_mid) if mid > prev_mid else 0.0
                return prev_mean + frac * (mean - prev_mean)
            cum += weight
        return self._means[-1]

    def cdf(self, value: float) -> float:
        """Approximate fraction of the stream <= *value*."""
        self._flush()
        if not self._means:
            raise ParameterError("cdf of an empty digest")
        total = sum(self._weights)
        cum = 0.0
        for mean, weight in zip(self._means, self._weights):
            if mean >= value:
                return min(1.0, cum / total)
            cum += weight
        return 1.0

    @property
    def n_centroids(self) -> int:
        """Number of centroids after compaction (space gauge)."""
        self._flush()
        return len(self._means)

    def _merge_key(self) -> tuple:
        return (self.delta,)

    def _merge_into(self, other: "TDigest") -> None:
        other._flush()
        self._buffer.extend(zip(other._means, other._weights))
        self._buffer.extend(other._buffer)
        self.count += other.count
        self._flush()

    def to_bytes(self) -> bytes:
        """Serialize to a versioned byte payload."""
        self._flush()
        return dump_state(
            _TYPE_TAG,
            {
                "delta": self.delta,
                "buffer_size": self.buffer_size,
                "count": self.count,
                "means": list(self._means),
                "weights": list(self._weights),
            },
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "TDigest":
        """Reconstruct a digest from :meth:`to_bytes` output."""
        state = load_state(_TYPE_TAG, payload)
        obj = cls(delta=state["delta"], buffer_size=state["buffer_size"])
        obj.count = state["count"]
        obj._means = list(state["means"])
        obj._weights = list(state["weights"])
        return obj
