"""Approximate quantiles over sliding windows (Arasu–Manku style).

[Arasu & Manku, PODS 2004] answer quantile queries over the last *W*
elements in sublinear space by maintaining epsilon-approximate summaries
over dyadic blocks. This implementation uses the practical block variant:
the window is covered by fixed-size blocks, each summarised with a GK
sketch; a query merges the summaries of the (at most ``W/b + 1``) live
blocks. Error is ``epsilon`` from the sketches plus ``b/W`` from the
partially-expired oldest block.
"""

from __future__ import annotations

from collections import deque

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.quantiles.gk import GKQuantiles


class SlidingWindowQuantiles(SynopsisBase):
    """Quantiles over the last *window* elements via per-block GK summaries."""

    def __init__(self, window: int, epsilon: float = 0.01, n_blocks: int = 16):
        if window <= 0:
            raise ParameterError("window must be positive")
        if n_blocks <= 0 or n_blocks > window:
            raise ParameterError("n_blocks must lie in [1, window]")
        self.window = window
        self.epsilon = epsilon
        self.block_size = max(1, window // n_blocks)
        self.count = 0
        self._blocks: deque[GKQuantiles] = deque()
        self._current: GKQuantiles = GKQuantiles(epsilon)

    def update(self, item: float) -> None:
        self.count += 1
        self._current.update(float(item))
        if self._current.count >= self.block_size:
            self._blocks.append(self._current)
            self._current = GKQuantiles(self.epsilon)
        # Expire blocks fully outside the window.
        covered = self._current.count + sum(b.count for b in self._blocks)
        while self._blocks and covered - self._blocks[0].count >= self.window:
            covered -= self._blocks[0].count
            self._blocks.popleft()

    def quantile(self, q: float) -> float:
        """Value at quantile *q* over (approximately) the last *window* items."""
        if not 0 <= q <= 1:
            raise ParameterError("q must lie in [0, 1]")
        live = [b for b in self._blocks]
        if self._current.count:
            live.append(self._current)
        if not live:
            raise ParameterError("quantile of an empty window")
        merged = live[0] + live[0].__class__(self.epsilon)  # deep copy via +
        for block in live[1:]:
            merged.merge(block)
        return merged.quantile(q)

    @property
    def covered(self) -> int:
        """Number of elements the live summaries currently cover."""
        return self._current.count + sum(b.count for b in self._blocks)

    def _merge_key(self) -> tuple:
        return (self.window, self.epsilon, self.block_size)

    def _merge_into(self, other: "SlidingWindowQuantiles") -> None:
        raise NotImplementedError(
            "sliding-window quantile summaries are position-bound; merge the "
            "underlying GK blocks per partition instead"
        )
