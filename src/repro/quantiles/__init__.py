"""Quantile estimation over streams with small memory.

Table 1 row "Estimating Quantiles" (application: network analysis).
"""

from repro.quantiles.exact import ExactQuantiles
from repro.quantiles.frugal import Frugal1U, Frugal2U
from repro.quantiles.gk import GKQuantiles
from repro.quantiles.kll import KLLSketch
from repro.quantiles.p2 import P2Quantile
from repro.quantiles.qdigest import QDigest
from repro.quantiles.tdigest import TDigest
from repro.quantiles.window import SlidingWindowQuantiles

__all__ = [
    "ExactQuantiles",
    "Frugal1U",
    "Frugal2U",
    "GKQuantiles",
    "KLLSketch",
    "P2Quantile",
    "QDigest",
    "SlidingWindowQuantiles",
    "TDigest",
]
