"""SPRING: subsequence matching under time warping, streaming.

[Sakurai, Faloutsos & Yamamuro; the basis of "pattern discovery in data
streams under the time warping distance", Toyoda et al., VLDBJ 2013 — Table
1's citation]. Given a fixed query pattern, SPRING reports every stream
subsequence whose DTW distance to the query is below a threshold, in O(|Q|)
time and memory per arriving point, by running the DTW recurrence with a
"star" start column that lets a match begin anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


@dataclass(frozen=True)
class Match:
    """A reported subsequence match: [start, end] positions and DTW distance."""

    start: int
    end: int
    distance: float


def dtw_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Classic full DTW distance (squared-error ground cost), for baselines."""
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if len(x) == 0 or len(y) == 0:
        raise ParameterError("DTW of an empty sequence")
    inf = float("inf")
    prev = np.full(len(y) + 1, inf)
    prev[0] = 0.0
    for xi in x:
        cur = np.full(len(y) + 1, inf)
        for j, yj in enumerate(y, start=1):
            cost = (xi - yj) ** 2
            cur[j] = cost + min(prev[j], cur[j - 1], prev[j - 1])
        prev = cur
    return float(prev[-1])


class SpringMatcher(SynopsisBase):
    """Streaming DTW subsequence matcher for one query pattern.

    ``update(x)`` consumes one point and returns a :class:`Match` when an
    optimal warped occurrence of the query has *completed* (SPRING reports a
    match once no ongoing path can improve it), else None.
    """

    def __init__(self, query: Sequence[float], threshold: float):
        q = [float(v) for v in query]
        if not q:
            raise ParameterError("query must be non-empty")
        if threshold <= 0:
            raise ParameterError("threshold must be positive")
        self.query = q
        self.threshold = threshold
        self.count = 0
        m = len(q)
        inf = float("inf")
        self._d = [inf] * (m + 1)  # DTW cost column
        self._d[0] = 0.0
        self._s = [0] * (m + 1)  # start positions
        self._best: Match | None = None

    def update(self, item: float) -> Match | None:
        x = float(item)
        self.count += 1
        t = self.count  # 1-based stream position
        m = len(self.query)
        inf = float("inf")
        d_prev, s_prev = self._d, self._s
        d = [0.0] + [inf] * m
        s = [t] + [0] * m
        for i in range(1, m + 1):
            cost = (x - self.query[i - 1]) ** 2
            # Candidates: diagonal, same-column (query advances), same-row
            # (stream advances). On ties prefer the latest start so matches
            # are reported as tight as possible.
            best, start = d_prev[i - 1], s_prev[i - 1]
            if d[i - 1] < best or (d[i - 1] == best and s[i - 1] > start):
                best, start = d[i - 1], s[i - 1]
            if d_prev[i] < best or (d_prev[i] == best and s_prev[i] > start):
                best, start = d_prev[i], s_prev[i]
            d[i] = cost + best
            s[i] = start
        self._d, self._s = d, s

        report: Match | None = None
        if self._best is not None:
            # Report the pending match once no active path can beat it.
            if all(
                d[i] >= self._best.distance or s[i] > self._best.end
                for i in range(1, m + 1)
            ):
                report = self._best
                self._best = None
        if d[m] <= self.threshold:
            candidate = Match(start=s[m], end=t, distance=d[m])
            if self._best is None or candidate.distance < self._best.distance:
                self._best = candidate
        return report

    def flush(self) -> Match | None:
        """Report any pending match at end of stream."""
        report, self._best = self._best, None
        return report

    def _merge_key(self) -> tuple:
        return (tuple(self.query), self.threshold)

    def _merge_into(self, other: "SpringMatcher") -> None:
        raise NotImplementedError("SPRING state is order-sensitive; not mergeable")
