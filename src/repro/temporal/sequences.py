"""Streaming sequential-pattern mining.

The paper's use cases: "sequence mining for, say, credit card fraud
detection", "determining top-K traversal sequences in streaming clicks"
and the sequential-pattern citations [Koper & Nguyen; Raïssi & Plantevit].
This module mines frequent order-sensitive n-grams from event streams:
per-key recent-event windows generate contiguous subsequences, counted by
a SpaceSaving summary, so the top traversal paths are available at any
time in bounded memory.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.frequency.space_saving import SpaceSaving


class SequenceMiner(SynopsisBase):
    """Top-K frequent event sequences of lengths ``2..max_len`` per key.

    ``update((key, event))`` appends *event* to *key*'s recent history and
    counts every new contiguous subsequence ending at it. ``key`` is the
    session/user/card the sequence belongs to; sequences never span keys.
    """

    def __init__(self, max_len: int = 4, k: int = 1024, history: int | None = None):
        if max_len < 2:
            raise ParameterError("max_len must be at least 2")
        if k <= 0:
            raise ParameterError("k must be positive")
        self.max_len = max_len
        self.history = history if history is not None else max_len
        if self.history < max_len:
            raise ParameterError("history must be >= max_len")
        self.k = k
        self.count = 0
        self._counts = SpaceSaving(k=k)
        self._recent: dict[Hashable, deque] = {}

    def update(self, item: tuple[Hashable, Hashable]) -> None:
        key, event = item
        self.count += 1
        window = self._recent.setdefault(key, deque(maxlen=self.history))
        window.append(event)
        tail = list(window)
        for length in range(2, min(self.max_len, len(tail)) + 1):
            self._counts.update(tuple(tail[-length:]))

    def end_session(self, key: Hashable) -> None:
        """Forget *key*'s history (session closed)."""
        self._recent.pop(key, None)

    def top(self, n: int = 10, length: int | None = None) -> list[tuple[tuple, int]]:
        """The *n* most frequent sequences (optionally of one *length*)."""
        ranked = self._counts.top(self.k)
        if length is not None:
            ranked = [(seq, c) for seq, c in ranked if len(seq) == length]
        return ranked[:n]

    def frequency(self, sequence: tuple) -> int:
        """Estimated occurrence count of *sequence*."""
        return self._counts.estimate(tuple(sequence))

    def support(self, sequence: tuple) -> float:
        """Estimated frequency relative to all events seen."""
        if self.count == 0:
            return 0.0
        return self.frequency(sequence) / self.count

    @property
    def open_sessions(self) -> int:
        """Keys with live history (memory gauge)."""
        return len(self._recent)

    def _merge_key(self) -> tuple:
        return (self.max_len, self.k, self.history)

    def _merge_into(self, other: "SequenceMiner") -> None:
        """Merge the sequence counts (per-key windows stay partitioned)."""
        self._counts.merge(other._counts)
        self.count += other.count
