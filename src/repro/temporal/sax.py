"""Symbolic Aggregate approXimation (SAX) for streaming time series.

SAX discretises a numeric window into a short symbol string: the window is
z-normalised, piecewise-aggregated (PAA), and each segment mapped to a
symbol by Gaussian-equiprobable breakpoints. Strings support a lower-
bounding distance, making them the standard substrate for streaming motif
and pattern discovery (cf. "Spade: shape-based pattern detection in
streaming time series" [Chen et al., ICDE 2007] in Table 1).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy import stats  # available offline per the environment

from repro.common.exceptions import ParameterError


def gaussian_breakpoints(alphabet_size: int) -> np.ndarray:
    """Breakpoints splitting N(0,1) into *alphabet_size* equiprobable bins."""
    if not 2 <= alphabet_size <= 26:
        raise ParameterError("alphabet_size must lie in [2, 26]")
    qs = np.linspace(0, 1, alphabet_size + 1)[1:-1]
    return stats.norm.ppf(qs)


def paa(values: Sequence[float], segments: int) -> np.ndarray:
    """Piecewise aggregate approximation: *segments* segment means."""
    arr = np.asarray(values, dtype=np.float64)
    if len(arr) == 0:
        raise ParameterError("cannot PAA an empty window")
    if segments <= 0 or segments > len(arr):
        raise ParameterError("segments must lie in [1, len(values)]")
    # Split as evenly as possible (frame boundaries by linspace).
    bounds = np.linspace(0, len(arr), segments + 1).astype(int)
    return np.array([arr[bounds[i] : bounds[i + 1]].mean() for i in range(segments)])


def znormalise(values: Sequence[float]) -> np.ndarray:
    """Zero-mean unit-variance normalisation (constant windows -> zeros)."""
    arr = np.asarray(values, dtype=np.float64)
    std = arr.std()
    if std < 1e-12:
        return np.zeros_like(arr)
    return (arr - arr.mean()) / std


def sax_word(values: Sequence[float], segments: int = 8, alphabet_size: int = 4) -> str:
    """The SAX word of a window (lowercase letters, 'a' = lowest bin)."""
    breakpoints = gaussian_breakpoints(alphabet_size)
    segments_means = paa(znormalise(values), segments)
    indices = np.searchsorted(breakpoints, segments_means)
    return "".join(chr(ord("a") + int(i)) for i in indices)


def sax_distance(
    word_a: str, word_b: str, window_len: int, alphabet_size: int = 4
) -> float:
    """MINDIST lower bound on the Euclidean distance of the source windows."""
    if len(word_a) != len(word_b):
        raise ParameterError("SAX words must have equal length")
    breakpoints = gaussian_breakpoints(alphabet_size)
    total = 0.0
    for ca, cb in zip(word_a, word_b):
        i, j = ord(ca) - ord("a"), ord(cb) - ord("a")
        if abs(i - j) > 1:
            lo, hi = min(i, j), max(i, j)
            cell = breakpoints[hi - 1] - breakpoints[lo]
            total += cell * cell
    return math.sqrt(window_len / len(word_a)) * math.sqrt(total)
