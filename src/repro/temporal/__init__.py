"""Temporal pattern analysis over streams.

Table 1 row "Temporal Pattern Analysis" — detect patterns in a data stream
(application: traffic analysis).
"""

from repro.temporal.motif import MotifDetector
from repro.temporal.sequences import SequenceMiner
from repro.temporal.sax import (
    gaussian_breakpoints,
    paa,
    sax_distance,
    sax_word,
    znormalise,
)
from repro.temporal.spring import Match, SpringMatcher, dtw_distance

__all__ = [
    "SequenceMiner",
    "Match",
    "MotifDetector",
    "SpringMatcher",
    "dtw_distance",
    "gaussian_breakpoints",
    "paa",
    "sax_distance",
    "sax_word",
    "znormalise",
]
