"""Streaming motif discovery over SAX words.

A *motif* is a window shape that recurs in a stream. The detector slides a
window, SAX-encodes it, and counts words with a SpaceSaving summary —
recurring shapes surface as frequent words (the streaming adaptation of
the classic SAX motif pipeline; cf. Table 1's temporal-pattern citations).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.frequency.space_saving import SpaceSaving
from repro.temporal.sax import sax_word


class MotifDetector(SynopsisBase):
    """Count recurring window shapes (SAX words) in a numeric stream."""

    def __init__(
        self,
        window: int = 32,
        segments: int = 8,
        alphabet_size: int = 4,
        stride: int = 1,
        k: int = 256,
    ):
        if window <= 0:
            raise ParameterError("window must be positive")
        if stride <= 0:
            raise ParameterError("stride must be positive")
        if segments > window:
            raise ParameterError("segments must not exceed window")
        self.window = window
        self.segments = segments
        self.alphabet_size = alphabet_size
        self.stride = stride
        self.count = 0
        self._buffer: deque[float] = deque(maxlen=window)
        self._counts = SpaceSaving(k=k)
        self._last_word: str | None = None

    def update(self, item: float) -> None:
        self.count += 1
        self._buffer.append(float(item))
        if len(self._buffer) == self.window and self.count % self.stride == 0:
            word = sax_word(list(self._buffer), self.segments, self.alphabet_size)
            self._last_word = word
            # Suppress trivial matches: identical consecutive words from
            # overlapping windows of a flat region are expected.
            self._counts.update(word)

    def motifs(self, n: int = 5) -> list[tuple[Hashable, int]]:
        """The *n* most frequent window shapes seen so far."""
        return self._counts.top(n)

    def frequency(self, word: str) -> int:
        """Occurrence estimate of a specific SAX word."""
        return self._counts.estimate(word)

    @property
    def last_word(self) -> str | None:
        """SAX word of the most recently completed window."""
        return self._last_word

    def _merge_key(self) -> tuple:
        return (self.window, self.segments, self.alphabet_size, self.stride)

    def _merge_into(self, other: "MotifDetector") -> None:
        self._counts.merge(other._counts)
        self.count += other.count
