"""Equi-width streaming histogram.

Section 2: "Equi-width histograms partition the domain into buckets such
that the number of values falling into each bucket is uniform across all
buckets" — the simplest synopsis of a value distribution. This streaming
version fixes the domain up front and counts arrivals per bucket; values
outside the declared domain are clamped into the edge buckets and counted,
so totals remain exact.
"""

from __future__ import annotations

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class EquiWidthHistogram(SynopsisBase):
    """Fixed-domain histogram with *bins* equal-width buckets over [lo, hi)."""

    def __init__(self, lo: float, hi: float, bins: int = 64):
        if hi <= lo:
            raise ParameterError("hi must exceed lo")
        if bins <= 0:
            raise ParameterError("bins must be positive")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = bins
        self.width = (self.hi - self.lo) / bins
        self.count = 0
        self._counts = np.zeros(bins, dtype=np.int64)

    def _bucket(self, value: float) -> int:
        index = int((value - self.lo) / self.width)
        return min(max(index, 0), self.bins - 1)

    def update(self, item: float) -> None:
        self.count += 1
        self._counts[self._bucket(float(item))] += 1

    def density(self, value: float) -> float:
        """Estimated probability density at *value*."""
        if self.count == 0:
            return 0.0
        return self._counts[self._bucket(value)] / (self.count * self.width)

    def estimate_range_count(self, a: float, b: float) -> float:
        """Estimated number of stream values in ``[a, b)`` (uniform within
        buckets)."""
        if b <= a:
            return 0.0
        total = 0.0
        for i in range(self.bins):
            b_lo = self.lo + i * self.width
            b_hi = b_lo + self.width
            overlap = max(0.0, min(b, b_hi) - max(a, b_lo))
            if overlap > 0:
                total += self._counts[i] * overlap / self.width
        return total

    def quantile(self, q: float) -> float:
        """Approximate quantile by interpolating the cumulative histogram."""
        if not 0 <= q <= 1:
            raise ParameterError("q must lie in [0, 1]")
        if self.count == 0:
            raise ParameterError("quantile of an empty histogram")
        target = q * self.count
        cum = 0
        for i in range(self.bins):
            nxt = cum + self._counts[i]
            if nxt >= target:
                frac = (target - cum) / self._counts[i] if self._counts[i] else 0.0
                return self.lo + (i + frac) * self.width
            cum = nxt
        return self.hi

    @property
    def counts(self) -> np.ndarray:
        """Copy of per-bucket counts."""
        return self._counts.copy()

    def _merge_key(self) -> tuple:
        return (self.lo, self.hi, self.bins)

    def _merge_into(self, other: "EquiWidthHistogram") -> None:
        self._counts += other._counts
        self.count += other.count

    def size_bytes(self) -> int:
        return int(self._counts.nbytes)
