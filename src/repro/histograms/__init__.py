"""Distribution synopses: histograms and wavelets (Section 2 techniques)."""

from repro.histograms.endbiased import EndBiasedHistogram
from repro.histograms.equiwidth import EquiWidthHistogram
from repro.histograms.voptimal import (
    Bucket,
    StreamingVOptimal,
    total_sse,
    v_optimal_histogram,
)
from repro.histograms.wavelet import (
    WaveletHistogram,
    haar_transform,
    inverse_haar_transform,
    top_b_coefficients,
    wavelet_synopsis,
)

__all__ = [
    "Bucket",
    "EndBiasedHistogram",
    "EquiWidthHistogram",
    "StreamingVOptimal",
    "WaveletHistogram",
    "haar_transform",
    "inverse_haar_transform",
    "top_b_coefficients",
    "total_sse",
    "v_optimal_histogram",
    "wavelet_synopsis",
]
