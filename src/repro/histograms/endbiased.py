"""End-biased histogram.

Section 2: "End-biased histograms maintain exact counts of items that occur
with frequency above a threshold, and approximate the other counts by a
uniform distribution." The streaming version tracks the heavy items with a
SpaceSaving summary and models the remaining mass as uniform over the
remaining distinct values (counted with a HyperLogLog).
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.cardinality.hyperloglog import HyperLogLog
from repro.frequency.space_saving import SpaceSaving


class EndBiasedHistogram(SynopsisBase):
    """Exact head (top items), uniform-tail model for everything else."""

    def __init__(self, head_size: int = 64, precision: int = 12, seed: int = 0):
        if head_size <= 0:
            raise ParameterError("head_size must be positive")
        self.head_size = head_size
        self.count = 0
        self._heavy = SpaceSaving(k=head_size * 4)  # slack for accuracy
        self._distinct = HyperLogLog(precision=precision, seed=seed)

    def update(self, item: Any) -> None:
        self.count += 1
        self._heavy.update(item)
        self._distinct.update(item)

    def head(self) -> dict[Hashable, int]:
        """The tracked heavy items and their (near-exact) counts."""
        return dict(self._heavy.top(self.head_size))

    def estimate(self, item: Any) -> float:
        """Estimated frequency: exact-ish for head items, uniform tail else."""
        head = self.head()
        if item in head:
            return float(head[item])
        head_mass = sum(head.values())
        tail_mass = max(0, self.count - head_mass)
        tail_distinct = max(1.0, self._distinct.estimate() - len(head))
        return tail_mass / tail_distinct

    def tail_uniform_rate(self) -> float:
        """The per-item frequency assigned to every non-head item."""
        head_mass = sum(self.head().values())
        tail_distinct = max(1.0, self._distinct.estimate() - self.head_size)
        return max(0, self.count - head_mass) / tail_distinct

    def _merge_key(self) -> tuple:
        return (self.head_size, self._distinct.precision, self._distinct.family.seed)

    def _merge_into(self, other: "EndBiasedHistogram") -> None:
        self._heavy.merge(other._heavy)
        self._distinct.merge(other._distinct)
        self.count += other.count
