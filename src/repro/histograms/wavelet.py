"""Haar wavelet synopses.

Section 2: "wavelet coefficients are projections of the given signal onto an
orthogonal set of basis vectors ... the signal reconstructed from the top
few wavelet coefficients best approximates the original signal in terms of
the L2 norm" [Gilbert et al., STOC 2002]. This module implements the
(orthonormal) Haar transform, top-B coefficient thresholding — optimal for
L2 by Parseval — and reconstruction, plus a streaming synopsis that builds
the signal as an equi-width histogram first.
"""

from __future__ import annotations

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.histograms.equiwidth import EquiWidthHistogram


def haar_transform(signal: np.ndarray) -> np.ndarray:
    """Orthonormal Haar wavelet transform (length must be a power of two)."""
    arr = np.asarray(signal, dtype=np.float64)
    n = len(arr)
    if n == 0 or n & (n - 1):
        raise ParameterError("signal length must be a positive power of two")
    out = arr.copy()
    length = n
    while length > 1:
        half = length // 2
        evens = out[0:length:2].copy()
        odds = out[1:length:2].copy()
        out[:half] = (evens + odds) / np.sqrt(2.0)
        out[half:length] = (evens - odds) / np.sqrt(2.0)
        length = half
    return out


def inverse_haar_transform(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`haar_transform`."""
    arr = np.asarray(coefficients, dtype=np.float64)
    n = len(arr)
    if n == 0 or n & (n - 1):
        raise ParameterError("coefficient length must be a positive power of two")
    out = arr.copy()
    length = 2
    while length <= n:
        half = length // 2
        sums = out[:half].copy()
        diffs = out[half:length].copy()
        out[0:length:2] = (sums + diffs) / np.sqrt(2.0)
        out[1:length:2] = (sums - diffs) / np.sqrt(2.0)
        length *= 2
    return out


def top_b_coefficients(coefficients: np.ndarray, b: int) -> np.ndarray:
    """Zero all but the *b* largest-magnitude coefficients (L2-optimal)."""
    if b < 0:
        raise ParameterError("b must be non-negative")
    arr = np.asarray(coefficients, dtype=np.float64)
    if b >= len(arr):
        return arr.copy()
    out = np.zeros_like(arr)
    keep = np.argsort(np.abs(arr))[-b:] if b else []
    out[keep] = arr[keep]
    return out


def wavelet_synopsis(signal: np.ndarray, b: int) -> np.ndarray:
    """Best B-term Haar approximation of *signal* (reconstructed)."""
    return inverse_haar_transform(top_b_coefficients(haar_transform(signal), b))


class WaveletHistogram(SynopsisBase):
    """Streaming wavelet synopsis of a value distribution.

    Accumulates an equi-width frequency vector online; :meth:`coefficients`
    / :meth:`reconstruct` expose the top-B Haar view of that vector.
    """

    def __init__(self, lo: float, hi: float, resolution: int = 256, b: int = 16):
        if resolution <= 0 or resolution & (resolution - 1):
            raise ParameterError("resolution must be a power of two")
        if b <= 0:
            raise ParameterError("coefficient budget b must be positive")
        self.b = b
        self.count = 0
        self._summary = EquiWidthHistogram(lo, hi, bins=resolution)

    def update(self, item: float) -> None:
        self.count += 1
        self._summary.update(item)

    def coefficients(self) -> np.ndarray:
        """The retained top-B Haar coefficients of the frequency vector."""
        return top_b_coefficients(haar_transform(self._summary.counts), self.b)

    def reconstruct(self) -> np.ndarray:
        """The frequency vector reconstructed from the top-B coefficients."""
        return inverse_haar_transform(self.coefficients())

    def l2_error(self) -> float:
        """L2 distance between the true and reconstructed frequency vectors."""
        true = self._summary.counts.astype(np.float64)
        return float(np.linalg.norm(true - self.reconstruct()))

    def _merge_key(self) -> tuple:
        return (self.b, self._summary.lo, self._summary.hi, self._summary.bins)

    def _merge_into(self, other: "WaveletHistogram") -> None:
        self._summary.merge(other._summary)
        self.count += other.count
