"""V-Optimal histogram construction.

Section 2: "V-Optimal histograms approximate the distribution of a set of
values by a piecewise-constant function so as to minimize the sum of
squared error." Exact construction is the classic O(n^2 * B) dynamic
program [Jagadish et al. 1998]; for streams we follow the spirit of
[Guha, Koudas & Shim 2006] ("approximation and streaming algorithms for
histogram construction problems"): summarise the stream first (equi-width
pre-buckets), then run the DP over the summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.histograms.equiwidth import EquiWidthHistogram


@dataclass(frozen=True)
class Bucket:
    """One piecewise-constant segment: positions [start, end) with a mean."""

    start: int
    end: int
    mean: float
    sse: float


def v_optimal_histogram(values: Sequence[float], n_buckets: int) -> list[Bucket]:
    """Exact V-optimal partition of *values* into *n_buckets* segments.

    Returns buckets minimising total within-bucket sum of squared error,
    via the O(n^2 * B) dynamic program with prefix sums.
    """
    n = len(values)
    if n == 0:
        raise ParameterError("cannot build a histogram of no values")
    if n_buckets <= 0:
        raise ParameterError("n_buckets must be positive")
    n_buckets = min(n_buckets, n)
    arr = np.asarray(values, dtype=np.float64)
    prefix = np.concatenate([[0.0], np.cumsum(arr)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(arr**2)])

    def sse(i: int, j: int) -> float:
        """SSE of segment [i, j) approximated by its mean."""
        s = prefix[j] - prefix[i]
        s2 = prefix_sq[j] - prefix_sq[i]
        return float(s2 - s * s / (j - i))

    # dp[b][j] = min SSE covering the first j values with b buckets.
    inf = float("inf")
    dp = np.full((n_buckets + 1, n + 1), inf)
    cut = np.zeros((n_buckets + 1, n + 1), dtype=np.int64)
    dp[0][0] = 0.0
    for b in range(1, n_buckets + 1):
        for j in range(b, n + 1):
            best, best_i = inf, b - 1
            for i in range(b - 1, j):
                cand = dp[b - 1][i] + sse(i, j)
                if cand < best:
                    best, best_i = cand, i
            dp[b][j] = best
            cut[b][j] = best_i
    # Reconstruct boundaries.
    buckets: list[Bucket] = []
    j = n
    for b in range(n_buckets, 0, -1):
        i = int(cut[b][j])
        seg = arr[i:j]
        buckets.append(Bucket(i, j, float(seg.mean()), sse(i, j)))
        j = i
    buckets.reverse()
    return buckets


def total_sse(buckets: Sequence[Bucket]) -> float:
    """Total sum-of-squared-error of a histogram."""
    return sum(b.sse for b in buckets)


class StreamingVOptimal(SynopsisBase):
    """Approximate V-optimal histogram over a stream.

    Maintains a fine equi-width summary online; :meth:`histogram` runs the
    exact DP over the summary's bucket means weighted by counts — the
    "summarise then optimise" scheme of Guha et al.
    """

    def __init__(self, lo: float, hi: float, n_buckets: int = 8, resolution: int = 256):
        if n_buckets <= 0:
            raise ParameterError("n_buckets must be positive")
        if resolution < n_buckets:
            raise ParameterError("resolution must be >= n_buckets")
        self.n_buckets = n_buckets
        self.resolution = resolution
        self.count = 0
        self._summary = EquiWidthHistogram(lo, hi, bins=resolution)

    def update(self, item: float) -> None:
        self.count += 1
        self._summary.update(item)

    def histogram(self) -> list[Bucket]:
        """The approximately V-optimal *n_buckets*-bucket histogram.

        Bucket positions index the resolution grid; ``mean`` is the estimated
        per-cell count in the segment (a density histogram of the stream).
        """
        counts = self._summary.counts.astype(np.float64)
        return v_optimal_histogram(counts, self.n_buckets)

    def boundaries(self) -> list[float]:
        """Value-domain boundaries of the optimised buckets."""
        cells = self.histogram()
        width = self._summary.width
        edges = [self._summary.lo + b.start * width for b in cells]
        edges.append(self._summary.hi)
        return edges

    def _merge_key(self) -> tuple:
        return (self.n_buckets, self.resolution, self._summary.lo, self._summary.hi)

    def _merge_into(self, other: "StreamingVOptimal") -> None:
        self._summary.merge(other._summary)
        self.count += other.count
