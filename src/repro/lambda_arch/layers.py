"""The three layers of the Lambda Architecture (Figure 1).

* **Batch layer** — owns the master dataset (immutable, append-only) and
  recomputes batch views from scratch; slow but authoritative.
* **Serving layer** — indexes the batch views for low-latency point reads.
* **Speed layer** — folds only events newer than the last batch run, so
  queries see recent data without waiting for the next batch.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.common.exceptions import ParameterError
from repro.lambda_arch.views import View
from repro.platform.log import InMemoryLog


class BatchLayer:
    """Master dataset plus from-scratch batch view computation."""

    def __init__(self, view: View):
        self.view = view
        self.master = InMemoryLog()

    def append(self, event: Any) -> int:
        """Append *event* to the immutable master dataset."""
        return self.master.append(event)

    def compute_views(self, up_to_offset: int | None = None) -> tuple[dict, int]:
        """Recompute batch views over the master data (full recomputation —
        the architecture's simplicity/robustness trade). Returns
        ``(views, high_offset)``."""
        end = self.master.end_offset if up_to_offset is None else up_to_offset
        if not 0 <= end <= self.master.end_offset:
            raise ParameterError("up_to_offset out of range")
        views: dict[Hashable, Any] = {}
        for __, event in self.master.read_from(0):
            break_offset = __
            if break_offset >= end:
                break
            key = self.view.key(event)
            views[key] = self.view.add(views.get(key, self.view.zero()), event)
        return views, end


class ServingLayer:
    """Indexed batch views: swapped wholesale after each batch run."""

    def __init__(self):
        self._views: dict[Hashable, Any] = {}
        self.batch_offset = 0  # master offset the current views cover

    def load(self, views: dict, batch_offset: int) -> None:
        """Atomically swap in freshly computed batch views."""
        self._views = views
        self.batch_offset = batch_offset

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The batch view for *key* (or *default*)."""
        return self._views.get(key, default)

    def keys(self):
        """Keys with batch views."""
        return self._views.keys()


class SpeedLayer:
    """Incremental real-time views over events past the batch horizon."""

    def __init__(self, view: View):
        self.view = view
        self._views: dict[Hashable, Any] = {}
        self._offsets: list[int] = []  # offsets folded, in order

    def update(self, event: Any, offset: int) -> None:
        """Fold one new event (at master *offset*) into the real-time views."""
        key = self.view.key(event)
        self._views[key] = self.view.add(self._views.get(key, self.view.zero()), event)
        self._offsets.append(offset)

    def expire_through(self, batch_offset: int, events_by_offset) -> None:
        """Drop state now covered by the batch views.

        The canonical speed layer keeps views per time slice and drops whole
        slices; this implementation refolds the still-uncovered suffix,
        which is exact and keeps the layer's memory proportional to the
        batch lag.
        """
        survivors = [o for o in self._offsets if o >= batch_offset]
        self._views = {}
        self._offsets = []
        for offset in survivors:
            self.update(events_by_offset(offset), offset)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The real-time view for *key* (or *default*)."""
        return self._views.get(key, default)

    def keys(self):
        """Keys with real-time views."""
        return self._views.keys()

    @property
    def n_pending_events(self) -> int:
        """Events currently covered only by the speed layer."""
        return len(self._offsets)
