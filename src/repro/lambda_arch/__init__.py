"""Lambda Architecture (Figure 1): batch, serving and speed layers."""

from repro.lambda_arch.architecture import LambdaArchitecture
from repro.lambda_arch.layers import BatchLayer, ServingLayer, SpeedLayer
from repro.lambda_arch.views import CountView, UniqueVisitorsView, View

__all__ = [
    "BatchLayer",
    "CountView",
    "LambdaArchitecture",
    "ServingLayer",
    "SpeedLayer",
    "UniqueVisitorsView",
    "View",
]
