"""View definitions shared by the batch and speed layers.

The Lambda Architecture computes the *same* logical view twice — once
accurately over the master dataset (batch) and once incrementally over
recent data (speed) — and merges at query time. A :class:`View` captures
that logic once: key extraction, a monoid of per-key values (zero / add /
combine), and the final merge.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable

from repro.cardinality.hyperloglog import HyperLogLog


class View(ABC):
    """A keyed aggregation definable as a fold over events."""

    @abstractmethod
    def key(self, event: Any) -> Hashable:
        """Partition key of *event*."""

    @abstractmethod
    def zero(self) -> Any:
        """Identity value for a fresh key."""

    @abstractmethod
    def add(self, value: Any, event: Any) -> Any:
        """Fold *event* into *value* (may mutate and return it)."""

    @abstractmethod
    def combine(self, a: Any, b: Any) -> Any:
        """Combine two partial values (batch + speed merge)."""

    def present(self, value: Any) -> Any:
        """Convert the internal value to the query answer (default: as-is)."""
        return value


class CountView(View):
    """Events per key — e.g. page views per URL."""

    def __init__(self, key_fn=None):
        self._key_fn = key_fn or (lambda event: event)

    def key(self, event: Any) -> Hashable:
        return self._key_fn(event)

    def zero(self) -> int:
        return 0

    def add(self, value: int, event: Any) -> int:
        return value + 1

    def combine(self, a: int, b: int) -> int:
        return a + b


class UniqueVisitorsView(View):
    """Distinct users per key via mergeable HyperLogLog values."""

    def __init__(self, key_fn, user_fn, precision: int = 12, seed: int = 0):
        self._key_fn = key_fn
        self._user_fn = user_fn
        self.precision = precision
        self.seed = seed

    def key(self, event: Any) -> Hashable:
        return self._key_fn(event)

    def zero(self) -> HyperLogLog:
        return HyperLogLog(precision=self.precision, seed=self.seed)

    def add(self, value: HyperLogLog, event: Any) -> HyperLogLog:
        value.update(self._user_fn(event))
        return value

    def combine(self, a: HyperLogLog, b: HyperLogLog) -> HyperLogLog:
        return a + b

    def present(self, value: HyperLogLog) -> float:
        return value.estimate()
