"""The assembled Lambda Architecture (Figure 1 of the paper).

Input data is dispatched to both the batch layer (master dataset) and the
speed layer; queries merge the serving layer's batch views with the speed
layer's real-time views. ``run_batch()`` plays the role of the periodic
batch job: recompute, swap into serving, expire the speed layer.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.lambda_arch.layers import BatchLayer, ServingLayer, SpeedLayer
from repro.lambda_arch.views import View


class LambdaArchitecture:
    """Batch + serving + speed layers answering merged queries."""

    def __init__(self, view: View):
        self.view = view
        self.batch = BatchLayer(view)
        self.serving = ServingLayer()
        self.speed = SpeedLayer(view)

    def ingest(self, event: Any) -> None:
        """Step 1 of Figure 1: dispatch to the batch AND speed layers."""
        offset = self.batch.append(event)
        self.speed.update(event, offset)

    def ingest_many(self, events) -> None:
        """Ingest every event in *events* in order."""
        for event in events:
            self.ingest(event)

    def run_batch(self) -> None:
        """Steps 2–3: recompute batch views, index them, expire speed state."""
        views, offset = self.batch.compute_views()
        self.serving.load(views, offset)
        self.speed.expire_through(offset, self.batch.master.read)

    def query(self, key: Hashable) -> Any:
        """Step 5: merge the batch view and the real-time view for *key*."""
        batch_value = self.serving.get(key)
        speed_value = self.speed.get(key)
        if batch_value is None and speed_value is None:
            return self.view.present(self.view.zero())
        if batch_value is None:
            return self.view.present(speed_value)
        if speed_value is None:
            return self.view.present(batch_value)
        return self.view.present(self.view.combine(batch_value, speed_value))

    def keys(self) -> set:
        """All keys visible to queries right now."""
        return set(self.serving.keys()) | set(self.speed.keys())

    @property
    def batch_lag(self) -> int:
        """Events not yet covered by a batch run (speed-layer burden)."""
        return self.batch.master.end_offset - self.serving.batch_offset
