"""Finding and Severity: the unit of output of every streamlint rule.

A :class:`Finding` pins a rule violation to an exact ``file:line:col`` so
editors and CI logs can jump straight to it. Findings sort by location so
reports are stable across runs — determinism in the linter itself, matching
the determinism it enforces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break reproducibility or scale-out correctness and
    fail the build; ``WARNING`` findings are strongly discouraged patterns
    that may be legitimate in rare cases.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity = field(compare=False)
    message: str = field(compare=False)

    def format(self) -> str:
        """Render as ``path:line:col: RULE severity: message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity}: {self.message}"
        )

    def to_dict(self) -> dict:
        """JSON-serialisable representation (used by the JSON reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
        }
