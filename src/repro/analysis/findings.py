"""Finding and Severity: the unit of output of every streamlint rule.

A :class:`Finding` pins a rule violation to an exact ``file:line:col`` so
editors and CI logs can jump straight to it. Findings sort by location so
reports are stable across runs — determinism in the linter itself, matching
the determinism it enforces.

Each finding also carries the module's *relpath* (posix path relative to
the scan root). Location-independent identity — what the baseline file and
the suppression router key on — uses the relpath, so a tree scanned as
``src/repro`` and the same tree scanned via an absolute path produce the
same keys.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break reproducibility or scale-out correctness and
    fail the build; ``WARNING`` findings are strongly discouraged patterns
    that may be legitimate in rare cases.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity = field(compare=False)
    message: str = field(compare=False)
    relpath: str = field(compare=False, default="")

    def format(self) -> str:
        """Render as ``path:line:col: RULE severity: message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity}: {self.message}"
        )

    def baseline_key(self) -> str:
        """Location-independent identity used by the baseline file.

        Line numbers shift on every edit, so the baseline keys on the
        module-relative path, the rule and the message instead.
        """
        return f"{self.relpath or self.path}::{self.rule_id}::{self.message}"

    def to_dict(self) -> dict:
        """JSON-serialisable representation (reporters, result cache)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "relpath": self.relpath,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output (cache revival)."""
        return cls(
            path=doc["path"],
            line=doc["line"],
            col=doc["col"],
            rule_id=doc["rule"],
            severity=Severity(doc["severity"]),
            message=doc["message"],
            relpath=doc.get("relpath", ""),
        )
