"""streamlint command line.

``python -m repro.analysis src/repro`` (or the ``repro-lint`` console
script) scans the given paths, prints findings, and exits nonzero when any
remain — the contract CI relies on. ``--select``/``--ignore`` narrow the
rule set, ``--format json`` emits the machine report, and ``--list-rules``
documents the rule table.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import all_rules, analyze_paths
from repro.analysis.reporters import REPORTERS


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser (exposed for --help snapshots)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "streamlint: static analysis for streaming correctness "
            "(seeded randomness, mergeable synopses, registry coverage)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, e.g. --select SL001)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--exit-zero",
        action="store_true",
        help="always exit 0 even with findings (for advisory runs)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run streamlint; returns the process exit code (0 clean, 1 findings, 2 usage)."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, cls in all_rules().items():
            print(f"{rule_id}  [{cls.severity}] ({cls.scope})  {cls.description}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro-lint: path(s) not found: {', '.join(missing)}", file=sys.stderr)
        return 2

    try:
        findings = analyze_paths(
            [Path(p) for p in args.paths], select=args.select, ignore=args.ignore
        )
    except ValueError as exc:  # unknown rule id in --select/--ignore
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    print(REPORTERS[args.format](findings))
    if findings and not args.exit_zero:
        return 1
    return 0
