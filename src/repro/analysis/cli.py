"""streamlint command line.

``python -m repro.analysis src/repro`` (or the ``repro-lint`` console
script) scans the given paths, prints findings, and exits by worst
surviving severity — the contract CI relies on:

* ``0`` — clean (or everything absorbed by the baseline / ``--exit-zero``)
* ``1`` — at least one error-severity finding
* ``2`` — usage error (missing path, unknown rule id, bad baseline)
* ``3`` — warnings only

``--select``/``--ignore`` narrow the rule set, ``--format json|sarif``
emit machine reports (``--sarif PATH`` additionally writes a SARIF file
next to the normal report for CI artifact upload), ``--jobs N|auto``
parallelises per-file analysis, ``--cache`` enables the mtime+hash
result cache, and ``.streamlint-baseline.json`` in the working directory
is honoured automatically (``--no-baseline`` opts out,
``--write-baseline`` regenerates it from the current findings).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import DEFAULT_CACHE_NAME
from repro.analysis.engine import all_rules, run_analysis
from repro.analysis.findings import Severity
from repro.analysis.reporters import REPORTERS, render_sarif


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser (exposed for --help snapshots)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "streamlint: static analysis for streaming correctness "
            "(seeded randomness, mergeable synopses, registry coverage, "
            "cluster/obs/serialization safety)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, e.g. --select SL001)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids (repeatable)",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        metavar="N",
        help="worker processes for per-file analysis: a number or 'auto'",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=DEFAULT_CACHE_NAME,
        default=None,
        metavar="PATH",
        help=(
            "enable the mtime+hash result cache "
            f"(default path: {DEFAULT_CACHE_NAME})"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "baseline file of accepted findings "
            f"(default: {DEFAULT_BASELINE_NAME} in the working directory, "
            "when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="also write a SARIF 2.1.0 report to PATH (CI artifact upload)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print file/cache counters to stderr after the run",
    )
    parser.add_argument(
        "--exit-zero",
        action="store_true",
        help="always exit 0 even with findings (for advisory runs)",
    )
    return parser


def _parse_jobs(value: str) -> int:
    if value == "auto":
        return max(1, os.cpu_count() or 1)
    jobs = int(value)
    if jobs < 1:
        raise ValueError("--jobs must be >= 1 or 'auto'")
    return jobs


def main(argv: Sequence[str] | None = None) -> int:
    """Run streamlint; returns the process exit code (see module docstring)."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, cls in all_rules().items():
            print(f"{rule_id}  [{cls.severity}] ({cls.scope})  {cls.description}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro-lint: path(s) not found: {', '.join(missing)}", file=sys.stderr)
        return 2

    try:
        jobs = _parse_jobs(args.jobs)
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = _resolve_baseline_path(args)
    baseline = None
    if baseline_path is not None and not args.write_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2

    try:
        result = run_analysis(
            [Path(p) for p in args.paths],
            select=args.select,
            ignore=args.ignore,
            jobs=jobs,
            cache_path=args.cache,
            baseline=baseline,
        )
    except ValueError as exc:  # unknown rule id in --select/--ignore
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE_NAME)
        keys = write_baseline(result.findings, target)
        print(
            f"streamlint: wrote baseline {target} "
            f"({len(result.findings)} finding(s), {keys} key(s))"
        )
        return 0

    print(REPORTERS[args.format](result.findings))
    if result.baseline_absorbed:
        # stderr so machine formats (json/sarif) stay parseable on stdout
        print(
            f"streamlint: {result.baseline_absorbed} finding(s) absorbed "
            f"by baseline {baseline_path}",
            file=sys.stderr,
        )
    if args.sarif:
        Path(args.sarif).write_text(render_sarif(result.findings) + "\n")
    if args.stats:
        print(
            f"streamlint: {result.file_count} file(s), "
            f"{result.cache_hits} cache hit(s), "
            f"{result.cache_misses} miss(es), jobs={jobs}",
            file=sys.stderr,
        )

    if args.exit_zero or not result.findings:
        return 0
    return 1 if result.worst is Severity.ERROR else 3


def _resolve_baseline_path(args: argparse.Namespace) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE_NAME)
    if default.exists() or args.write_baseline:
        return default
    return None
