"""streamlint rule set — importing this package registers every rule.

Rules live one-per-module, named ``slNNN_<slug>.py``; each module's
``@rule``-decorated class lands in the engine's global table as an import
side effect. Add a new rule by dropping a module here and importing it
below.
"""

from repro.analysis.rules import (  # noqa: F401 - registration side effects
    sl001_unseeded_random,
    sl002_synopsis_contract,
    sl003_mutable_defaults,
    sl004_wall_clock,
    sl005_swallowed_exceptions,
    sl006_registry_drift,
    sl007_shared_globals,
    sl008_unshippable_state,
    sl009_unmergeable_state,
    sl010_blocking_hot_loop,
    sl011_nondeterministic_state,
    sl012_label_cardinality,
    sl013_pickled_hot_path,
    sl014_unthrottled_telemetry,
    sl015_async_blocking,
    sl016_split_contract,
)

__all__ = [
    "sl001_unseeded_random",
    "sl002_synopsis_contract",
    "sl003_mutable_defaults",
    "sl004_wall_clock",
    "sl005_swallowed_exceptions",
    "sl006_registry_drift",
    "sl007_shared_globals",
    "sl008_unshippable_state",
    "sl009_unmergeable_state",
    "sl010_blocking_hot_loop",
    "sl011_nondeterministic_state",
    "sl012_label_cardinality",
    "sl013_pickled_hot_path",
    "sl014_unthrottled_telemetry",
    "sl015_async_blocking",
    "sl016_split_contract",
]
