"""SL015 — blocking synchronous calls inside ``async def`` in serving code.

The serving layer's promise is that queries never stall ingest and
ingest never stalls queries — both share one event loop, so a single
synchronous ``time.sleep``, blocking socket/file call, or timeout-less
``queue.get`` inside a coroutine freezes *every* connection and the
ingest pump with it. The failure is invisible at unit scale (one
client, one request) and catastrophic under the closed-loop workload.

Module-scoped and restricted to ``serving/`` modules. Inside any
``async def`` body (nested synchronous ``def``s excluded — they may be
shipped to a thread executor) flags:

* ``time.sleep(...)`` (import-alias resolved) — use ``await
  asyncio.sleep``;
* blocking module-level I/O: builtin ``open(...)``, ``socket.*`` and
  ``subprocess.*`` calls — use loop executors or asyncio primitives;
* ``.get()`` / ``.get(True)`` without a ``timeout=`` (the SL010
  heuristic) — a dead peer blocks the loop forever.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding
from repro.analysis.rules.sl010_blocking_hot_loop import _is_bare_queue_get

_PACKAGE = "serving"

#: Module prefixes whose direct calls block the calling thread.
_BLOCKING_MODULES = ("socket.", "subprocess.")


@rule
class AsyncBlockingRule(Rule):
    """Flags event-loop-stalling calls in serving coroutines."""

    rule_id = "SL015"
    description = (
        "blocking synchronous call (time.sleep, socket/file I/O, or "
        "timeout-less queue get) inside async def in serving code; "
        "stalls every connection sharing the event loop"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package(_PACKAGE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(ctx, node)

    def _check_coroutine(
        self, ctx: ModuleContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        # Walk the coroutine body only: nested defs are excluded — sync
        # helpers may be destined for a thread executor, and nested
        # coroutines are visited by the outer module walk on their own.
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                finding = self._check_call(ctx, node)
                if finding is not None:
                    yield finding
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(self, ctx: ModuleContext, call: ast.Call) -> Finding | None:
        target = ctx.resolve_call_target(call.func)
        if target == "time.sleep":
            return self.finding(
                ctx,
                call.lineno,
                call.col_offset,
                "time.sleep inside async def blocks the whole event loop; "
                "use `await asyncio.sleep(...)`",
            )
        if target is not None and target.startswith(_BLOCKING_MODULES):
            return self.finding(
                ctx,
                call.lineno,
                call.col_offset,
                f"blocking I/O call {target} inside async def stalls every "
                "connection; use asyncio streams or "
                "loop.run_in_executor(...)",
            )
        if (
            isinstance(call.func, ast.Name)
            and call.func.id == "open"
            and ctx.aliases.get("open") is None
        ):
            return self.finding(
                ctx,
                call.lineno,
                call.col_offset,
                "blocking file open() inside async def stalls the event "
                "loop; open before entering the coroutine or use "
                "loop.run_in_executor(...)",
            )
        if _is_bare_queue_get(call):
            return self.finding(
                ctx,
                call.lineno,
                call.col_offset,
                ".get() without a timeout inside async def blocks the "
                "event loop forever if the peer died; use "
                "get(timeout=...) off-loop or an asyncio.Queue",
            )
        return None
