"""SL003 — mutable default arguments.

A ``def f(buckets=[])`` default is evaluated once at definition time and
shared by every call — in a streaming system that means every operator
instance silently shares one buffer, which corrupts state the first time
two partitions run in one process. Flags list/dict/set literals and
comprehensions, and bare ``list()``/``dict()``/``set()``/
``collections.deque()``/``collections.defaultdict()`` calls used as
parameter defaults.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

_MUTABLE_CALLS = {"list", "dict", "set", "deque", "defaultdict", "Counter", "OrderedDict"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        f = node.func
        name = f.attr if isinstance(f, ast.Attribute) else (
            f.id if isinstance(f, ast.Name) else None
        )
        return name in _MUTABLE_CALLS
    return False


@rule
class MutableDefaultRule(Rule):
    """Flags list/dict/set (literals or constructors) used as defaults."""

    rule_id = "SL003"
    description = (
        "mutable default argument shared across calls; default to None and "
        "construct inside the function"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            fname = getattr(node, "name", "<lambda>")
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        ctx,
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument in {fname}(); every call "
                        "shares one object — default to None instead",
                    )
