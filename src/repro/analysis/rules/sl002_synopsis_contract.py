"""SL002 — every synopsis must honour the update/merge contract.

A sketch that cannot ``merge`` cannot scale out across partitions, and a
``merge`` that skips the base compatibility check will happily combine
sketches with different widths or hash seeds and return garbage. For every
class deriving directly from ``SynopsisBase`` this rule requires:

* an ``update`` method (or the class is explicitly abstract);
* a ``_merge_into`` method **or** a ``merge`` override;
* any ``merge`` override must invoke the base compatibility check —
  either ``self._check_mergeable(...)`` or ``super().merge(...)``.

Classes that declare ``@abstractmethod`` members are treated as abstract
intermediates and exempted; subclasses inherit the obligations.

v2 adds the batch contract from the vectorized-ingest PR: an
``update_many`` override on any concrete ``SynopsisBase`` subclass
(transitive — the hierarchy is resolved project-wide) must either
delegate to scalar ``update`` or belong to a registered class, because
the registry-wide batch-equivalence suite is what proves a vectorized
path matches the scalar one. An unregistered, non-delegating override is
silent batch/scalar divergence waiting to happen.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding
from repro.analysis.project import SYNOPSIS_ROOT, ProjectModel


@rule
class SynopsisContractRule(Rule):
    """Enforces the update/merge contract on SynopsisBase subclasses."""

    rule_id = "SL002"
    description = (
        "SynopsisBase subclasses must define update and merge/_merge_into, "
        "any merge override must run the base compatibility check, and "
        "update_many overrides must delegate to update or be covered by "
        "the batch-equivalence suite"
    )
    scope = "project"

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        registered = project.registered_names()
        for relpath, name, cf in project.all_classes():
            if name == SYNOPSIS_ROOT or cf.get("abstract"):
                continue
            methods = cf.get("methods", {})
            if SYNOPSIS_ROOT in cf.get("bases", ()):
                yield from self._direct_contract(project, relpath, name, cf)
            # Batch contract applies to the whole transitive hierarchy:
            # a vectorized override deep in a subclass diverges from the
            # inherited scalar path just as silently as a direct one.
            update_many = methods.get("update_many")
            if (
                update_many is not None
                and project.derives_from(name, SYNOPSIS_ROOT)
                and not update_many["calls_self_update"]
                and name not in registered
            ):
                yield self.project_finding(
                    project,
                    relpath,
                    update_many["line"],
                    update_many["col"],
                    f"{name}.update_many neither delegates to self.update "
                    "nor is the class registered for the batch-equivalence "
                    "suite; a vectorized path can silently diverge from the "
                    "scalar contract",
                )

    def _direct_contract(
        self, project: ProjectModel, relpath: str, name: str, cf: dict
    ) -> Iterator[Finding]:
        methods = cf.get("methods", {})
        if "update" not in methods:
            yield self.project_finding(
                project,
                relpath,
                cf["line"],
                cf["col"],
                f"synopsis {name!r} does not define update(item)",
            )
        if "_merge_into" not in methods and "merge" not in methods:
            yield self.project_finding(
                project,
                relpath,
                cf["line"],
                cf["col"],
                f"synopsis {name!r} defines neither _merge_into nor "
                "merge; unmergeable sketches cannot scale out across "
                "partitions",
            )
        merge = methods.get("merge")
        if merge is not None and not merge["calls_compat_check"]:
            yield self.project_finding(
                project,
                relpath,
                merge["line"],
                merge["col"],
                f"{name}.merge overrides the base merge without "
                "calling self._check_mergeable(other) or super().merge()",
            )
