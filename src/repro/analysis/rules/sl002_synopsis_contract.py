"""SL002 — every synopsis must honour the update/merge contract.

A sketch that cannot ``merge`` cannot scale out across partitions, and a
``merge`` that skips the base compatibility check will happily combine
sketches with different widths or hash seeds and return garbage. For every
class deriving directly from ``SynopsisBase`` this rule requires:

* an ``update`` method (or the class is explicitly abstract);
* a ``_merge_into`` method **or** a ``merge`` override;
* any ``merge`` override must invoke the base compatibility check —
  either ``self._check_mergeable(...)`` or ``super().merge(...)``.

Classes that declare ``@abstractmethod`` members are treated as abstract
intermediates and exempted; subclasses inherit the obligations.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding

_BASE_NAME = "SynopsisBase"


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_abstract(cls: ast.ClassDef) -> bool:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in node.decorator_list:
                name = deco.attr if isinstance(deco, ast.Attribute) else (
                    deco.id if isinstance(deco, ast.Name) else None
                )
                if name in ("abstractmethod", "abstractproperty"):
                    return True
    return False


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _calls_compat_check(func: ast.FunctionDef) -> bool:
    """Whether *func* calls self._check_mergeable(...) or super().merge(...)."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        if isinstance(f, ast.Attribute):
            if f.attr == "_check_mergeable":
                return True
            if (
                f.attr == "merge"
                and isinstance(f.value, ast.Call)
                and isinstance(f.value.func, ast.Name)
                and f.value.func.id == "super"
            ):
                return True
    return False


@rule
class SynopsisContractRule(Rule):
    """Enforces the update/merge contract on SynopsisBase subclasses."""

    rule_id = "SL002"
    description = (
        "SynopsisBase subclasses must define update and merge/_merge_into, "
        "and any merge override must run the base compatibility check"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _BASE_NAME not in _base_names(node):
                continue
            if node.name == _BASE_NAME or _is_abstract(node):
                continue
            methods = _methods(node)
            if "update" not in methods:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"synopsis {node.name!r} does not define update(item)",
                )
            if "_merge_into" not in methods and "merge" not in methods:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"synopsis {node.name!r} defines neither _merge_into nor "
                    "merge; unmergeable sketches cannot scale out across "
                    "partitions",
                )
            merge = methods.get("merge")
            if merge is not None and not _calls_compat_check(merge):
                yield self.finding(
                    ctx,
                    merge.lineno,
                    merge.col_offset,
                    f"{node.name}.merge overrides the base merge without "
                    "calling self._check_mergeable(other) or super().merge()",
                )
