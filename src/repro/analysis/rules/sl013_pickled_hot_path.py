"""SL013 — pickled bulk data shipped through queues in cluster hot loops.

The cluster's original data plane pickled every tuple batch through a
``multiprocessing`` queue; the scaling bench showed that serialization
alone capped speedup (the BENCH_cluster inversion the shm transport was
built to fix). This rule is the lint that would have caught it: inside
``cluster/`` loop bodies, a ``.put(...)`` whose payload is pickled bytes
(``pickle.dumps`` inline or via a local name) or a numpy array is bulk
*data* riding the control plane — it belongs on the shared-memory rings
(:mod:`repro.cluster.shm`), with queues carrying only small control
messages (doorbells, acks, barriers).

Module-scoped and restricted to ``cluster/``: elsewhere a pickled put is
usually a one-shot handoff, not a per-batch hot path. The legacy queue
transport kept for A/B benchmarking suppresses the finding on its one
send site, which is exactly the documentation the suppression comment
exists to provide.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding

_PACKAGE = "cluster"
_PICKLE_CALLS = frozenset({"pickle.dumps", "pickle.dump"})
_NUMPY_PREFIX = "numpy."


def _payload_exprs(call: ast.Call) -> list[ast.AST]:
    return list(call.args) + [kw.value for kw in call.keywords]


def _names(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


@rule
class PickledHotPathRule(Rule):
    """Flags queue puts of pickled batches / numpy arrays in cluster loops."""

    rule_id = "SL013"
    description = (
        "pickled batch or numpy array shipped through a Queue inside a "
        "cluster/ loop; bulk data belongs on the shm data plane"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package(_PACKAGE):
            return
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(ctx, fn)

    def _check_function(
        self, ctx: ModuleContext, fn: ast.AST
    ) -> Iterator[Finding]:
        # Names bound (anywhere in this function) to pickled bytes or to
        # the result of a numpy call — the payloads a queue must not carry
        # per batch.
        pickled: set[str] = set()
        arrays: set[str] = set()
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            origin = ctx.resolve_call_target(node.value.func)
            if origin is None:
                continue
            targets = {t.id for t in node.targets if isinstance(t, ast.Name)}
            if origin in _PICKLE_CALLS:
                pickled.update(targets)
            elif origin.startswith(_NUMPY_PREFIX):
                arrays.update(targets)

        seen: set[tuple[int, int]] = set()
        for loop in ast.walk(fn):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for call in ast.walk(loop):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if not isinstance(func, ast.Attribute) or func.attr != "put":
                    continue
                where = (call.lineno, call.col_offset)
                if where in seen:
                    continue  # nested loops walk the same call twice
                message = self._payload_offence(ctx, call, pickled, arrays)
                if message is not None:
                    seen.add(where)
                    yield self.finding(ctx, call.lineno, call.col_offset, message)

    def _payload_offence(
        self,
        ctx: ModuleContext,
        call: ast.Call,
        pickled: set[str],
        arrays: set[str],
    ) -> str | None:
        for expr in _payload_exprs(call):
            for sub in ast.walk(expr):
                if (
                    isinstance(sub, ast.Call)
                    and ctx.resolve_call_target(sub.func) in _PICKLE_CALLS
                ):
                    return (
                        "payload is pickled inline in a cluster loop; ship "
                        "tuple batches over the shm rings and keep queues "
                        "for control traffic"
                    )
            names = _names(expr)
            if names & pickled:
                return (
                    "payload carries pickled bytes "
                    f"({', '.join(sorted(names & pickled))}) in a cluster "
                    "loop; ship tuple batches over the shm rings and keep "
                    "queues for control traffic"
                )
            if names & arrays:
                return (
                    "payload carries a numpy array "
                    f"({', '.join(sorted(names & arrays))}) through a Queue "
                    "in a cluster loop; queue transport pickles it per "
                    "send — use the shm data plane"
                )
        return None
