"""SL006 — concrete synopses missing from the name registry.

The registry (``repro/core/registry.py``) is how configuration-driven
systems — the pipeline DSL, the Lambda speed layer, benchmark sweeps —
instantiate sketches by name. A synopsis that never gets registered is
invisible to all of them, and the gap only surfaces when someone's config
fails at runtime. This project-scoped rule rebuilds the class hierarchy
across the whole scanned tree, finds every *concrete* transitive subclass
of ``SynopsisBase`` (no ``@abstractmethod`` members, public name), and
reports the ones the registry module never mentions.

Registration is detected syntactically: the class name must appear
somewhere in ``core/registry.py`` (an import, a ``builtins`` table entry,
or a ``register(...)`` call all count). A second registration surface was
added with the cluster subsystem: classes wired into the state-shipping
plane via ``serialization.register_reducer(Cls, ...)`` are constructible
by the coordinator from shipped bytes, so a ``register_reducer`` call
anywhere in the scanned tree also counts — shipped-only synopses are
deliberate, not drift. When the scanned tree contains no
``core/registry.py`` the rule stays silent — there is nothing to drift
from.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.context import ModuleContext
from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding

_BASE_NAME = "SynopsisBase"
_REGISTRY_SUFFIX = "core/registry.py"
_REDUCER_FUNC = "register_reducer"


def _reducer_registered_names(ctxs: Sequence["ModuleContext"]) -> set[str]:
    """Class names passed to ``register_reducer(...)`` anywhere in the tree.

    The cluster's state-shipping plane (:mod:`repro.core.stateship` over
    :mod:`repro.common.serialization`) can rebuild any class with a
    registered reducer from shipped bytes — for the purposes of this rule
    that is a registration surface on par with the name registry.
    """
    names: set[str] = set()
    for ctx in ctxs:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            func_name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if func_name != _REDUCER_FUNC or not node.args:
                continue
            target = node.args[0]
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                names.add(target.attr)
    return names


class _ClassInfo:
    __slots__ = ("name", "ctx", "lineno", "col", "bases", "abstract")

    def __init__(self, node: ast.ClassDef, ctx: ModuleContext) -> None:
        self.name = node.name
        self.ctx = ctx
        self.lineno = node.lineno
        self.col = node.col_offset
        self.bases = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                self.bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                self.bases.append(base.attr)
        self.abstract = _declares_abstract(node)


def _declares_abstract(node: ast.ClassDef) -> bool:
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in item.decorator_list:
                name = deco.attr if isinstance(deco, ast.Attribute) else (
                    deco.id if isinstance(deco, ast.Name) else None
                )
                if name in ("abstractmethod", "abstractproperty"):
                    return True
    return False


def _referenced_names(tree: ast.Module) -> set[str]:
    """Names the registry module actually *uses* (not merely imports).

    An import binds a name but registers nothing; the class has to appear
    in an expression — a builtins-table value, a ``register(...)`` call —
    to count. This is what catches the imported-but-never-registered case.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


@rule
class RegistryDriftRule(Rule):
    """Cross-checks the class hierarchy against core/registry.py."""

    rule_id = "SL006"
    description = (
        "concrete SynopsisBase subclass never registered in core/registry; "
        "config-driven systems cannot construct it by name"
    )
    scope = "project"

    def check_project(self, ctxs: Sequence[ModuleContext]) -> Iterator[Finding]:
        registry_ctx = next(
            (c for c in ctxs if c.relpath.endswith(_REGISTRY_SUFFIX)), None
        )
        if registry_ctx is None:
            return

        classes: dict[str, _ClassInfo] = {}
        for ctx in ctxs:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    classes.setdefault(node.name, _ClassInfo(node, ctx))

        def derives(name: str, seen: frozenset[str] = frozenset()) -> bool:
            if name == _BASE_NAME:
                return True
            if name in seen or name not in classes:
                return False
            return any(
                derives(b, seen | {name}) for b in classes[name].bases
            )

        registered = _referenced_names(registry_ctx.tree)
        registered |= _reducer_registered_names(ctxs)
        for info in classes.values():
            if info.name == _BASE_NAME or info.name.startswith("_"):
                continue
            if info.abstract or not derives(info.name):
                continue
            if info.name in registered:
                continue
            yield self.finding(
                info.ctx,
                info.lineno,
                info.col,
                f"synopsis {info.name!r} is never registered in "
                f"{registry_ctx.relpath}; add it to the builtins table or "
                "suppress if it is internal",
            )
