"""SL006 — concrete synopses missing from the name registry.

The registry (``repro/core/registry.py``) is how configuration-driven
systems — the pipeline DSL, the Lambda speed layer, benchmark sweeps —
instantiate sketches by name. A synopsis that never gets registered is
invisible to all of them, and the gap only surfaces when someone's config
fails at runtime. This project-scoped rule walks the class hierarchy the
project model resolved across the whole scanned tree, finds every
*concrete* transitive subclass of ``SynopsisBase`` (no ``@abstractmethod``
members, public name), and reports the ones the registry module never
mentions.

Registration is detected syntactically: the class name must appear
somewhere in ``core/registry.py`` (an import, a ``builtins`` table entry,
or a ``register(...)`` call all count). A second registration surface was
added with the cluster subsystem: classes wired into the state-shipping
plane via ``serialization.register_reducer(Cls, ...)`` are constructible
by the coordinator from shipped bytes, so a ``register_reducer`` call
anywhere in the scanned tree also counts — shipped-only synopses are
deliberate, not drift. When the scanned tree contains no
``core/registry.py`` the rule stays silent — there is nothing to drift
from.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding
from repro.analysis.project import SYNOPSIS_ROOT, ProjectModel


@rule
class RegistryDriftRule(Rule):
    """Cross-checks the class hierarchy against core/registry.py."""

    rule_id = "SL006"
    description = (
        "concrete SynopsisBase subclass never registered in core/registry; "
        "config-driven systems cannot construct it by name"
    )
    scope = "project"

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        if project.registry_relpath is None:
            return
        registered = project.registered_names()
        for relpath, name, cf in project.all_classes():
            if name == SYNOPSIS_ROOT or name.startswith("_"):
                continue
            if cf.get("abstract") or not project.derives_from(
                name, SYNOPSIS_ROOT
            ):
                continue
            if name in registered:
                continue
            yield self.project_finding(
                project,
                relpath,
                cf["line"],
                cf["col"],
                f"synopsis {name!r} is never registered in "
                f"{project.registry_relpath}; add it to the builtins table "
                "or suppress if it is internal",
            )
