"""SL012 — unbounded obs label cardinality from tuple-derived values.

``repro.obs`` labeled metrics create one child series per distinct label
combination, held forever in the registry. A label value derived from
the stream payload — a user id, a URL, a raw key — turns a fixed-size
counter into an unbounded per-key table: memory grows with stream
cardinality and every exporter scrape ships the whole thing. The heavy
hitters the paper tracks are exactly the workloads where this explodes.

Evidence comes from the facts extractor's local taint pass: inside a
bolt/spout ``process``/``execute`` method the payload parameter is the
taint seed, simple assignments propagate it, and any ``.labels(...)``
call whose value expression references a tainted name is flagged. Label
values should come from bounded configuration — task index, operator
name, shard id — never from the data.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding
from repro.analysis.project import BOLT_ROOT, SPOUT_ROOT, ProjectModel


@rule
class LabelCardinalityRule(Rule):
    """Flags payload-derived metric label values."""

    rule_id = "SL012"
    description = (
        "tuple-derived value used as a metric label; label cardinality "
        "grows with the stream and the registry never forgets a series"
    )
    scope = "project"

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        seen: set[tuple[str, str]] = set()
        for root in (BOLT_ROOT, SPOUT_ROOT):
            for relpath, name, cf in project.subclasses_of(root):
                if (relpath, name) in seen:
                    continue
                seen.add((relpath, name))
                for method_name, mf in cf.get("methods", {}).items():
                    for line, col, label in mf.get("tainted_label_calls", ()):
                        yield self.project_finding(
                            project,
                            relpath,
                            line,
                            col,
                            f"{name}.{method_name} passes a payload-derived "
                            f"value as metric label {label!r}; every "
                            "distinct stream value becomes a permanent "
                            "child series — label on bounded config (task "
                            "index, operator name) instead",
                        )
