"""SL004 — wall-clock reads inside algorithm modules.

Stream algorithms must be driven by *event time or logical time supplied
by the caller*, never by the machine's clock: a sketch that calls
``time.time()`` gives different answers on replay, which breaks the
recompute-from-log recovery model (Lambda batch layer, at-least-once
replay) and makes tests flaky. Wall-clock access is allowed only under
``platform/`` — the runtime layer that owns real time (latency metrics,
timeouts) — under ``cluster/``, its multi-process sibling (reply
deadlines, liveness checks, and checkpoint pacing are genuinely about
the machine's clock), under ``bench/``, where elapsed wall time is the
*measurement itself* (the ingest-throughput harness), and under ``obs/``,
the observability plane, whose span timing and overhead accounting
legitimately read the clock (a trace without real timestamps measures
nothing); everywhere else the timestamp must arrive as data.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

# platform/ owns real time; cluster/ extends it across processes
# (heartbeats, reply deadlines); serving/ stamps snapshot ages and
# cache TTLs; bench/ measures it; obs/ records it (spans, queue
# waits); analysis/ is the linter's own tooling.
_EXEMPT_PACKAGES = ("platform", "cluster", "serving", "analysis", "bench", "obs")


@rule
class WallClockRule(Rule):
    """Flags clock reads outside the platform/ runtime layer."""

    rule_id = "SL004"
    description = (
        "wall-clock read in an algorithm module; timestamps must be event "
        "time passed in by the caller (only platform/ may read the clock)"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if any(ctx.in_package(pkg) for pkg in _EXEMPT_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call_target(node.func)
            if target in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"{target}() read in an algorithm module; accept the "
                    "timestamp as a parameter so replay is deterministic",
                )
