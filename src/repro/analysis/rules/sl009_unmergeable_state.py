"""SL009 — bolt state that merge-on-query silently drops.

``repro.cluster`` answers queries by folding shard partials with
``SynopsisBase.merge`` (merge-on-query). That plane only sees state a
bolt exposes through ``snapshot()``, and it can only *combine* state that
knows how to merge. Two failure shapes, both silent at parallelism 1:

* a bolt that accumulates in ``self.*`` during ``process`` but never
  overrides ``snapshot`` below the ``Bolt`` root — checkpoints record
  nothing, crash recovery restarts the bolt empty, and merge-on-query
  has nothing to fold (**error**, at the class);
* a bolt whose ``snapshot`` does expose the accumulated attribute, but
  the attribute is a plain container (dict/list/set/...) rather than a
  ``SynopsisBase`` or reducer-registered type — each shard reports only
  its own partial and nothing can fold them (**warning**, at the
  attribute; legitimate for explicitly sharded sinks, hence warning).

Inheritance is resolved project-wide: a ``snapshot`` override anywhere
below the runtime root counts, so abstract intermediates that implement
snapshotting cover their subclasses.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import BOLT_ROOT, SYNOPSIS_ROOT, ProjectModel

#: Plain accumulator types that cannot fold shard partials by themselves.
_PLAIN_ACCUMULATORS = frozenset(
    {"dict", "list", "set", "frozenset", "deque", "defaultdict", "Counter", "tuple"}
)

#: Methods where per-tuple state accumulation happens.
_HOT_METHODS = ("process", "execute", "flush")

_ROOT_STOP = frozenset({BOLT_ROOT})


@rule
class UnmergeableBoltStateRule(Rule):
    """Flags bolt state invisible to (or unfoldable by) merge-on-query."""

    rule_id = "SL009"
    description = (
        "bolt accumulates state that is neither a SynopsisBase nor "
        "reducer-registered; merge-on-query silently drops it at "
        "parallelism > 1"
    )
    scope = "project"

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        for relpath, name, cf in project.subclasses_of(
            BOLT_ROOT, concrete_only=True
        ):
            mutated: dict[str, tuple[int, int]] = {}
            for method in _HOT_METHODS:
                resolved = project.resolve_method(
                    name, method, stop_roots=_ROOT_STOP
                )
                if resolved is None:
                    continue
                for attr, line, col in resolved[1].get("self_mutations", ()):
                    mutated.setdefault(attr, (line, col))
            if not mutated:
                continue

            snapshot = project.resolve_method(
                name, "snapshot", stop_roots=_ROOT_STOP
            )
            if snapshot is None:
                attrs = ", ".join(sorted(mutated))
                yield self.project_finding(
                    project,
                    relpath,
                    cf["line"],
                    cf["col"],
                    f"bolt {name!r} accumulates state ({attrs}) but never "
                    "overrides snapshot(); checkpoints record nothing and "
                    "merge-on-query silently drops it at parallelism > 1",
                )
                continue

            exposed = set(snapshot[1].get("self_reads", ()))
            for attr in sorted(mutated.keys() & exposed):
                info = project.resolve_attr(name, attr)
                if info is None:
                    continue
                label = info.get("type")
                if label not in _PLAIN_ACCUMULATORS:
                    continue
                yield self.project_finding(
                    project,
                    relpath,
                    info["line"],
                    info["col"],
                    f"{name}.{attr} is snapshot state held in a plain "
                    f"{label}, neither a {SYNOPSIS_ROOT} nor "
                    "reducer-registered; shards each report their own "
                    "partial and merged_synopsis cannot fold them at "
                    "parallelism > 1",
                    severity=Severity.WARNING,
                )
