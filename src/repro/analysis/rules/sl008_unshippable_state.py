"""SL008 — operator state serialization v2 cannot ship.

``repro.core.stateship`` snapshots operator ``self.*`` state through
``repro.common.serialization`` to cross the spawn boundary (checkpoints,
crash recovery, shard hand-off). That codec covers primitives, the
``_COMPOUND_TYPES`` containers (dict/list/set/frozenset/deque, ndarray,
``random.Random``, ``np.random.Generator``, ``itertools.count``),
structurally-encoded ``repro.*`` instances, and anything wired in with
``register_reducer``. Everything else — locks, queues, sockets, open
files, live generators — fails *at runtime*, on the first checkpoint of
a deployed topology.

This rule moves that failure to lint time: for every ``Bolt``/``Spout``/
``SynopsisBase`` subclass (hierarchy resolved project-wide) it checks the
inferred type of each ``__init__``-established attribute against the
serializable inventory and flags known-unshippable constructors.
Attributes whose type cannot be inferred are left alone — the rule only
fires on positive evidence.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding
from repro.analysis.project import BOLT_ROOT, SPOUT_ROOT, SYNOPSIS_ROOT, ProjectModel

#: Canonical labels serialization v2 handles (primitives + _COMPOUND_TYPES).
_SERIALIZABLE = frozenset(
    {
        "NoneType",
        "bool",
        "int",
        "float",
        "str",
        "bytes",
        "bytearray",
        "tuple",
        "list",
        "set",
        "frozenset",
        "dict",
        "defaultdict",
        "Counter",
        "deque",
        "ndarray",
        "random.Random",
        "np.Generator",
        "itertools.count",
        # callables are skipped by capture as configuration, not state
        "callable",
    }
)

#: Labels that are positively unshippable regardless of constructor module.
_UNSHIPPABLE_LABELS = {
    "generator": "a live generator",
    "iterator": "a live iterator",
    "file": "an open file handle",
}

#: Stdlib roots whose objects hold OS resources serialization v2 refuses.
_UNSHIPPABLE_ROOTS = frozenset(
    {
        "threading",
        "queue",
        "socket",
        "subprocess",
        "multiprocessing",
        "concurrent",
        "asyncio",
        "sqlite3",
        "mmap",
        "weakref",
        "ctypes",
        "select",
        "selectors",
        "ssl",
        "io",
    }
)


@rule
class UnshippableStateRule(Rule):
    """Flags operator state the spawn boundary will reject."""

    rule_id = "SL008"
    description = (
        "operator state attribute not covered by serialization v2 "
        "(_COMPOUND_TYPES/register_reducer); state shipping fails at the "
        "spawn boundary"
    )
    scope = "project"

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        seen: set[tuple[str, str]] = set()
        for root in (BOLT_ROOT, SPOUT_ROOT, SYNOPSIS_ROOT):
            for relpath, name, cf in project.subclasses_of(
                root, concrete_only=True
            ):
                if (relpath, name) in seen:
                    continue
                seen.add((relpath, name))
                for attr, info in cf.get("attrs", {}).items():
                    problem = self._classify(info, project)
                    if problem is None:
                        continue
                    yield self.project_finding(
                        project,
                        relpath,
                        info["line"],
                        info["col"],
                        f"{name}.{attr} is {problem}, which serialization "
                        "v2 cannot ship across the spawn boundary; "
                        "checkpoint/restore of this operator will fail — "
                        "rebuild it in prepare() or register a reducer",
                    )

    def _classify(self, info: dict, project: ProjectModel) -> str | None:
        """A human-readable problem description, or None when shippable."""
        label = info.get("type")
        callee = info.get("callee")
        if label in _SERIALIZABLE:
            return None
        if label in _UNSHIPPABLE_LABELS:
            return _UNSHIPPABLE_LABELS[label]
        if label is not None and label.startswith("class:"):
            # project classes are structurally encoded (trusted repro.*
            # prefix) and reducer-registered classes have explicit hooks
            return None
        if callee:
            root = callee.split(".")[0]
            if root in _UNSHIPPABLE_ROOTS:
                return f"built from {callee}()"
        return None
