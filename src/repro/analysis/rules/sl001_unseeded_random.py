"""SL001 — unseeded randomness breaks reproducibility.

The paper's scale-out story (Section 2) assumes a partitioned computation
can be replayed bit-for-bit; that only holds when every random draw flows
from an explicit seed. The repo's convention is ``make_rng`` /
``make_np_rng`` / ``derive_seed`` from ``repro.common.rng``. This rule
flags:

* calls into the global ``random.*`` / ``numpy.random.*`` namespaces
  (``random.random()``, ``np.random.rand()``, ``np.random.seed()``, ...),
  which share mutable global state across the process;
* explicitly constructing a generator *without* a seed argument
  (``random.Random()``, ``np.random.default_rng()``).

``repro/common/rng.py`` itself is exempt — it is the one sanctioned home
for generator construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding

#: Constructors that take an explicit seed and are therefore allowed
#: (when actually given one).
_SEEDED_CONSTRUCTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
}

_EXEMPT_SUFFIX = "common/rng.py"


@rule
class UnseededRandomRule(Rule):
    """Flags global-RNG calls and unseeded generator construction."""

    rule_id = "SL001"
    description = (
        "direct random.*/np.random.* use outside common/rng.py; "
        "thread a seed through make_rng/make_np_rng/derive_seed instead"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.relpath.endswith(_EXEMPT_SUFFIX):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call_target(node.func)
            if target is None:
                continue
            if not (target.startswith("random.") or target.startswith("numpy.random.")):
                continue
            if target in _SEEDED_CONSTRUCTORS:
                if node.args or node.keywords:
                    continue  # explicitly seeded (or deliberately passing None)
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"{target}() constructed without a seed; "
                    "use repro.common.rng.make_rng(seed)/make_np_rng(seed)",
                )
            else:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"call to {target}() uses process-global RNG state; "
                    "use a generator from repro.common.rng (make_rng/"
                    "make_np_rng) seeded via derive_seed",
                )
