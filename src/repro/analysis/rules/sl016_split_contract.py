"""SL016 — elastic split contract and migration-barrier discipline.

The elastic runtime's correctness rests on two statically checkable
disciplines, and silent violations of either corrupt answers only at
rescale time — the worst possible moment to discover them:

* **split must invert merge.** ``merge(*split(s, n))`` must reproduce
  ``s`` exactly (``tests/core/test_split_roundtrip.py`` pins it by
  fingerprint). A synopsis that defines ``_split_into`` but has no
  ``_merge_into`` anywhere below ``SynopsisBase`` has an inverse-less
  split: the re-sharded partials can never be folded back (**error**).
  And ``_split_into`` must not mutate ``self`` — the planner treats the
  merged source as still-live (drain-and-restart parks it on task 0
  after a failed split), so a destructive split tears state exactly when
  the fallback needs it intact (**error**).
* **state surgery stays inside the barrier.** In ``elastic`` packages,
  any function that captures, re-shards or restores live cluster state
  (``.merge(...)``/``.split(...)`` on synopses, ``stateship``
  capture/restore, or worker ``snapshot``/``restore`` messages) is
  *migration surgery*; calling one outside a ``with
  migration_barrier(...)`` block operates on a torn cut — tuples still
  in flight mutate shards mid-copy (**error** at the call site).
  Barrier-less surgery helpers may compose each other freely inside
  their bodies — the barrier obligation sits where other code invokes
  them — but a function that opens a barrier is an orchestrator and is
  held to it: any surgery it performs or delegates outside the ``with``
  is flagged.

The surgery check is lexical by design: a function that wants to be
callable without a barrier must take the barrier itself (as
``perform_rescale`` does), which makes the protocol's entry points
visibly self-quiescing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding
from repro.analysis.project import SYNOPSIS_ROOT, ProjectModel

_ROOT_STOP = frozenset({SYNOPSIS_ROOT})

#: Attribute calls that mutate or re-deal synopsis state.
_SURGERY_ATTRS = frozenset({"merge", "split"})

#: ``stateship`` entry points that serialize/deserialize live state.
_STATESHIP_ATTRS = frozenset({"capture", "restore", "restore_into"})

#: Worker-protocol messages that move shard state across the data plane.
_SURGERY_MESSAGES = frozenset({"snapshot", "restore"})


def _in_elastic_package(relpath: str) -> bool:
    return "elastic" in relpath.split("/")[:-1] or relpath.split("/")[
        -1
    ].startswith("elastic")


def _is_barrier_with(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            func = expr.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name == "migration_barrier":
                return True
    return False


def _is_surgery_call(call: ast.Call) -> str | None:
    """The surgery kind a call performs directly, or None."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr in _SURGERY_ATTRS:
        # `"a b".split()` is string work, not state surgery.
        if isinstance(func.value, ast.Constant):
            return None
        return f".{func.attr}()"
    if (
        func.attr in _STATESHIP_ATTRS
        and isinstance(func.value, ast.Name)
        and func.value.id == "stateship"
    ):
        return f"stateship.{func.attr}()"
    if func.attr == "put" and call.args:
        arg = call.args[0]
        if isinstance(arg, ast.Tuple) and arg.elts:
            head = arg.elts[0]
            if (
                isinstance(head, ast.Constant)
                and head.value in _SURGERY_MESSAGES
            ):
                return f"worker {head.value!r} message"
    return None


class _BarrierWalker:
    """Per-function walk tracking lexical ``with migration_barrier`` depth."""

    def __init__(self) -> None:
        self.unguarded: list[tuple[ast.Call, str]] = []

    def walk(self, body: list[ast.stmt], guarded: bool) -> None:
        for stmt in body:
            self._visit(stmt, guarded)

    def _visit(self, node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs get their own analysis
        if isinstance(node, ast.With):
            inner = guarded or _is_barrier_with(node)
            for item in node.items:
                self._visit(item.context_expr, guarded)
            self.walk(node.body, inner)
            return
        if isinstance(node, ast.Call) and not guarded:
            kind = _is_surgery_call(node)
            if kind is not None:
                self.unguarded.append((node, kind))
        for child in ast.iter_child_nodes(node):
            self._visit(child, guarded)


@rule
class SplitContractRule(Rule):
    """Flags inverse-less/destructive splits and un-barriered migration."""

    rule_id = "SL016"
    description = (
        "synopsis split without a merge inverse, split mutating self, or "
        "migration state surgery outside a migration_barrier block"
    )
    scope = "project"

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        yield from self._check_split_contract(project)
        yield from self._check_barrier_discipline(project)

    # -- split/merge inverse pair -------------------------------------------

    def _check_split_contract(self, project: ProjectModel) -> Iterator[Finding]:
        for relpath, name, cf in project.subclasses_of(SYNOPSIS_ROOT):
            split = cf.get("methods", {}).get("_split_into")
            if split is None:
                continue
            merge = project.resolve_method(
                name, "_merge_into", stop_roots=_ROOT_STOP
            )
            if merge is None:
                yield self.project_finding(
                    project,
                    relpath,
                    split["line"],
                    split["col"],
                    f"{name} defines _split_into but no _merge_into below "
                    f"{SYNOPSIS_ROOT}: the split has no inverse, so "
                    "re-sharded partials can never be folded back "
                    "(merge(*split(s, n)) must equal s)",
                )
            mutations = split.get("self_mutations", ())
            if mutations:
                attrs = ", ".join(sorted({m[0] for m in mutations}))
                line, col = mutations[0][1], mutations[0][2]
                yield self.project_finding(
                    project,
                    relpath,
                    line,
                    col,
                    f"{name}._split_into mutates self ({attrs}); split must "
                    "leave the source intact — the drain-and-restart "
                    "fallback re-parks the merged source after a failed "
                    "split, and a destructive split tears it",
                )

    # -- barrier discipline in elastic packages -----------------------------

    def _check_barrier_discipline(
        self, project: ProjectModel
    ) -> Iterator[Finding]:
        for relpath, facts in project.modules.items():
            if not _in_elastic_package(relpath):
                continue
            try:
                source = open(facts["path"], encoding="utf-8").read()
                tree = ast.parse(source)
            except (OSError, SyntaxError, KeyError):
                continue
            surgery: dict[str, ast.FunctionDef] = {}
            functions: list[ast.FunctionDef] = [
                node
                for node in ast.walk(tree)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            for func in functions:
                if any(
                    _is_surgery_call(node)
                    for node in ast.walk(func)
                    if isinstance(node, ast.Call)
                ):
                    surgery[func.name] = func
            for func in functions:
                if func.name == "migration_barrier":
                    continue
                has_barrier = any(
                    isinstance(node, ast.With) and _is_barrier_with(node)
                    for node in ast.walk(func)
                )
                if func.name in surgery and not has_barrier:
                    # Barrier-less surgery helpers compose surgery by
                    # definition; the barrier obligation sits at their
                    # call sites. An orchestrator that *does* open a
                    # barrier is held to it for everything it touches.
                    continue
                walker = _BarrierWalker()
                walker.walk(func.body, guarded=False)
                for call, kind in walker.unguarded:
                    yield self.project_finding(
                        project,
                        relpath,
                        call.lineno,
                        call.col_offset,
                        f"migration state surgery ({kind}) outside a `with "
                        "migration_barrier(...)` block: the cluster is not "
                        "quiesced, so captured/restored state is a torn cut "
                        "with tuples still in flight",
                    )
                for call in (
                    node
                    for node in ast.walk(func)
                    if isinstance(node, ast.Call)
                ):
                    target = call.func
                    if (
                        isinstance(target, ast.Name)
                        and target.id in surgery
                        and not self._call_guarded(func, call)
                    ):
                        yield self.project_finding(
                            project,
                            relpath,
                            call.lineno,
                            call.col_offset,
                            f"call to migration surgery {target.id}() "
                            "outside a `with migration_barrier(...)` "
                            "block: state is captured/re-dealt on a "
                            "non-quiescent cluster",
                        )

    @staticmethod
    def _call_guarded(func: ast.AST, call: ast.Call) -> bool:
        """Whether *call* sits lexically under a barrier ``with`` in *func*."""

        def contains(node: ast.AST) -> bool:
            return any(child is call or contains(child) for child in
                       ast.iter_child_nodes(node))

        guarded: list[bool] = []

        def visit(node: ast.AST, under: bool) -> None:
            if node is call:
                guarded.append(under)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                node is not func
            ):
                return
            inner = under or (
                isinstance(node, ast.With) and _is_barrier_with(node)
            )
            for child in ast.iter_child_nodes(node):
                visit(child, inner)

        visit(func, False)
        return bool(guarded) and guarded[0]
