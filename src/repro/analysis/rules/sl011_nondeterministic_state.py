"""SL011 — nondeterminism reaching checkpointed state.

Checkpoint fingerprints (``repro.bench.fingerprint``) and replay
determinism both require that the state a synopsis or bolt carries is a
pure function of the tuples it saw. Two constructs break that from
*inside* the process:

* ``id(...)`` — per-process, per-run addresses; any state or key derived
  from one differs across a restore or between shards (**error**);
* iterating a ``self.*`` ``set``/``frozenset`` (or popping from one) —
  iteration order depends on string hash randomisation, so any state
  folded in iteration order differs run to run (**warning**: harmless
  when the fold is commutative, but then ``sorted()`` costs little and
  proves it).

Scoped to methods of ``SynopsisBase``/``Bolt``/``Spout`` subclasses
(hierarchy project-wide) — that is the state that gets fingerprinted,
checkpointed, and replayed. Set-iteration evidence needs the inferred
attribute type from ``__init__``, which is exactly what the project
model provides.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import BOLT_ROOT, SPOUT_ROOT, SYNOPSIS_ROOT, ProjectModel

_SET_TYPES = frozenset({"set", "frozenset"})


@rule
class NondeterministicStateRule(Rule):
    """Flags id()/set-order dependence in fingerprinted state paths."""

    rule_id = "SL011"
    description = (
        "nondeterminism in checkpointed-state code (id(), unordered set "
        "iteration); fingerprints and replay diverge across processes"
    )
    scope = "project"

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        seen: set[tuple[str, str]] = set()
        for root in (SYNOPSIS_ROOT, BOLT_ROOT, SPOUT_ROOT):
            for relpath, name, cf in project.subclasses_of(root):
                if (relpath, name) in seen:
                    continue
                seen.add((relpath, name))
                for method_name, mf in cf.get("methods", {}).items():
                    yield from self._check_method(
                        project, relpath, name, method_name, mf
                    )

    def _check_method(
        self,
        project: ProjectModel,
        relpath: str,
        class_name: str,
        method_name: str,
        mf: dict,
    ) -> Iterator[Finding]:
        for line, col in mf.get("id_calls", ()):
            yield self.project_finding(
                project,
                relpath,
                line,
                col,
                f"{class_name}.{method_name} uses id(); object addresses "
                "are per-process and per-run, so state derived from them "
                "breaks checkpoint fingerprints and replay",
            )
        for line, col, attr in mf.get("self_iterations", ()):
            if self._is_set_attr(project, class_name, attr):
                yield self.project_finding(
                    project,
                    relpath,
                    line,
                    col,
                    f"{class_name}.{method_name} iterates self.{attr} (a "
                    "set); iteration order varies with hash randomisation "
                    "— iterate sorted(...) so checkpointed state is "
                    "reproducible",
                    severity=Severity.WARNING,
                )
        for line, col, attr in mf.get("self_attr_pops", ()):
            if self._is_set_attr(project, class_name, attr):
                yield self.project_finding(
                    project,
                    relpath,
                    line,
                    col,
                    f"{class_name}.{method_name} pops from self.{attr} (a "
                    "set); set.pop() removes an arbitrary element, so "
                    "replayed runs diverge",
                    severity=Severity.WARNING,
                )

    def _is_set_attr(
        self, project: ProjectModel, class_name: str, attr: str
    ) -> bool:
        info = project.resolve_attr(class_name, attr)
        return info is not None and info.get("type") in _SET_TYPES
