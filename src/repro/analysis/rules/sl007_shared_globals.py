"""SL007 — module-level mutable globals mutated from operator code paths.

Under ``repro.cluster`` every shard runs the topology in its own spawned
process: a module-level ``dict``/``list``/``set``/``Counter`` mutated
from a bolt, spout, or cluster-runtime function is *per-process shadow
state*. It looks correct at parallelism 1, silently diverges at
parallelism > 1 (each worker mutates its own copy; merge-on-query never
sees any of them), and survives neither checkpoints nor crash recovery.
State belongs on the operator instance where stateship captures it.

The project model supplies both halves of the evidence: the module's
global table with inferred types (only mutable containers count) and the
cross-module hierarchy that decides whether the mutating function is an
operator method (transitive ``Bolt``/``Spout`` subclass, anywhere in the
tree) or cluster-runtime code (any function in a ``cluster/`` module).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Rule, rule
from repro.analysis.facts import MUTABLE_CONTAINER_TYPES
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectModel


def _in_cluster(relpath: str) -> bool:
    return relpath.split("/")[0] == "cluster"


@rule
class SharedGlobalMutationRule(Rule):
    """Flags per-process shadow state behind module globals."""

    rule_id = "SL007"
    description = (
        "mutable module-level global mutated from bolt/worker code; "
        "per-process copies silently diverge under repro.cluster"
    )
    scope = "project"

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        for relpath, facts in project.modules.items():
            mutable_globals = {
                name
                for name, info in facts.get("module_globals", {}).items()
                if info.get("type") in MUTABLE_CONTAINER_TYPES
            }
            if not mutable_globals:
                continue
            cluster_module = _in_cluster(relpath)
            for class_name, cf in facts.get("classes", {}).items():
                if not (
                    cluster_module or project.is_stream_operator(class_name)
                ):
                    continue
                for method_name, mf in cf.get("methods", {}).items():
                    yield from self._mutations(
                        project,
                        relpath,
                        mf,
                        mutable_globals,
                        f"{class_name}.{method_name}",
                    )
            if cluster_module:
                for func_name, ff in facts.get("functions", {}).items():
                    yield from self._mutations(
                        project, relpath, ff, mutable_globals, func_name
                    )

    def _mutations(
        self,
        project: ProjectModel,
        relpath: str,
        func: dict,
        mutable_globals: set[str],
        where: str,
    ) -> Iterator[Finding]:
        for name, line, col, kind in func.get("global_mutations", ()):
            if name not in mutable_globals:
                continue
            yield self.project_finding(
                project,
                relpath,
                line,
                col,
                f"{where} mutates module-level global {name!r} ({kind}); "
                "each cluster shard gets its own copy, so this state "
                "diverges at parallelism > 1 and is invisible to "
                "checkpoints and merge-on-query — keep it on the operator "
                "instance instead",
            )
