"""SL005 — bare/overbroad ``except`` that swallows exceptions.

In the executor and ack paths an exception *is* the failure signal: the
acker times the tuple tree out, replays from the spout, and at-least-once
semantics do the rest. A handler that catches everything and does nothing
converts a recoverable failure into silent data loss. Flags:

* bare ``except:`` anywhere (it even catches ``KeyboardInterrupt``);
* ``except Exception`` / ``except BaseException`` whose body is only
  ``pass`` / ``...`` / ``continue`` — i.e. the exception is dropped on the
  floor with no handling, logging, or re-raise.

Handlers with real recovery logic (supervision restarts, fault-injection
accounting) are untouched.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding

_BROAD = {"Exception", "BaseException"}


def _catches_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    names: list[ast.expr] = []
    if t is None:
        return True
    if isinstance(t, ast.Tuple):
        names = list(t.elts)
    else:
        names = [t]
    for n in names:
        name = n.attr if isinstance(n, ast.Attribute) else (
            n.id if isinstance(n, ast.Name) else None
        )
        if name in _BROAD:
            return True
    return False


def _body_swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing with the exception."""
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / `...`
        return False
    return True


@rule
class SwallowedExceptionRule(Rule):
    """Flags bare excepts and broad handlers with do-nothing bodies."""

    rule_id = "SL005"
    description = (
        "bare or overbroad except whose body discards the exception; "
        "failures must propagate so ack/replay can recover the tuple"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "bare except: catches everything including "
                    "KeyboardInterrupt/SystemExit; name the exception types",
                )
            elif _catches_broad(node) and _body_swallows(node):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "except Exception with an empty body silently swallows "
                    "failures; handle, log, or re-raise so replay can fire",
                )
