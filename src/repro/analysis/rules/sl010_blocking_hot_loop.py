"""SL010 — blocking calls in cluster worker/coordinator hot loops.

Crash recovery in ``repro.cluster`` depends on every process noticing
control messages (heartbeats, snapshot requests, stop) promptly. A bare
``Queue.get()`` blocks forever when the peer has already died — the exact
moment recovery needs the loop to come around — and ``time.sleep`` in a
dispatch path stalls every queue behind it. Both deadlock recovery in a
way no unit test at parallelism 1 can see.

Module-scoped and restricted to ``cluster/`` modules (elsewhere a
blocking get is usually fine): flags ``time.sleep(...)`` (import-alias
resolved) and ``.get()`` / ``.get(True)`` without a ``timeout=``.
``.get_nowait()``, ``.get(timeout=...)`` and dict-style ``.get(key)``
(which has a positional argument) pass.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding

_PACKAGE = "cluster"


def _is_bare_queue_get(call: ast.Call) -> bool:
    """``x.get()`` with no timeout — or explicit ``block=True`` without one."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr != "get":
        return False
    if any(kw.arg == "timeout" for kw in call.keywords):
        return False
    if not call.args and not call.keywords:
        return True
    # Queue.get(True) / Queue.get(block=True) with no timeout still blocks
    # forever; one non-True positional is dict.get(key) — not a queue.
    if len(call.args) == 1 and not call.keywords:
        arg = call.args[0]
        return isinstance(arg, ast.Constant) and arg.value is True
    if not call.args and len(call.keywords) == 1:
        kw = call.keywords[0]
        return (
            kw.arg == "block"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
        )
    return False


@rule
class BlockingHotLoopRule(Rule):
    """Flags indefinitely-blocking calls in cluster runtime modules."""

    rule_id = "SL010"
    description = (
        "blocking call in cluster worker/coordinator code (time.sleep or "
        "Queue.get without timeout); deadlocks crash recovery"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package(_PACKAGE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call_target(node.func)
            if target == "time.sleep":
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "time.sleep in cluster runtime code stalls the control "
                    "loop; use a deadline on the blocking get instead",
                )
            elif _is_bare_queue_get(node):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    ".get() without a timeout blocks forever if the peer "
                    "process died; use get(timeout=...) in a loop so crash "
                    "recovery can proceed",
                )
