"""SL014 — unthrottled telemetry export inside cluster hot loops.

Live telemetry (:mod:`repro.obs.live`) exists so a running cluster can be
observed *without* taxing the data plane: workers flush delta exports at
a bounded interval through :meth:`ClusterWorker.maybe_flush_telemetry`,
whose gate makes telemetry cost O(changed children / interval). A full
registry export (``export_obs`` / ``export_metrics`` / ``export_spans``)
called directly inside a worker or coordinator loop body defeats that —
it walks every instrument and pickles every t-digest once *per message*,
exactly the per-batch serialization tax the shm transport removed.

This rule flags those calls inside ``cluster/`` loop bodies. The gated
path is recognized structurally: functions whose name starts with
``maybe_`` (the interval gate lives inside them by convention, as in
``maybe_flush_telemetry`` / ``maybe_ship_telemetry``) may export from
loops, and calls *to* ``maybe_``-prefixed helpers are always fine. Like
SL013 it is scoped to ``cluster/``: elsewhere a full export is a one-shot
report, not a hot path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.engine import Rule, rule
from repro.analysis.findings import Finding

_PACKAGE = "cluster"

#: Unthrottled full-export entry points (bare or attribute calls).
_EXPORT_NAMES = frozenset(
    {"export_obs", "export_metrics", "export_spans", "export_telemetry"}
)

#: Functions allowed to export from a loop: the interval gate convention.
_GATED_PREFIX = "maybe_"


def _call_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


@rule
class UnthrottledTelemetryRule(Rule):
    """Flags per-message telemetry exports in cluster loop bodies."""

    rule_id = "SL014"
    description = (
        "full telemetry export called inside a cluster/ loop; flush "
        "through the interval-gated maybe_flush_telemetry path instead"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package(_PACKAGE):
            return
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name.startswith(_GATED_PREFIX):
                continue  # the gate itself: exporting here is the point
            yield from self._check_function(ctx, fn)

    def _check_function(
        self, ctx: ModuleContext, fn: ast.AST
    ) -> Iterator[Finding]:
        # Nested gated helpers are their own scope: a maybe_* inner
        # function is exempt even though ast.walk(fn) would reach it.
        gated_spans = [
            (inner.lineno, max(getattr(node, "lineno", inner.lineno) for node in ast.walk(inner)))
            for inner in ast.walk(fn)
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
            and inner.name.startswith(_GATED_PREFIX)
        ]
        seen: set[tuple[int, int]] = set()
        for loop in ast.walk(fn):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for call in ast.walk(loop):
                if not isinstance(call, ast.Call):
                    continue
                name = _call_name(call.func)
                if name is None or name not in _EXPORT_NAMES:
                    continue
                if any(lo <= call.lineno <= hi for lo, hi in gated_spans):
                    continue
                where = (call.lineno, call.col_offset)
                if where in seen:
                    continue  # nested loops walk the same call twice
                seen.add(where)
                yield self.finding(
                    ctx,
                    call.lineno,
                    call.col_offset,
                    f"{name}() runs a full registry export per loop "
                    "iteration; route it through the interval-gated "
                    "maybe_flush_telemetry path so the hot loop stays "
                    "O(changed children / interval)",
                )
