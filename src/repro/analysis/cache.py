"""Result cache: skip re-analyzing files that have not changed.

Per-file analysis (parse + module rules + fact extraction) dominates
full-tree wall time, and the outputs are pure functions of the file
contents and the analyzer version. The cache stores each file's module
findings and facts keyed by absolute path, validated by an
``mtime_ns + size`` fast path with a sha256 content-hash fallback —
a touched-but-identical file re-hashes once and hits; an edited file
misses. The whole cache is invalidated when the analyzer itself changes:
the signature is a digest over the ``repro.analysis`` package sources,
so editing any rule re-runs everything without manual cache busting.

Project-scoped rules run from cached *facts*, so a fully warm run parses
zero files yet still produces cross-module findings.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

CACHE_SCHEMA = "streamlint-cache/v1"

#: Default cache filename (``--cache`` with no argument).
DEFAULT_CACHE_NAME = ".streamlint-cache.json"

_signature_memo: str | None = None


def analyzer_signature() -> str:
    """Digest of the ``repro.analysis`` package sources (cache validity)."""
    global _signature_memo
    if _signature_memo is None:
        pkg_root = Path(__file__).resolve().parent
        digest = hashlib.sha256()
        for source in sorted(pkg_root.rglob("*.py")):
            digest.update(source.name.encode())
            digest.update(source.read_bytes())
        _signature_memo = digest.hexdigest()
    return _signature_memo


def file_sha256(path: Path) -> str:
    """Streaming sha256 of *path*'s bytes (the mtime-miss fallback key)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


class AnalysisCache:
    """mtime+hash keyed store of per-file analysis records."""

    def __init__(self, path: Path):
        self.path = path
        self._entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: Path) -> "AnalysisCache":
        cache = cls(path)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return cache
        if (
            doc.get("schema") == CACHE_SCHEMA
            and doc.get("signature") == analyzer_signature()
        ):
            entries = doc.get("files")
            if isinstance(entries, dict):
                cache._entries = entries
        return cache

    def lookup(self, key: str, path: Path, stat: os.stat_result) -> dict | None:
        """The cached record under *key* for file *path*, or None on miss.

        Matching ``mtime_ns + size`` trusts the entry without reading the
        file; a stat mismatch falls back to hashing the content so
        ``touch``-ed files still hit.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if (
            entry.get("mtime_ns") == stat.st_mtime_ns
            and entry.get("size") == stat.st_size
        ):
            self.hits += 1
            return entry["record"]
        if entry.get("sha256") == file_sha256(path):
            entry["mtime_ns"] = stat.st_mtime_ns
            entry["size"] = stat.st_size
            self.hits += 1
            return entry["record"]
        self.misses += 1
        return None

    def put(self, key: str, envelope: dict) -> None:
        """Store a freshly computed ``{mtime_ns, size, sha256, record}``."""
        self._entries[key] = envelope

    def save(self, seen: set[str]) -> None:
        """Persist entries for *seen* files only (prunes deleted modules)."""
        doc = {
            "schema": CACHE_SCHEMA,
            "signature": analyzer_signature(),
            "files": {k: v for k, v in self._entries.items() if k in seen},
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(doc))
        os.replace(tmp, self.path)
