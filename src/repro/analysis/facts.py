"""Per-module fact extraction: the raw material of the project model.

The v2 engine analyzes each file exactly once and keeps only a compact,
JSON-serialisable *facts* document per module — class declarations with
resolved base origins, inferred ``self.*`` attribute types, candidate
global-state mutations, payload-taint reaching metric labels, and the
registration surfaces (``core/registry.py`` references,
``register_reducer`` calls). Project-scoped rules query the
:class:`~repro.analysis.project.ProjectModel` assembled from these facts
and never touch an AST, which is what lets the mtime+hash result cache
skip *parsing* unchanged files entirely while cross-file rules still see
the whole tree.

Everything here is deliberately plain ``dict``/``list`` data so a facts
document round-trips through the cache file without a custom codec.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator

from repro.analysis.context import ModuleContext

#: Module-relative suffix of the synopsis name registry.
REGISTRY_SUFFIX = "core/registry.py"

#: Mutating container verbs: calling one of these on a module-level global
#: from operator code is per-process shadow state under ``repro.cluster``.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "rotate",
        "setdefault",
        "subtract",
        "update",
    }
)

#: Canonical labels for mutable builtin containers (module-global candidates).
MUTABLE_CONTAINER_TYPES = frozenset(
    {"dict", "list", "set", "deque", "defaultdict", "Counter", "bytearray"}
)

#: Constructor call targets mapped to canonical type labels.
_CALL_TYPE_MAP = {
    "dict": "dict",
    "list": "list",
    "set": "set",
    "frozenset": "frozenset",
    "tuple": "tuple",
    "int": "int",
    "float": "float",
    "str": "str",
    "bool": "bool",
    "bytes": "bytes",
    "bytearray": "bytearray",
    "iter": "iterator",
    "open": "file",
    "collections.deque": "deque",
    "collections.defaultdict": "defaultdict",
    "collections.Counter": "Counter",
    "collections.OrderedDict": "dict",
    "random.Random": "random.Random",
    "numpy.random.default_rng": "np.Generator",
    "numpy.random.Generator": "np.Generator",
    "itertools.count": "itertools.count",
}

_NDARRAY_FACTORIES = frozenset(
    {
        "numpy.array",
        "numpy.asarray",
        "numpy.ascontiguousarray",
        "numpy.arange",
        "numpy.empty",
        "numpy.frombuffer",
        "numpy.full",
        "numpy.linspace",
        "numpy.ones",
        "numpy.zeros",
        "numpy.zeros_like",
    }
)

#: Methods whose second parameter is the stream payload (taint seed).
_PAYLOAD_METHODS = frozenset({"process", "execute"})


def extract_facts(ctx: ModuleContext) -> dict[str, Any]:
    """The serialisable facts document for one parsed module."""
    facts: dict[str, Any] = {
        "path": str(ctx.path),
        "relpath": ctx.relpath,
        "imports": dict(ctx.aliases),
        "module_globals": _module_globals(ctx),
        "reducer_registered": _reducer_registered(ctx.tree),
        "registry_referenced": (
            sorted(_referenced_names(ctx.tree))
            if ctx.relpath.endswith(REGISTRY_SUFFIX)
            else None
        ),
        "classes": {},
        "functions": {},
    }
    local_classes = {
        node.name
        for node in ctx.tree.body
        if isinstance(node, ast.ClassDef)
    }
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef):
            facts["classes"][node.name] = _class_facts(node, ctx, local_classes)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts["functions"][node.name] = _function_facts(
                node, ctx, local_classes, in_class=False
            )
    return facts


# -- module-level tables ------------------------------------------------------


def _module_globals(ctx: ModuleContext) -> dict[str, dict]:
    """Top-level assignments with an inferred canonical type."""
    out: dict[str, dict] = {}
    for node in ctx.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id not in out:
                inferred, callee = _infer_type(value, ctx, set())
                out[target.id] = {
                    "line": node.lineno,
                    "col": node.col_offset,
                    "type": inferred,
                    "callee": callee,
                }
    return out


def _reducer_registered(tree: ast.Module) -> list[str]:
    """Class names passed to ``register_reducer(...)`` in this module."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        func_name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if func_name != "register_reducer" or not node.args:
            continue
        target = node.args[0]
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return sorted(names)


def _referenced_names(tree: ast.Module) -> set[str]:
    """Names a module *uses* in expressions (the SL006 registration test)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


# -- type inference -----------------------------------------------------------


def _infer_type(
    value: ast.expr | None, ctx: ModuleContext, local_classes: set[str]
) -> tuple[str | None, str | None]:
    """Infer ``(canonical type label, dotted call target)`` for *value*.

    Labels are either a builtin canonical name (``dict``, ``ndarray``,
    ``deque``, ...), ``class:<Name>`` for instances of project classes, or
    ``None`` when the expression's type cannot be determined statically.
    The raw dotted call target rides along so rules can classify external
    constructors (``threading.Lock``) the label map does not know.
    """
    if value is None:
        return None, None
    if isinstance(value, ast.Constant):
        return type(value.value).__name__, None
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict", None
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list", None
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set", None
    if isinstance(value, ast.Tuple):
        return "tuple", None
    if isinstance(value, ast.GeneratorExp):
        return "generator", None
    if isinstance(value, ast.Lambda):
        return "callable", None
    if isinstance(value, ast.JoinedStr):
        return "str", None
    if isinstance(value, ast.Call):
        return _infer_call_type(value, ctx, local_classes)
    return None, None


def _infer_call_type(
    call: ast.Call, ctx: ModuleContext, local_classes: set[str]
) -> tuple[str | None, str | None]:
    func = call.func
    if isinstance(func, ast.Name) and func.id in local_classes:
        return f"class:{func.id}", func.id
    target = ctx.resolve_call_target(func)
    if target is None:
        if isinstance(func, ast.Name) and func.id in _CALL_TYPE_MAP:
            return _CALL_TYPE_MAP[func.id], func.id
        return None, None
    if target in _CALL_TYPE_MAP:
        return _CALL_TYPE_MAP[target], target
    if target in _NDARRAY_FACTORIES:
        return "ndarray", target
    if target.startswith("repro."):
        return f"class:{target.rsplit('.', 1)[-1]}", target
    return None, target


# -- classes ------------------------------------------------------------------


def _class_facts(
    node: ast.ClassDef, ctx: ModuleContext, local_classes: set[str]
) -> dict[str, Any]:
    bases: list[str] = []
    base_origins: list[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            bases.append(base.id)
            base_origins.append(ctx.aliases.get(base.id, base.id))
        elif isinstance(base, ast.Attribute):
            bases.append(base.attr)
            dotted = ctx.resolve_call_target(base)
            base_origins.append(dotted or base.attr)
    methods: dict[str, dict] = {}
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[item.name] = _function_facts(
                item, ctx, local_classes, in_class=True
            )
    return {
        "line": node.lineno,
        "col": node.col_offset,
        "bases": bases,
        "base_origins": base_origins,
        "abstract": _declares_abstract(node),
        "methods": methods,
        "attrs": _attr_facts(node, ctx, local_classes),
    }


def _declares_abstract(node: ast.ClassDef) -> bool:
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in item.decorator_list:
                name = deco.attr if isinstance(deco, ast.Attribute) else (
                    deco.id if isinstance(deco, ast.Name) else None
                )
                if name in ("abstractmethod", "abstractproperty"):
                    return True
    return False


def _attr_facts(
    node: ast.ClassDef, ctx: ModuleContext, local_classes: set[str]
) -> dict[str, dict]:
    """``self.*`` attribute assignments with inferred types.

    ``__init__`` is scanned first so constructor-established types win over
    later reassignments in other methods.
    """
    out: dict[str, dict] = {}
    methods = [
        item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    methods.sort(key=lambda m: m.name != "__init__")
    for method in methods:
        for stmt in ast.walk(method):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr not in out
            ):
                inferred, callee = _infer_type(value, ctx, local_classes)
                out[target.attr] = {
                    "line": target.lineno,
                    "col": target.col_offset,
                    "type": inferred,
                    "callee": callee,
                }
    return out


# -- functions ----------------------------------------------------------------


def _function_facts(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    ctx: ModuleContext,
    local_classes: set[str],
    in_class: bool,
) -> dict[str, Any]:
    params = [a.arg for a in node.args.posonlyargs + node.args.args]
    facts: dict[str, Any] = {
        "line": node.lineno,
        "col": node.col_offset,
        "params": params,
        "calls_self_update": False,
        "calls_compat_check": False,
        "self_mutations": [],
        "self_reads": [],
        "self_iterations": [],
        "self_attr_pops": [],
        "id_calls": [],
        "tainted_label_calls": [],
        "global_mutations": [],
    }
    locals_, global_decls = _scope_names(node, params)
    self_reads: set[str] = set()

    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            _record_call(sub, facts, locals_, in_class)
        elif isinstance(sub, ast.For):
            attr = _self_attr(sub.iter)
            if attr is not None:
                facts["self_iterations"].append(
                    [sub.iter.lineno, sub.iter.col_offset, attr]
                )
        elif isinstance(sub, (ast.Assign, ast.AugAssign)):
            _record_store_mutations(sub, facts, locals_, global_decls)
        elif isinstance(sub, ast.Delete):
            for target in sub.targets:
                _record_subscript_mutation(target, facts, locals_)
        elif isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
            if isinstance(sub.value, ast.Name) and sub.value.id == "self":
                self_reads.add(sub.attr)

    facts["self_reads"] = sorted(self_reads)
    if in_class and node.name in _PAYLOAD_METHODS and len(params) >= 2:
        payload = params[1] if params[0] == "self" else params[0]
        facts["tainted_label_calls"] = _tainted_label_calls(node, {payload})
    return facts


def _scope_names(
    node: ast.AST, params: list[str]
) -> tuple[set[str], set[str]]:
    """Names local to the function body, and its ``global`` declarations."""
    locals_: set[str] = set(params)
    global_decls: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            global_decls.update(sub.names)
        elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            for target in targets:
                locals_.update(_bound_names(target))
        elif isinstance(sub, (ast.For, ast.comprehension)):
            locals_.update(_bound_names(sub.target))
        elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
            for name_node in ast.walk(sub.optional_vars):
                if isinstance(name_node, ast.Name):
                    locals_.add(name_node.id)
        elif isinstance(sub, ast.NamedExpr) and isinstance(sub.target, ast.Name):
            locals_.add(sub.target.id)
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            locals_.add(sub.name)
    return locals_ - global_decls, global_decls


def _bound_names(target: ast.expr) -> Iterator[str]:
    """Names a store-target *binds* in the local scope.

    ``x = ...`` and ``a, b = ...`` bind; ``obj.attr = ...`` and
    ``table[k] = ...`` mutate an existing object and bind nothing —
    treating their base name as local would mask global mutations.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _bound_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _record_call(
    call: ast.Call, facts: dict, locals_: set[str], in_class: bool
) -> None:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "id" and call.args:
            facts["id_calls"].append([call.lineno, call.col_offset])
        if func.id == "super":
            pass
        return
    if not isinstance(func, ast.Attribute):
        return
    owner = func.value
    # self.update(...) / self._check_mergeable(...) / super().merge(...)
    if in_class and isinstance(owner, ast.Name) and owner.id == "self":
        if func.attr == "update":
            facts["calls_self_update"] = True
        if func.attr == "_check_mergeable":
            facts["calls_compat_check"] = True
    if (
        func.attr == "merge"
        and isinstance(owner, ast.Call)
        and isinstance(owner.func, ast.Name)
        and owner.func.id == "super"
    ):
        facts["calls_compat_check"] = True
    # self.<attr>.mutator(...) is a self-state mutation; <attr>.pop() with
    # no argument is order-dependent on sets.
    attr = _self_attr(owner)
    if attr is not None and func.attr in _MUTATORS:
        facts["self_mutations"].append([attr, call.lineno, call.col_offset])
        if func.attr == "pop" and not call.args and not call.keywords:
            facts["self_attr_pops"].append([call.lineno, call.col_offset, attr])
    # GLOBAL.mutator(...) on a non-local bare name: candidate global mutation.
    if (
        isinstance(owner, ast.Name)
        and owner.id not in locals_
        and owner.id != "self"
        and func.attr in _MUTATORS
    ):
        facts["global_mutations"].append(
            [owner.id, call.lineno, call.col_offset, f".{func.attr}()"]
        )


def _record_store_mutations(
    node: ast.Assign | ast.AugAssign, facts: dict, locals_: set[str], global_decls: set[str]
) -> None:
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    for target in targets:
        if isinstance(target, ast.Name) and target.id in global_decls:
            facts["global_mutations"].append(
                [target.id, target.lineno, target.col_offset, "global rebind"]
            )
        else:
            _record_subscript_mutation(target, facts, locals_)
        # self.<attr> = / += in a method body is self-state mutation.
        attr = _self_attr(target)
        if attr is not None:
            facts["self_mutations"].append(
                [attr, target.lineno, target.col_offset]
            )
        # self.<attr>[k] = ... mutates the container behind <attr>.
        if isinstance(target, ast.Subscript):
            base = target.value
            while isinstance(base, ast.Subscript):
                base = base.value
            inner = _self_attr(base)
            if inner is not None:
                facts["self_mutations"].append(
                    [inner, target.lineno, target.col_offset]
                )


def _record_subscript_mutation(
    target: ast.expr, facts: dict, locals_: set[str]
) -> None:
    if not isinstance(target, ast.Subscript):
        return
    base = target.value
    while isinstance(base, ast.Subscript):
        base = base.value
    if isinstance(base, ast.Name) and base.id not in locals_ and base.id != "self":
        facts["global_mutations"].append(
            [base.id, target.lineno, target.col_offset, "subscript store"]
        )


# -- payload taint ------------------------------------------------------------


def _tainted_label_calls(
    node: ast.FunctionDef | ast.AsyncFunctionDef, seeds: set[str]
) -> list[list]:
    """``.labels(...)`` calls whose value derives from the payload parameter.

    Local, flow-insensitive taint: seed the payload parameter, propagate
    through simple assignments and for-targets a bounded number of rounds,
    then flag label calls referencing a tainted name.
    """
    assigns: list[tuple[set[str], set[str]]] = []  # (targets, sources)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            targets = {
                n.id
                for t in sub.targets
                for n in ast.walk(t)
                if isinstance(n, ast.Name)
            }
            sources = _names_in(sub.value)
            assigns.append((targets, sources))
        elif isinstance(sub, ast.For):
            targets = {
                n.id for n in ast.walk(sub.target) if isinstance(n, ast.Name)
            }
            assigns.append((targets, _names_in(sub.iter)))
    tainted = set(seeds)
    for __ in range(len(assigns) + 1):
        changed = False
        for targets, sources in assigns:
            if sources & tainted and not targets <= tainted:
                tainted |= targets
                changed = True
        if not changed:
            break
    out: list[list] = []
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "labels"
        ):
            for kw in sub.keywords:
                if kw.value is not None and _names_in(kw.value) & tainted:
                    out.append([sub.lineno, sub.col_offset, kw.arg or "**"])
            for arg in sub.args:
                if _names_in(arg) & tainted:
                    out.append([sub.lineno, sub.col_offset, "positional"])
    return out


def _names_in(node: ast.expr) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}
