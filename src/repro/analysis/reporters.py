"""Finding reporters: human text and machine JSON.

Both reporters take the sorted finding list and render to a string; the
CLI picks one via ``--format``. JSON output carries a summary block
(counts by rule and severity) so CI dashboards can trend rule hits
without re-parsing individual findings.
"""

from __future__ import annotations

import collections
import json
from typing import Sequence

from repro.analysis.findings import Finding, Severity


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE severity: message`` line per finding."""
    lines = [f.format() for f in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if findings:
        lines.append("")
        lines.append(
            f"streamlint: {len(findings)} finding(s) "
            f"({errors} error(s), {warnings} warning(s))"
        )
    else:
        lines.append("streamlint: clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """JSON document with findings plus per-rule / per-severity counts."""
    by_rule: collections.Counter[str] = collections.Counter(
        f.rule_id for f in findings
    )
    by_severity: collections.Counter[str] = collections.Counter(
        str(f.severity) for f in findings
    )
    doc = {
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "total": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
            "by_severity": dict(sorted(by_severity.items())),
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)


REPORTERS = {"text": render_text, "json": render_json}
