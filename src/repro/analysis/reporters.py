"""Finding reporters: human text, machine JSON, and SARIF.

Reporters take the sorted finding list and render to a string; the CLI
picks one via ``--format``. JSON output carries a summary block (counts
by rule and severity) so CI dashboards can trend rule hits without
re-parsing individual findings. SARIF 2.1.0 output is what GitHub code
scanning ingests — uploading it annotates PR diffs with findings inline,
which is how the new project-scoped rules surface in review.
"""

from __future__ import annotations

import collections
import json
from typing import Sequence

from repro.analysis.findings import Finding, Severity

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE severity: message`` line per finding."""
    lines = [f.format() for f in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if findings:
        lines.append("")
        lines.append(
            f"streamlint: {len(findings)} finding(s) "
            f"({errors} error(s), {warnings} warning(s))"
        )
    else:
        lines.append("streamlint: clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """JSON document with findings plus per-rule / per-severity counts."""
    by_rule: collections.Counter[str] = collections.Counter(
        f.rule_id for f in findings
    )
    by_severity: collections.Counter[str] = collections.Counter(
        str(f.severity) for f in findings
    )
    doc = {
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "total": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
            "by_severity": dict(sorted(by_severity.items())),
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 document (GitHub code-scanning compatible)."""
    # imported here, not at module top, to avoid an import cycle with the
    # engine (reporters are engine-independent except for rule metadata)
    from repro.analysis.engine import all_rules

    rules_meta = [
        {
            "id": rule_id,
            "shortDescription": {"text": cls.description},
            "defaultConfiguration": {
                "level": "error" if cls.severity is Severity.ERROR else "warning"
            },
        }
        for rule_id, cls in all_rules().items()
    ]
    rule_index = {meta["id"]: i for i, meta in enumerate(rules_meta)}
    results = []
    for f in findings:
        results.append(
            {
                "ruleId": f.rule_id,
                **(
                    {"ruleIndex": rule_index[f.rule_id]}
                    if f.rule_id in rule_index
                    else {}
                ),
                "level": "error" if f.severity is Severity.ERROR else "warning",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path.replace("\\", "/")},
                            "region": {
                                "startLine": f.line,
                                # SARIF columns are 1-based; findings are 0-based
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "streamlint",
                        "informationUri": "https://example.invalid/streamlint",
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


REPORTERS = {"text": render_text, "json": render_json, "sarif": render_sarif}
