"""The project model: cross-module semantic indexes for project rules.

Assembled once per run from the per-module facts documents
(:mod:`repro.analysis.facts`), never from ASTs — so a warm-cache run
builds it without parsing a single file. It resolves the class hierarchy
across modules (``base_origins`` carry import-alias-resolved dotted
names), exposes the registration surfaces (``core/registry.py``
references, ``register_reducer`` calls anywhere in the tree), and builds
the module import graph.

Hierarchy roots (``SynopsisBase``, ``Bolt``, ``Spout``) are matched by
simple name, exactly like the PR 1 SL006 scan did — fixture trees that
declare their own tiny ``class Bolt`` hierarchy exercise project rules
without importing the real runtime.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.analysis.facts import REGISTRY_SUFFIX

#: Root base classes of the two stateful runtime hierarchies.
SYNOPSIS_ROOT = "SynopsisBase"
BOLT_ROOT = "Bolt"
SPOUT_ROOT = "Spout"


class ProjectModel:
    """Queryable cross-module view of one analyzed tree."""

    def __init__(self, modules: dict[str, dict[str, Any]]):
        #: relpath -> facts document, in sorted relpath order.
        self.modules: dict[str, dict] = dict(sorted(modules.items()))
        #: simple class name -> (relpath, class facts); first module wins
        #: on (rare) duplicate names, deterministic via the sort above.
        self.classes: dict[str, tuple[str, dict]] = {}
        #: class names passed to ``register_reducer`` anywhere in the tree.
        self.reducer_registered: set[str] = set()
        #: names referenced by ``core/registry.py`` (None when absent).
        self.registry_referenced: set[str] | None = None
        self.registry_relpath: str | None = None
        #: relpath -> set of relpaths it imports (intra-tree edges only).
        self.import_graph: dict[str, set[str]] = {}

        for relpath, facts in self.modules.items():
            for name, cf in facts.get("classes", {}).items():
                self.classes.setdefault(name, (relpath, cf))
            self.reducer_registered.update(facts.get("reducer_registered", ()))
            if facts.get("registry_referenced") is not None:
                if relpath.endswith(REGISTRY_SUFFIX):
                    self.registry_relpath = relpath
                    self.registry_referenced = set(facts["registry_referenced"])
        self._build_import_graph()

    # -- import graph --------------------------------------------------------

    def _build_import_graph(self) -> None:
        # Map dotted module origins ("repro.core.registry") to relpaths
        # ("core/registry.py") so edges stay within the scanned tree.
        by_dotted: dict[str, str] = {}
        for relpath in self.modules:
            stem = relpath[:-3] if relpath.endswith(".py") else relpath
            parts = [p for p in stem.split("/") if p]
            if parts and parts[-1] == "__init__":
                parts = parts[:-1]
            dotted = ".".join(parts)
            by_dotted[dotted] = relpath
            by_dotted["repro." + dotted] = relpath
        for relpath, facts in self.modules.items():
            edges: set[str] = set()
            for origin in facts.get("imports", {}).values():
                probe = origin
                while probe:
                    target = by_dotted.get(probe)
                    if target is not None and target != relpath:
                        edges.add(target)
                        break
                    probe = probe.rpartition(".")[0]
            self.import_graph[relpath] = edges

    # -- class hierarchy -----------------------------------------------------

    def get_class(self, name: str) -> tuple[str, dict] | None:
        """The ``(relpath, class_facts)`` for *name*, if any module defines it."""
        return self.classes.get(name)

    def all_classes(self) -> Iterator[tuple[str, str, dict]]:
        """Yield ``(relpath, class name, class facts)`` in sorted order."""
        for relpath, facts in self.modules.items():
            for name, cf in facts.get("classes", {}).items():
                yield relpath, name, cf

    def _base_names(self, cf: dict) -> set[str]:
        names = set(cf.get("bases", ()))
        for origin in cf.get("base_origins", ()):
            names.add(origin.rsplit(".", 1)[-1])
        return names

    def derives_from(self, name: str, root: str) -> bool:
        """True when class *name* transitively derives from *root*.

        Resolution crosses modules via the simple-name class index and is
        cycle-safe. *root* matches by simple name in either the syntactic
        base list or the alias-resolved origin.
        """
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            entry = self.classes.get(current)
            if entry is None:
                continue
            bases = self._base_names(entry[1])
            if root in bases:
                return True
            stack.extend(bases)
        return False

    def subclasses_of(
        self, root: str, *, concrete_only: bool = False
    ) -> Iterator[tuple[str, str, dict]]:
        """All classes deriving (transitively) from *root*, excluding it."""
        for relpath, name, cf in self.all_classes():
            if name == root or not self.derives_from(name, root):
                continue
            if concrete_only and cf.get("abstract"):
                continue
            yield relpath, name, cf

    def resolve_method(
        self, name: str, method: str, *, stop_roots: frozenset[str] = frozenset()
    ) -> tuple[str, dict] | None:
        """Find *method* on class *name* or its ancestors below *stop_roots*.

        Returns ``(owning class name, method facts)`` via MRO-ish
        depth-first search over the cross-module hierarchy; ancestors whose
        simple name is in *stop_roots* (and everything above them) are not
        searched, so a ``Bolt`` subclass "defines snapshot" only when some
        class below the runtime root overrides it.
        """
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop(0)
            if current in seen or current in stop_roots:
                continue
            seen.add(current)
            entry = self.classes.get(current)
            if entry is None:
                continue
            cf = entry[1]
            if method in cf.get("methods", {}):
                return current, cf["methods"][method]
            stack.extend(b for b in cf.get("bases", ()) if b not in stop_roots)
        return None

    def attr_type(self, cf: dict, attr: str) -> dict | None:
        """The attribute-fact record for ``self.<attr>`` on a class."""
        return cf.get("attrs", {}).get(attr)

    def resolve_attr(self, name: str, attr: str) -> dict | None:
        """Attribute-fact for ``self.<attr>`` on class *name* or ancestors."""
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            entry = self.classes.get(current)
            if entry is None:
                continue
            info = entry[1].get("attrs", {}).get(attr)
            if info is not None:
                return info
            stack.extend(entry[1].get("bases", ()))
        return None

    # -- registration surfaces ----------------------------------------------

    def registered_names(self) -> set[str]:
        """Classes covered by a registration surface.

        Union of names the synopsis registry references (each is exercised
        by the registry-wide contract/batch-equivalence suites) and names
        with a ``register_reducer`` serialization hook.
        """
        names = set(self.reducer_registered)
        if self.registry_referenced is not None:
            names |= self.registry_referenced
        return names

    # -- convenience ---------------------------------------------------------

    def is_stream_operator(self, name: str) -> bool:
        """True if *name* transitively derives from ``Bolt`` or ``Spout``."""
        return self.derives_from(name, BOLT_ROOT) or self.derives_from(
            name, SPOUT_ROOT
        )

    def display_path(self, relpath: str) -> str:
        """The as-invoked path for *relpath*, for ``file:line:col`` findings."""
        facts = self.modules.get(relpath)
        return facts["path"] if facts else relpath
