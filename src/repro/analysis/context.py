"""Per-module analysis context shared by every rule.

A :class:`ModuleContext` bundles a parsed module with the derived facts
rules keep needing: the AST, the suppression index, and an import-alias
table that resolves ``np.random.rand`` back to ``numpy.random.rand`` no
matter how the module spelled its imports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.suppressions import SuppressionIndex


@dataclass
class ModuleContext:
    """One parsed source module plus derived lookup tables."""

    path: Path
    relpath: str  # posix path relative to the scan root, e.g. "frequency/cms.py"
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_file(cls, path: Path, root: Path) -> "ModuleContext":
        """Parse *path*; raises ``SyntaxError`` on unparsable source."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        ctx = cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            suppressions=SuppressionIndex.from_source(source),
        )
        ctx.aliases = _collect_import_aliases(tree)
        return ctx

    def in_package(self, package: str) -> bool:
        """Whether the module lives under top-level *package* (e.g. "platform")."""
        parts = self.relpath.split("/")
        return bool(parts) and parts[0] == package

    def resolve_call_target(self, node: ast.AST) -> str | None:
        """Dotted origin of a call target, unwound through import aliases.

        ``np.random.rand`` with ``import numpy as np`` → ``numpy.random.rand``;
        ``randint`` with ``from random import randint`` → ``random.randint``.
        Returns ``None`` when the root name is not an imported module.
        """
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        origin = self.aliases.get(cur.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))


def _collect_import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origin they were imported from."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # `import numpy.random` binds `numpy`; `import numpy.random
                # as npr` binds the full dotted path to `npr`.
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:  # relative imports: skip
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases
