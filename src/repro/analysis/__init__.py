"""streamlint: streaming-correctness static analysis for this repo.

The paper's scale-out requirements (Section 2) are encoded in this
codebase as conventions — explicit seeds through
:func:`repro.common.rng.make_rng`, mergeable synopses via
:class:`repro.common.mergeable.SynopsisBase`, construct-by-name through
``repro.core.registry``, shippable/mergeable operator state via
``repro.common.serialization`` and ``repro.core.stateship``. This
package *enforces* them statically:

========  ==================================================================
SL001     unseeded/global randomness outside ``common/rng.py``
SL002     synopsis update/merge contract (incl. compatibility check and
          the update_many batch-equivalence contract)
SL003     mutable default arguments
SL004     wall-clock reads in algorithm modules (only ``platform/`` may)
SL005     bare/overbroad ``except`` that swallows failures
SL006     concrete synopses missing from ``core/registry``
SL007     mutable module globals mutated from bolt/worker code paths
SL008     operator state serialization v2 cannot ship (spawn boundary)
SL009     bolt state merge-on-query silently drops at parallelism > 1
SL010     blocking calls (sleep, bare Queue.get) in cluster hot loops
SL011     nondeterminism (id(), set iteration) in checkpointed state
SL012     tuple-derived metric label values (unbounded cardinality)
========  ==================================================================

Rules are *module*-scoped (one file at a time) or *project*-scoped —
the latter query a :class:`~repro.analysis.project.ProjectModel` built
once per run from per-module facts: the cross-file class hierarchy,
inferred ``self.*`` attribute types, import graph, and registration
surfaces.

Run ``python -m repro.analysis src/repro`` (exit 1 on errors, 3 on
warnings only) or use the library API::

    from repro.analysis import analyze_paths
    findings = analyze_paths(["src/repro"])

Silence an intentional violation inline with
``# streamlint: disable=SL001`` (line) or
``# streamlint: disable-file=SL004`` (whole module); accept pre-existing
findings wholesale via the committed ``.streamlint-baseline.json``.
"""

from repro.analysis.engine import (
    AnalysisResult,
    Rule,
    all_rules,
    analyze_paths,
    rule,
    run_analysis,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import ProjectModel

__all__ = [
    "AnalysisResult",
    "Finding",
    "ProjectModel",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "rule",
    "run_analysis",
]
