"""streamlint: streaming-correctness static analysis for this repo.

The paper's scale-out requirements (Section 2) are encoded in this
codebase as conventions — explicit seeds through
:func:`repro.common.rng.make_rng`, mergeable synopses via
:class:`repro.common.mergeable.SynopsisBase`, construct-by-name through
``repro.core.registry``. This package *enforces* them statically:

========  ==================================================================
SL001     unseeded/global randomness outside ``common/rng.py``
SL002     synopsis update/merge contract (incl. the compatibility check)
SL003     mutable default arguments
SL004     wall-clock reads in algorithm modules (only ``platform/`` may)
SL005     bare/overbroad ``except`` that swallows failures
SL006     concrete synopses missing from ``core/registry``
========  ==================================================================

Run ``python -m repro.analysis src/repro`` (exit 1 on findings) or use the
library API::

    from repro.analysis import analyze_paths
    findings = analyze_paths(["src/repro"])

Silence an intentional violation inline with
``# streamlint: disable=SL001`` (line) or
``# streamlint: disable-file=SL004`` (whole module).
"""

from repro.analysis.engine import Rule, all_rules, analyze_paths, rule
from repro.analysis.findings import Finding, Severity

__all__ = [
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "rule",
]
