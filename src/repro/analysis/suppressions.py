"""Inline suppression comments for streamlint.

Two forms, mirroring the classic lint idiom:

* ``# streamlint: disable=SL001`` on (or for multi-line statements, at the
  start of) the offending line silences the listed rules for that line.
  Several rules separate with commas: ``disable=SL001,SL003``. ``all``
  silences every rule on the line.
* ``# streamlint: disable-file=SL004`` anywhere in a module silences the
  listed rules (or ``all``) for the whole file.

Suppressions are parsed from the token stream, not regexes over raw source,
so a ``disable=`` inside a string literal never counts.
"""

from __future__ import annotations

import io
import re
import tokenize

_DIRECTIVE = re.compile(
    r"#\s*streamlint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)

ALL = "all"


class SuppressionIndex:
    """Which rules are silenced on which lines of one module."""

    def __init__(self) -> None:
        self._by_line: dict[int, set[str]] = {}
        self._file_wide: set[str] = set()

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Parse every ``# streamlint:`` directive out of *source*.

        Source that fails to tokenize yields an empty index (the engine
        reports the syntax error separately).
        """
        index = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _DIRECTIVE.search(tok.string)
                if not match:
                    continue
                rules = {
                    r.strip().upper() if r.strip().lower() != ALL else ALL
                    for r in match.group("rules").split(",")
                    if r.strip()
                }
                if match.group("kind") == "disable-file":
                    index._file_wide |= rules
                else:
                    index._by_line.setdefault(tok.start[0], set()).update(rules)
        except (tokenize.TokenError, IndentationError, SyntaxError):
            pass
        return index

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether *rule_id* is silenced at *line* (or file-wide)."""
        if ALL in self._file_wide or rule_id in self._file_wide:
            return True
        at_line = self._by_line.get(line)
        return bool(at_line) and (ALL in at_line or rule_id in at_line)

    def to_dict(self) -> dict:
        """JSON-serialisable form (the engine's result cache)."""
        return {
            "lines": {str(k): sorted(v) for k, v in self._by_line.items()},
            "file": sorted(self._file_wide),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SuppressionIndex":
        index = cls()
        for line, rules in doc.get("lines", {}).items():
            index._by_line[int(line)] = set(rules)
        index._file_wide = set(doc.get("file", ()))
        return index
