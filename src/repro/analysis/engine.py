"""The streamlint rule engine.

Rules subclass :class:`Rule` and register themselves with the ``@rule``
decorator. The engine walks the requested paths, parses every ``*.py``
module once into a :class:`~repro.analysis.context.ModuleContext`, runs
module-scoped rules per file and project-scoped rules once over the whole
set (project scope is what lets SL006 compare the class hierarchy against
``core/registry.py``), then filters findings through inline suppressions.

Unparsable files produce a synthetic ``SL000`` syntax-error finding instead
of crashing the run, so one broken module cannot hide findings in the rest
of the tree.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Sequence, Type

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding, Severity

SYNTAX_ERROR_RULE = "SL000"

_RULE_CLASSES: dict[str, Type["Rule"]] = {}


class Rule:
    """One streamlint check.

    Class attributes declare identity (``rule_id``), default ``severity``,
    ``scope`` ("module" rules see one file at a time; "project" rules see
    every file at once) and a one-line ``description`` surfaced by
    ``--list-rules``.
    """

    rule_id: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    scope: str = "module"  # "module" | "project"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module (module-scoped rules)."""
        return iter(())

    def check_project(self, ctxs: Sequence[ModuleContext]) -> Iterator[Finding]:
        """Yield findings across the whole scanned tree (project scope)."""
        return iter(())

    def finding(
        self,
        ctx: ModuleContext,
        line: int,
        col: int,
        message: str,
        severity: Severity | None = None,
    ) -> Finding:
        """Build a :class:`Finding` in *ctx* with this rule's identity."""
        return Finding(
            path=str(ctx.path),
            line=line,
            col=col,
            rule_id=self.rule_id,
            severity=severity or self.severity,
            message=message,
        )


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering *cls* in the global rule table."""
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} lacks a rule_id")
    if not cls.description:
        raise ValueError(f"rule {cls.rule_id} lacks a description")
    if cls.rule_id in _RULE_CLASSES:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _RULE_CLASSES[cls.rule_id] = cls
    return cls


def all_rules() -> dict[str, Type[Rule]]:
    """Registered rules by id (importing the rules package as a side effect)."""
    import repro.analysis.rules  # noqa: F401 - registration side effect

    return dict(sorted(_RULE_CLASSES.items()))


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``*.py`` file under *paths* (files pass through, dirs recurse)."""
    for path in paths:
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            yield path


def analyze_paths(
    paths: Sequence[Path | str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Run every (selected) rule over *paths* and return sorted findings.

    *select* keeps only the listed rule ids; *ignore* drops the listed ids.
    Suppression comments are honoured last, so a suppressed finding never
    appears regardless of selection.
    """
    roots = [Path(p) for p in paths]
    selected = _instantiate_rules(select, ignore)

    contexts: list[ModuleContext] = []
    findings: list[Finding] = []
    for root in roots:
        scan_root = root if root.is_dir() else root.parent
        for file in iter_python_files([root]):
            try:
                contexts.append(ModuleContext.from_file(file, scan_root))
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        path=str(file),
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        rule_id=SYNTAX_ERROR_RULE,
                        severity=Severity.ERROR,
                        message=f"syntax error: {exc.msg}",
                    )
                )

    for r in selected:
        if r.scope == "module":
            for ctx in contexts:
                for f in r.check_module(ctx):
                    if not ctx.suppressions.is_suppressed(f.rule_id, f.line):
                        findings.append(f)
        else:
            by_path = {str(c.path): c for c in contexts}
            for f in r.check_project(contexts):
                ctx = by_path.get(f.path)
                if ctx and ctx.suppressions.is_suppressed(f.rule_id, f.line):
                    continue
                findings.append(f)

    return sorted(findings)


def _instantiate_rules(
    select: Iterable[str] | None, ignore: Iterable[str] | None
) -> list[Rule]:
    table = all_rules()
    keep = {s.upper() for s in select} if select else set(table)
    drop = {s.upper() for s in ignore} if ignore else set()
    unknown = (keep | drop) - set(table) if (select or ignore) else set()
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [cls() for rid, cls in table.items() if rid in keep and rid not in drop]
