"""The streamlint rule engine.

Rules subclass :class:`Rule` and register themselves with the ``@rule``
decorator. v2 runs in three stages:

1. **Per-file analysis** — each module is parsed once, every module-scoped
   rule runs over it, and a serialisable *facts* document is extracted
   (:mod:`repro.analysis.facts`). This stage is a pure function of the
   file bytes, so it parallelises across a process pool (``jobs``) and
   its results live in the mtime+hash cache (``cache_path``) — a warm
   run parses nothing.
2. **Project analysis** — the facts are assembled into a
   :class:`~repro.analysis.project.ProjectModel` (cross-module class
   hierarchy, attribute types, registration surfaces) and project-scoped
   rules query it.
3. **Filtering** — selection (``--select``/``--ignore``), inline
   suppressions routed through each finding's *relpath* (so a project
   rule's finding is suppressible in the file it points at, wherever the
   evidence came from), and finally the committed baseline.

Unparsable files produce a synthetic ``SL000`` syntax-error finding instead
of crashing the run, so one broken module cannot hide findings in the rest
of the tree.
"""

from __future__ import annotations

import ast
import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence, Type

from repro.analysis.baseline import apply_baseline
from repro.analysis.cache import AnalysisCache
from repro.analysis.context import ModuleContext, _collect_import_aliases
from repro.analysis.facts import extract_facts
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import ProjectModel
from repro.analysis.suppressions import SuppressionIndex

SYNTAX_ERROR_RULE = "SL000"

_RULE_CLASSES: dict[str, Type["Rule"]] = {}


class Rule:
    """One streamlint check.

    Class attributes declare identity (``rule_id``), default ``severity``,
    ``scope`` ("module" rules see one file at a time; "project" rules see
    the :class:`ProjectModel` for the whole tree) and a one-line
    ``description`` surfaced by ``--list-rules``.
    """

    rule_id: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    scope: str = "module"  # "module" | "project"

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module (module-scoped rules)."""
        return iter(())

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        """Yield findings across the whole scanned tree (project scope)."""
        return iter(())

    def finding(
        self,
        ctx: ModuleContext,
        line: int,
        col: int,
        message: str,
        severity: Severity | None = None,
    ) -> Finding:
        """Build a :class:`Finding` in *ctx* with this rule's identity."""
        return Finding(
            path=str(ctx.path),
            line=line,
            col=col,
            rule_id=self.rule_id,
            severity=severity or self.severity,
            message=message,
            relpath=ctx.relpath,
        )

    def project_finding(
        self,
        project: ProjectModel,
        relpath: str,
        line: int,
        col: int,
        message: str,
        severity: Severity | None = None,
    ) -> Finding:
        """Build a :class:`Finding` attributed to *relpath* in the model."""
        return Finding(
            path=project.display_path(relpath),
            line=line,
            col=col,
            rule_id=self.rule_id,
            severity=severity or self.severity,
            message=message,
            relpath=relpath,
        )


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering *cls* in the global rule table."""
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} lacks a rule_id")
    if not cls.description:
        raise ValueError(f"rule {cls.rule_id} lacks a description")
    if cls.rule_id in _RULE_CLASSES:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _RULE_CLASSES[cls.rule_id] = cls
    return cls


def all_rules() -> dict[str, Type[Rule]]:
    """Registered rules by id (importing the rules package as a side effect)."""
    import repro.analysis.rules  # noqa: F401 - registration side effect

    return dict(sorted(_RULE_CLASSES.items()))


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``*.py`` file under *paths* (files pass through, dirs recurse)."""
    for path in paths:
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            yield path


@dataclass
class AnalysisResult:
    """Everything a reporter needs about one engine run."""

    findings: list[Finding]
    file_count: int = 0
    baseline_absorbed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Worst surviving severity, for exit-code mapping (None when clean).
    worst: Severity | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        severities = {f.severity for f in self.findings}
        if Severity.ERROR in severities:
            self.worst = Severity.ERROR
        elif severities:
            self.worst = Severity.WARNING


# -- per-file stage (runs in worker processes) --------------------------------


def _analyze_file(job: tuple[str, str]) -> dict:
    """Parse one file, run module rules, extract facts.

    Takes/returns only JSON-serialisable data so it can cross a process
    pool and live in the result cache. The envelope carries the stat+hash
    identity the cache validates against.
    """
    path_str, root_str = job
    path = Path(path_str)
    stat = path.stat()
    raw = path.read_bytes()
    source = raw.decode("utf-8")
    try:
        relpath = path.resolve().relative_to(Path(root_str).resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()

    record: dict = {"path": path_str, "relpath": relpath}
    try:
        tree = ast.parse(source, filename=path_str)
    except SyntaxError as exc:
        record["findings"] = [
            Finding(
                path=path_str,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id=SYNTAX_ERROR_RULE,
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
                relpath=relpath,
            ).to_dict()
        ]
        record["facts"] = None
        record["suppressions"] = SuppressionIndex().to_dict()
    else:
        ctx = ModuleContext(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            suppressions=SuppressionIndex.from_source(source),
        )
        ctx.aliases = _collect_import_aliases(tree)
        rules = [cls() for cls in all_rules().values() if cls.scope == "module"]
        record["findings"] = [
            f.to_dict() for r in rules for f in r.check_module(ctx)
        ]
        record["facts"] = extract_facts(ctx)
        record["suppressions"] = ctx.suppressions.to_dict()

    return {
        "mtime_ns": stat.st_mtime_ns,
        "size": stat.st_size,
        "sha256": hashlib.sha256(raw).hexdigest(),
        "record": record,
    }


def _rehome(record: dict, path_str: str) -> dict:
    """Point a (possibly cached) record at the as-given display path."""
    if record["path"] == path_str:
        return record
    record = dict(record)
    record["path"] = path_str
    record["findings"] = [dict(d, path=path_str) for d in record["findings"]]
    if record["facts"] is not None:
        record["facts"] = dict(record["facts"], path=path_str)
    return record


def _compute(jobs_list: list[tuple[str, str]], jobs: int) -> list[tuple[tuple, dict]]:
    if jobs <= 1 or len(jobs_list) <= 1:
        return [(job, _analyze_file(job)) for job in jobs_list]
    chunk = max(1, len(jobs_list) // (jobs * 4))
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(zip(jobs_list, pool.map(_analyze_file, jobs_list, chunksize=chunk)))


# -- orchestration ------------------------------------------------------------


def run_analysis(
    paths: Sequence[Path | str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    *,
    jobs: int = 1,
    cache_path: Path | str | None = None,
    baseline: dict[str, int] | None = None,
) -> AnalysisResult:
    """Full engine run with cache/parallel/baseline plumbing exposed."""
    roots = [Path(p) for p in paths]
    keep = _selected_rule_ids(select, ignore)

    files: list[tuple[str, str]] = []
    for root in roots:
        scan_root = root if root.is_dir() else root.parent
        for file in iter_python_files([root]):
            files.append((str(file), str(scan_root)))

    cache = AnalysisCache.load(Path(cache_path)) if cache_path else None
    records: dict[tuple[str, str], dict] = {}
    to_compute: list[tuple[str, str]] = []
    seen_keys: set[str] = set()
    for job in files:
        key = _cache_key(job)
        seen_keys.add(key)
        hit = None
        if cache is not None:
            path = Path(job[0])
            try:
                hit = cache.lookup(key, path, path.stat())
            except OSError:
                hit = None
        if hit is not None:
            records[job] = _rehome(hit, job[0])
        else:
            to_compute.append(job)

    for job, envelope in _compute(to_compute, jobs):
        records[job] = envelope["record"]
        if cache is not None:
            cache.put(_cache_key(job), envelope)
    if cache is not None:
        cache.save(seen_keys)

    ordered = [records[job] for job in sorted(records)]
    suppressions = {
        rec["relpath"]: SuppressionIndex.from_dict(rec["suppressions"])
        for rec in ordered
    }

    findings: list[Finding] = []
    for rec in ordered:
        for doc in rec["findings"]:
            finding = Finding.from_dict(doc)
            if (
                finding.rule_id != SYNTAX_ERROR_RULE
                and finding.rule_id not in keep
            ):
                continue
            if _is_suppressed(suppressions, finding):
                continue
            findings.append(finding)

    model = ProjectModel(
        {
            rec["relpath"]: rec["facts"]
            for rec in ordered
            if rec["facts"] is not None
        }
    )
    for rule_id, cls in all_rules().items():
        if cls.scope != "project" or rule_id not in keep:
            continue
        for finding in cls().check_project(model):
            if not _is_suppressed(suppressions, finding):
                findings.append(finding)

    findings.sort()
    absorbed = 0
    if baseline:
        findings, absorbed = apply_baseline(findings, baseline)
    return AnalysisResult(
        findings=findings,
        file_count=len(files),
        baseline_absorbed=absorbed,
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else len(files),
    )


def analyze_paths(
    paths: Sequence[Path | str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    *,
    jobs: int = 1,
    cache_path: Path | str | None = None,
    baseline: dict[str, int] | None = None,
) -> list[Finding]:
    """Run every (selected) rule over *paths* and return sorted findings.

    *select* keeps only the listed rule ids; *ignore* drops the listed ids.
    Suppression comments are honoured last, so a suppressed finding never
    appears regardless of selection.
    """
    return run_analysis(
        paths, select, ignore, jobs=jobs, cache_path=cache_path, baseline=baseline
    ).findings


def _cache_key(job: tuple[str, str]) -> str:
    path_str, root_str = job
    return f"{Path(root_str).resolve()}::{Path(path_str).resolve()}"


def _is_suppressed(
    suppressions: dict[str, SuppressionIndex], finding: Finding
) -> bool:
    """Route suppression lookup through the finding's own module.

    Keyed by *relpath* so project-scoped rules — whose findings may point
    at a different module than the one whose AST produced the evidence —
    are silenced by pragmas in the file the finding names.
    """
    index = suppressions.get(finding.relpath)
    return index is not None and index.is_suppressed(finding.rule_id, finding.line)


def _selected_rule_ids(
    select: Iterable[str] | None, ignore: Iterable[str] | None
) -> set[str]:
    table = all_rules()
    keep = {s.upper() for s in select} if select else set(table)
    drop = {s.upper() for s in ignore} if ignore else set()
    unknown = (keep | drop) - set(table) if (select or ignore) else set()
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return {rid for rid in table if rid in keep and rid not in drop}
