"""Baseline file: land strict rules without blocking on known findings.

A baseline records the *accepted* pre-existing findings as counts keyed by
location-independent identity (``relpath::rule::message`` — see
:meth:`Finding.baseline_key`), so unrelated edits that shift line numbers
do not invalidate it. At report time each key absorbs up to its recorded
count; anything beyond that — a new finding, or a second instance of an
accepted one — still fails the run. Fixing a baselined finding never
breaks the build (stale keys are simply unused), so the baseline only
ratchets down.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_SCHEMA = "streamlint-baseline/v1"

#: Default baseline filename, auto-detected in the working directory.
DEFAULT_BASELINE_NAME = ".streamlint-baseline.json"


def load_baseline(path: Path) -> dict[str, int]:
    """Baseline key -> accepted count. Raises ValueError on a bad file."""
    doc = json.loads(path.read_text())
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: not a streamlint baseline (schema={doc.get('schema')!r})"
        )
    findings = doc.get("findings", {})
    if not isinstance(findings, dict):
        raise ValueError(f"{path}: 'findings' must be a mapping")
    return {str(k): int(v) for k, v in findings.items()}


def write_baseline(findings: list[Finding], path: Path) -> int:
    """Write the baseline accepting *findings*; returns the key count."""
    counts: dict[str, int] = {}
    for finding in findings:
        key = finding.baseline_key()
        counts[key] = counts.get(key, 0) + 1
    doc = {"schema": BASELINE_SCHEMA, "findings": dict(sorted(counts.items()))}
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return len(counts)


def apply_baseline(
    findings: list[Finding], accepted: dict[str, int]
) -> tuple[list[Finding], int]:
    """Drop findings absorbed by the baseline.

    Returns ``(remaining findings, absorbed count)``. Findings are
    consumed in sorted (location) order so which duplicate survives an
    under-counted key is deterministic.
    """
    remaining = dict(accepted)
    kept: list[Finding] = []
    absorbed = 0
    for finding in findings:
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            absorbed += 1
        else:
            kept.append(finding)
    return kept, absorbed
