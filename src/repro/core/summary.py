"""StreamSummary: many synopses over one stream, as one object.

A production metrics pipeline rarely wants a single sketch; it wants "the
distinct count, the top-k, the p99 and an anomaly flag" for the same
stream. :class:`StreamSummary` fans each update out to a named set of
synopses, merges component-wise (so partition summaries combine into a
global one), and exposes each synopsis by name.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.common.exceptions import MergeError, ParameterError
from repro.common.mergeable import SynopsisBase


class StreamSummary(SynopsisBase):
    """A named bundle of synopses updated together.

    ``StreamSummary(uniques=HyperLogLog(), topk=SpaceSaving(64))`` — then
    ``summary.update(item)``, ``summary["uniques"].estimate()``. A
    per-synopsis ``extract`` function can reshape the item first
    (``extractors={"latency_p99": lambda e: e.latency}``).
    """

    def __init__(
        self,
        extractors: dict[str, Callable[[Any], Any]] | None = None,
        **synopses: Any,
    ):
        if not synopses:
            raise ParameterError("StreamSummary needs at least one synopsis")
        self.count = 0
        self._synopses = dict(synopses)
        self._extractors = dict(extractors or {})
        unknown = set(self._extractors) - set(self._synopses)
        if unknown:
            raise ParameterError(f"extractors for unknown synopses: {sorted(unknown)}")
        # Pre-bound fan-out plan: one (name, synopsis, extractor) triple per
        # child, built once so the hot update path never does a dict ``.get``
        # per synopsis per item.
        self._plan: list[tuple[str, Any, Callable[[Any], Any] | None]] = [
            (name, synopsis, self._extractors.get(name))
            for name, synopsis in self._synopses.items()
        ]

    def __getstate__(self) -> dict[str, Any]:
        # Extractors are callable configuration: they cannot travel a
        # process boundary, and the plan holds references to them (and to
        # the children). Ship only the data; __setstate__ rebuilds the
        # plan against whatever extractors the receiving side has — the
        # constructor's own under `restore_into`, none under bare
        # `restore` (read-only query shards never update, so they don't
        # need them).
        state = dict(self.__dict__)
        state.pop("_extractors", None)
        state.pop("_plan", None)
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._extractors = getattr(self, "_extractors", {}) or {}
        self._plan = [
            (name, synopsis, self._extractors.get(name))
            for name, synopsis in self._synopses.items()
        ]

    def update(self, item: Any) -> None:
        self.count += 1
        for __, synopsis, extract in self._plan:
            synopsis.update(extract(item) if extract else item)

    def update_many(self, items: Iterable[Any]) -> None:
        """Fan whole batches to each child synopsis.

        Children are independent, so handing child A the full batch before
        child B sees it leaves every child's state identical to the
        item-at-a-time interleaving — while letting each child hit its own
        vectorized ``update_many`` fast path.
        """
        items = items if isinstance(items, (list, tuple)) else list(items)
        if not items:
            return
        self.count += len(items)
        for __, synopsis, extract in self._plan:
            synopsis.update_many(
                [extract(item) for item in items] if extract else items
            )

    def __getitem__(self, name: str) -> Any:
        if name not in self._synopses:
            raise ParameterError(f"no synopsis named {name!r}")
        return self._synopses[name]

    @property
    def names(self) -> list[str]:
        return sorted(self._synopses)

    def _merge_key(self) -> tuple:
        return (tuple(sorted(self._synopses)),)

    def _merge_into(self, other: "StreamSummary") -> None:
        for name, synopsis in self._synopses.items():
            try:
                synopsis.merge(other._synopses[name])
            except NotImplementedError as exc:
                raise MergeError(
                    f"synopsis {name!r} ({type(synopsis).__name__}) is not mergeable"
                ) from exc
        self.count += other.count

    def size_bytes(self) -> int:
        return sum(s.size_bytes() for s in self._synopses.values())
