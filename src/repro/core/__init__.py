"""The unified real-time analytics layer.

* :mod:`repro.core.registry` — construct any synopsis by name.
* :class:`~repro.core.summary.StreamSummary` — bundles of synopses over one
  stream, mergeable across partitions.
* :class:`~repro.core.pipeline.Pipeline` — fluent dataflow API compiling to
  the streaming platform with selectable delivery semantics.
"""

from repro.core.pipeline import Pipeline
from repro.core.registry import available, create, register
from repro.core.summary import StreamSummary

__all__ = ["Pipeline", "StreamSummary", "available", "create", "register"]
