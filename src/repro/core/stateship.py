"""State shipping: move synopsis/operator state across process boundaries.

``repro.cluster`` workers checkpoint their operators to the coordinator and
ship merge-on-query partials back; both cross a ``multiprocessing`` process
boundary as *bytes*, not objects. This module is the narrow waist for that
traffic, built on :mod:`repro.common.serialization` format v2:

* :func:`capture` — snapshot any library object (synopsis, window, plain
  state dict) into a framed byte payload. Class identity travels as a
  trusted ``module:qualname`` path; attribute state is encoded
  structurally, preserving tuples, numpy dtypes, RNG streams, shared
  references and cycles. Callable attributes are *configuration*, not
  stream state — they are skipped and must be re-supplied by the
  receiving side's factory (see :func:`restore_into`).
* :func:`restore` — rebuild a standalone object from a payload. Good for
  synopses, whose behaviour is fully determined by attribute state.
* :func:`restore_into` — apply a payload's state onto a freshly
  *constructed* instance of the same class. This is the path for objects
  carrying callable configuration (model functions, extractors): the
  factory supplies the callables, the payload supplies the state.
* :func:`fingerprint` — convenience re-export of
  :func:`repro.bench.fingerprint.state_fingerprint` so call sites that
  verify shipped state need one import.

Payloads are self-describing; :func:`shipped_class` peeks at the class
path without reconstructing, which the coordinator uses for routing and
streamlint's SL006 uses to keep the registry honest.

Process-local runtime plumbing is **explicitly excluded** from shipped
state: classes registered via :func:`register_unshippable` (shared-memory
ring handles, transport channels — see :mod:`repro.cluster.shm`) raise
:class:`~repro.common.exceptions.SerializationError` at capture time
rather than shipping a pointer that would dangle in the receiving
process.
"""

from __future__ import annotations

from typing import Any

from repro.common.exceptions import SerializationError
from repro.common.serialization import (
    _apply_object_state,
    _class_path,
    _object_state,
    _resolve_class,
    dump_state,
    load_state,
    register_unshippable,
)

__all__ = [
    "STATE_TAG",
    "capture",
    "shipped_class",
    "restore",
    "restore_into",
    "fingerprint",
    "register_unshippable",
]

#: Frame tag for shipped operator/synopsis state.
STATE_TAG = "stateship"


def capture(obj: Any) -> bytes:
    """Snapshot *obj* into a self-describing byte payload.

    Plain dicts (bolt snapshots are often bare state dicts) are shipped
    as-is under a ``None`` class path; everything else records the class
    so :func:`restore` can rebuild it standalone.
    """
    if isinstance(obj, dict):
        return dump_state(STATE_TAG, {"class": None, "state": obj})
    return dump_state(STATE_TAG, {"class": _class_path(type(obj)), "state": _object_state(obj)})


def shipped_class(payload: bytes) -> str | None:
    """The ``module:qualname`` class path recorded in *payload* (None for
    bare dict payloads)."""
    return load_state(STATE_TAG, payload)["class"]


def restore(payload: bytes) -> Any:
    """Rebuild the captured object (or bare dict) from *payload*.

    Objects are created without running ``__init__`` and filled from the
    shipped attribute state — exactly how the serializer itself rebuilds
    nested library objects. Callable configuration does not travel; use
    :func:`restore_into` when the class needs it.
    """
    doc = load_state(STATE_TAG, payload)
    if doc["class"] is None:
        return doc["state"]
    cls = _resolve_class(doc["class"])
    obj = cls.__new__(cls)
    _apply_object_state(obj, doc["state"])
    return obj


def restore_into(target: Any, payload: bytes) -> Any:
    """Apply the shipped state onto *target*, a freshly built instance.

    *target* must be the same class the payload was captured from.
    Attributes absent from the payload (callables skipped at capture
    time) keep the values *target*'s constructor gave them, so model
    functions and extractors survive the process boundary.
    """
    doc = load_state(STATE_TAG, payload)
    if doc["class"] is None:
        raise SerializationError("payload holds a bare state dict, not an object")
    if doc["class"] != _class_path(type(target)):
        raise SerializationError(
            f"payload is {doc['class']!r}, cannot restore into "
            f"{_class_path(type(target))!r}"
        )
    _apply_object_state(target, doc["state"])
    return target


def fingerprint(obj: Any) -> str:
    """Stable structural fingerprint of *obj* (volatile attrs excluded)."""
    from repro.bench.fingerprint import state_fingerprint

    return state_fingerprint(obj)
