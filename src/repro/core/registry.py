"""Synopsis registry: construct any sketch in the library by name.

The registry is what lets configuration-driven systems (the pipeline DSL,
the Lambda speed layer, benchmark sweeps) instantiate synopses without
importing every module: ``create("hyperloglog", precision=14)``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.exceptions import ParameterError

_REGISTRY: dict[str, Callable[..., Any]] = {}


def register(name: str, factory: Callable[..., Any]) -> None:
    """Register *factory* under *name* (lowercase, unique)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ParameterError(f"synopsis name {name!r} already registered")
    _REGISTRY[key] = factory


def create(name: str, **params: Any) -> Any:
    """Instantiate the synopsis registered under *name* with *params*."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ParameterError(
            f"unknown synopsis {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[key](**params)


def available() -> list[str]:
    """Sorted names of every registered synopsis."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    from repro.anomaly import (
        EWMAControlChart,
        HalfSpaceTrees,
        PageHinkley,
        RollingZScore,
        SlidingMAD,
        WindowKLDetector,
    )
    from repro.cardinality import (
        FlajoletMartin,
        HyperLogLog,
        KMinValues,
        LinearCounter,
        LogLog,
        SlidingHyperLogLog,
    )
    from repro.filtering import (
        BloomFilter,
        CountingBloomFilter,
        CuckooFilter,
        ScalableBloomFilter,
        StableBloomFilter,
    )
    from repro.frequency import (
        CountMinSketch,
        CountSketch,
        LossyCounting,
        MisraGries,
        SpaceSaving,
        StickySampling,
        WindowedTopK,
    )
    from repro.moments import AMSSketch
    from repro.quantiles import (
        Frugal1U,
        GKQuantiles,
        KLLSketch,
        P2Quantile,
        QDigest,
        TDigest,
    )
    from repro.filtering import PartitionedBloomFilter
    from repro.sampling import (
        BiasedReservoirSampler,
        DistinctSampler,
        ReservoirSampler,
        WeightedReservoirSampler,
    )
    from repro.windowing import DGIM, DecayedFrequencies, EHSum, EHVariance, SlidingExtrema

    builtins = {
        "ams": AMSSketch,
        "biased_reservoir": BiasedReservoirSampler,
        "bloom": BloomFilter.for_capacity,
        "count_min": CountMinSketch.from_error,
        "count_sketch": CountSketch.from_error,
        "counting_bloom": CountingBloomFilter.for_capacity,
        "cuckoo": CuckooFilter.for_capacity,
        "decayed_frequencies": DecayedFrequencies,
        "dgim": DGIM,
        "distinct_sampler": DistinctSampler,
        "extrema": SlidingExtrema,
        "page_hinkley": PageHinkley,
        "partitioned_bloom": PartitionedBloomFilter.for_capacity,
        "window_kl": WindowKLDetector,
        "eh_sum": EHSum,
        "eh_variance": EHVariance,
        "ewma": EWMAControlChart,
        "flajolet_martin": FlajoletMartin,
        "frugal": Frugal1U,
        "gk": GKQuantiles,
        "hstrees": HalfSpaceTrees,
        "hyperloglog": HyperLogLog,
        "kll": KLLSketch,
        "kmv": KMinValues,
        "linear_counter": LinearCounter,
        "loglog": LogLog,
        "lossy_counting": LossyCounting,
        "mad": SlidingMAD,
        "misra_gries": MisraGries,
        "p2": P2Quantile,
        "reservoir": ReservoirSampler,
        "scalable_bloom": ScalableBloomFilter,
        "sliding_hyperloglog": SlidingHyperLogLog,
        "space_saving": SpaceSaving,
        "stable_bloom": StableBloomFilter,
        "sticky_sampling": StickySampling,
        "tdigest": TDigest,
        "weighted_reservoir": WeightedReservoirSampler,
        "windowed_topk": WindowedTopK,
        "zscore": RollingZScore,
    }
    for name, factory in builtins.items():
        register(name, factory)


_register_builtins()
