"""Synopsis registry: construct any sketch in the library by name.

The registry is what lets configuration-driven systems (the pipeline DSL,
the Lambda speed layer, benchmark sweeps) instantiate synopses without
importing every module: ``create("hyperloglog", precision=14)``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.exceptions import ParameterError

_REGISTRY: dict[str, Callable[..., Any]] = {}


def register(name: str, factory: Callable[..., Any]) -> None:
    """Register *factory* under *name* (lowercase, unique)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ParameterError(f"synopsis name {name!r} already registered")
    _REGISTRY[key] = factory


def create(name: str, **params: Any) -> Any:
    """Instantiate the synopsis registered under *name* with *params*."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ParameterError(
            f"unknown synopsis {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[key](**params)


def available() -> list[str]:
    """Sorted names of every registered synopsis."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    from repro.anomaly import (
        EWMAControlChart,
        HalfSpaceTrees,
        PageHinkley,
        RollingZScore,
        SlidingMAD,
        SubspaceTracker,
        WindowKLDetector,
    )
    from repro.clustering import CluStream, OnlineKMeans, StreamingKMedian
    from repro.core.summary import StreamSummary
    from repro.correlation import (
        CorrelationSketch,
        LagCorrelator,
        StreamingCorrelation,
    )
    from repro.filtering import RetouchedBloomFilter
    from repro.frequency import HierarchicalHeavyHitters
    from repro.graphs import (
        ApproxPathOracle,
        DynamicGraph,
        EdgeSamplingSparsifier,
        GreedyMatching,
        StreamingConnectivity,
        StreamingRandomWalker,
        StreamingSpanner,
        TriangleCounter,
        WeightedGreedyMatching,
    )
    from repro.histograms import (
        EndBiasedHistogram,
        EquiWidthHistogram,
        StreamingVOptimal,
        WaveletHistogram,
    )
    from repro.inversions import InversionEstimator
    from repro.ml import (
        HoeffdingTree,
        OnlineLogisticRegression,
        PassiveAggressiveRegressor,
        StreamingNaiveBayes,
    )
    from repro.moments import FkEstimator
    from repro.prediction import (
        HoltWinters,
        KalmanFilter,
        LocalTrendFilter,
        OnlineAR,
        UnscentedKalmanFilter,
    )
    from repro.quantiles import Frugal2U, SlidingWindowQuantiles
    from repro.sampling import (
        AlgorithmLSampler,
        ChainSampler,
        ExpJSampler,
        PrioritySampler,
    )
    from repro.subsequences import ApproxLISTracker, LISTracker, WindowedLCS
    from repro.temporal import MotifDetector, SequenceMiner, SpringMatcher
    from repro.windowing import DecayedCounter, SignificantOneCounter
    from repro.cardinality import (
        FlajoletMartin,
        HyperLogLog,
        KMinValues,
        LinearCounter,
        LogLog,
        SlidingHyperLogLog,
    )
    from repro.filtering import (
        BloomFilter,
        CountingBloomFilter,
        CuckooFilter,
        ScalableBloomFilter,
        StableBloomFilter,
    )
    from repro.frequency import (
        CountMinSketch,
        CountSketch,
        LossyCounting,
        MisraGries,
        SpaceSaving,
        StickySampling,
        WindowedTopK,
    )
    from repro.moments import AMSSketch
    from repro.quantiles import (
        ExactQuantiles,
        Frugal1U,
        GKQuantiles,
        KLLSketch,
        P2Quantile,
        QDigest,
        TDigest,
    )
    from repro.filtering import PartitionedBloomFilter
    from repro.sampling import (
        BiasedReservoirSampler,
        DistinctSampler,
        ReservoirSampler,
        WeightedReservoirSampler,
    )
    from repro.windowing import DGIM, DecayedFrequencies, EHSum, EHVariance, SlidingExtrema

    builtins = {
        "ams": AMSSketch,
        "biased_reservoir": BiasedReservoirSampler,
        "bloom": BloomFilter.for_capacity,
        "count_min": CountMinSketch.from_error,
        "count_sketch": CountSketch.from_error,
        "counting_bloom": CountingBloomFilter.for_capacity,
        "cuckoo": CuckooFilter.for_capacity,
        "decayed_frequencies": DecayedFrequencies,
        "dgim": DGIM,
        "distinct_sampler": DistinctSampler,
        "extrema": SlidingExtrema,
        "page_hinkley": PageHinkley,
        "partitioned_bloom": PartitionedBloomFilter.for_capacity,
        "window_kl": WindowKLDetector,
        "eh_sum": EHSum,
        "eh_variance": EHVariance,
        "ewma": EWMAControlChart,
        "flajolet_martin": FlajoletMartin,
        "frugal": Frugal1U,
        "gk": GKQuantiles,
        "hstrees": HalfSpaceTrees,
        "hyperloglog": HyperLogLog,
        "kll": KLLSketch,
        "kmv": KMinValues,
        "linear_counter": LinearCounter,
        "loglog": LogLog,
        "lossy_counting": LossyCounting,
        "mad": SlidingMAD,
        "misra_gries": MisraGries,
        "p2": P2Quantile,
        "reservoir": ReservoirSampler,
        "scalable_bloom": ScalableBloomFilter,
        "sliding_hyperloglog": SlidingHyperLogLog,
        "space_saving": SpaceSaving,
        "stable_bloom": StableBloomFilter,
        "sticky_sampling": StickySampling,
        "tdigest": TDigest,
        "weighted_reservoir": WeightedReservoirSampler,
        "windowed_topk": WindowedTopK,
        "zscore": RollingZScore,
        # -- every concrete synopsis below is registered so config-driven
        # systems (pipeline DSL, Lambda speed layer, sweeps) can build it
        # by name; the SL006 streamlint rule keeps this table exhaustive.
        "algorithm_l": AlgorithmLSampler,
        "approx_lis": ApproxLISTracker,
        "ar": OnlineAR,
        "chain_sampler": ChainSampler,
        "clustream": CluStream,
        "connectivity": StreamingConnectivity,
        "correlation": StreamingCorrelation,
        "correlation_sketch": CorrelationSketch,
        "decayed_counter": DecayedCounter,
        "dynamic_graph": DynamicGraph,
        "endbiased_histogram": EndBiasedHistogram,
        "equiwidth_histogram": EquiWidthHistogram,
        "exact_quantiles": ExactQuantiles,
        "expj": ExpJSampler,
        "fk": FkEstimator,
        "frugal2u": Frugal2U,
        "hhh": HierarchicalHeavyHitters,
        "hoeffding_tree": HoeffdingTree,
        "holt_winters": HoltWinters,
        "inversions": InversionEstimator,
        "kalman": KalmanFilter,
        "kmedian": StreamingKMedian,
        "lag_correlator": LagCorrelator,
        "lis": LISTracker,
        "local_trend": LocalTrendFilter,
        "matching": GreedyMatching,
        "motif": MotifDetector,
        "naive_bayes": StreamingNaiveBayes,
        "online_kmeans": OnlineKMeans,
        "online_logreg": OnlineLogisticRegression,
        "passive_aggressive": PassiveAggressiveRegressor,
        "path_oracle": ApproxPathOracle,
        "priority_sampler": PrioritySampler,
        "qdigest": QDigest,
        "random_walk": StreamingRandomWalker,
        "retouched_bloom": RetouchedBloomFilter.for_capacity,
        "sequences": SequenceMiner,
        "significant_one": SignificantOneCounter,
        "spanner": StreamingSpanner,
        "sparsifier": EdgeSamplingSparsifier,
        "spring": SpringMatcher,
        "subspace": SubspaceTracker,
        "summary": StreamSummary,
        "triangles": TriangleCounter,
        "ukf": UnscentedKalmanFilter,
        "voptimal_histogram": StreamingVOptimal,
        "wavelet_histogram": WaveletHistogram,
        "weighted_matching": WeightedGreedyMatching,
        "window_quantiles": SlidingWindowQuantiles,
        "windowed_lcs": WindowedLCS,
    }
    for name, factory in builtins.items():
        register(name, factory)


_register_builtins()
