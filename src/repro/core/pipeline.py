"""A fluent dataflow DSL that compiles to a platform topology.

The Table 2 systems each offer a higher-level API on top of raw topologies
(Storm's Trident, Spark's DStreams, Flink's DataStream). This is ours:

    results = (
        Pipeline.from_list(sentences)
        .flat_map(lambda v: [(w,) for w in v[0].split()])
        .key_by(0)
        .count()
        .run(semantics="exactly_once")
    )

Each stage appends a bolt; ``run`` builds the topology, executes it with
the requested delivery semantics and returns the sink contents.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.exceptions import ParameterError
from repro.platform.executor import LocalExecutor
from repro.platform.faults import FaultInjector
from repro.platform.operators import (
    CollectorBolt,
    CountBolt,
    FilterBolt,
    FlatMapBolt,
    MapBolt,
    SynopsisBolt,
    TumblingWindowBolt,
)
from repro.platform.topology import ListSpout, TopologyBuilder


class Pipeline:
    """A linear chain of stream transformations."""

    def __init__(self, records: list, name: str = "source"):
        self._records = list(records)
        # Stages: (name, factory, parallelism, grouping spec).
        self._stages: list[tuple[str, Callable, int, tuple]] = []
        self._keyed: tuple[int, ...] | None = None

    @classmethod
    def from_list(cls, records: list) -> "Pipeline":
        """A pipeline fed by a fixed record list (replayable source)."""
        return cls(records)

    def _add(self, label: str, factory: Callable, parallelism: int = 1) -> "Pipeline":
        grouping = ("fields", self._keyed) if self._keyed else ("shuffle", None)
        self._stages.append((f"{label}{len(self._stages)}", factory, parallelism, grouping))
        self._keyed = None
        return self

    def map(self, fn: Callable[[tuple], tuple | None], parallelism: int = 1) -> "Pipeline":
        """Transform each payload with *fn* (return None to drop)."""
        return self._add("map", lambda: MapBolt(fn), parallelism)

    def flat_map(self, fn: Callable[[tuple], list], parallelism: int = 1) -> "Pipeline":
        """Expand each payload into zero or more payloads."""
        return self._add("flatmap", lambda: FlatMapBolt(fn), parallelism)

    def filter(self, predicate: Callable[[tuple], bool], parallelism: int = 1) -> "Pipeline":
        """Keep payloads satisfying *predicate*."""
        return self._add("filter", lambda: FilterBolt(predicate), parallelism)

    def key_by(self, *indices: int) -> "Pipeline":
        """Partition the next stage by the given payload positions."""
        if not indices:
            raise ParameterError("key_by needs at least one index")
        self._keyed = indices
        return self

    def count(self, parallelism: int = 4) -> "Pipeline":
        """Keyed running count; emits (key, count) updates."""
        if self._keyed is None:
            self._keyed = (0,)
        key_index = self._keyed[0]
        return self._add("count", lambda: CountBolt(key_index), parallelism)

    def window(self, size: float, agg: Callable[[list], Any] = len) -> "Pipeline":
        """Tumbling event-time windows over (timestamp, value) payloads."""
        return self._add("window", lambda: TumblingWindowBolt(size, agg))

    def sketch(
        self,
        factory: Callable[[], Any],
        extract=None,
        batch_size: int = 256,
        instrument: bool | str = False,
        registry=None,
    ) -> "Pipeline":
        """Feed payloads into a synopsis (terminal-ish; synopsis inspectable
        after run via the returned executor).

        Tuples are micro-batched through ``synopsis.update_many`` every
        *batch_size* payloads (drained at checkpoints and end-of-stream),
        so array-backed sketches ingest at vectorized batch speed with
        state identical to per-tuple updates. ``instrument=True`` (or a
        name string) wraps the synopsis with ``repro.obs`` call/batch/
        memory instrumentation publishing into *registry*.
        """
        return self._add(
            "sketch",
            lambda: SynopsisBolt(
                factory,
                extract,
                batch_size=batch_size,
                instrument=instrument,
                registry=registry,
            ),
        )

    def build(self) -> tuple:
        """Compile to ``(topology, sink_name)`` without running."""
        builder = TopologyBuilder()
        records = self._records
        builder.set_spout("source", lambda: ListSpout(records))
        previous = "source"
        for name, factory, parallelism, (kind, key) in self._stages:
            declarer = builder.set_bolt(name, factory, parallelism=parallelism)
            if kind == "fields":
                declarer.fields(previous, *key)
            else:
                declarer.shuffle(previous)
            previous = name
        builder.set_bolt("sink", CollectorBolt).global_(previous)
        return builder.build(), "sink"

    def run(
        self,
        semantics: str = "at_most_once",
        faults: FaultInjector | None = None,
        checkpoint_interval: int = 500,
        obs=None,
    ) -> list[tuple]:
        """Execute and return the sink's collected payloads.

        Pass an :class:`~repro.obs.context.Observability` bundle as *obs*
        to publish metrics into its registry and trace a sampled fraction
        of source records end-to-end through every stage.
        """
        executor = self.run_with_executor(
            semantics, faults, checkpoint_interval, obs=obs
        )
        (sink,) = executor.bolt_instances("sink")
        return sink.results

    def run_with_executor(
        self,
        semantics: str = "at_most_once",
        faults: FaultInjector | None = None,
        checkpoint_interval: int = 500,
        obs=None,
    ) -> LocalExecutor:
        """Execute and return the executor (for metrics / bolt inspection)."""
        topology, __ = self.build()
        executor = LocalExecutor(
            topology,
            semantics=semantics,
            faults=faults,
            checkpoint_interval=checkpoint_interval,
            obs=obs,
        )
        executor.run()
        return executor
