"""Longest increasing subsequence (LIS) over streams.

Table 1 row "Finding Subsequences" cites [Liben-Nowell, Vee & Zhu 2005] and
the lower bounds of [Gál & Gopalan 2010] / [Sun & Woodruff 2007]: exact
one-pass LIS needs Ω(n) space, so streaming algorithms approximate.

* :class:`LISTracker` — exact online patience sorting: the classic tails
  array is itself a one-pass algorithm using O(L) memory (L = LIS length).
* :class:`ApproxLISTracker` — bounded memory: caps the tails array at *s*
  entries by evicting interior tails (keeping extremes), giving a lower
  bound on L with multiplicative error ~ L/s, the flavour of the known
  deterministic approximations.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


def longest_increasing_subsequence(values: Sequence[float]) -> int:
    """Exact LIS length (strictly increasing), O(n log n) patience sorting."""
    tails: list[float] = []
    for value in values:
        pos = bisect.bisect_left(tails, value)
        if pos == len(tails):
            tails.append(value)
        else:
            tails[pos] = value
    return len(tails)


class LISTracker(SynopsisBase):
    """Exact online LIS length via patience sorting (O(L) memory)."""

    def __init__(self):
        self.count = 0
        self._tails: list[float] = []

    def update(self, item: float) -> None:
        self.count += 1
        value = float(item)
        pos = bisect.bisect_left(self._tails, value)
        if pos == len(self._tails):
            self._tails.append(value)
        else:
            self._tails[pos] = value

    def lis_length(self) -> int:
        """Exact length of the longest strictly increasing subsequence."""
        return len(self._tails)

    @property
    def memory_slots(self) -> int:
        """Retained tails (equals the LIS length)."""
        return len(self._tails)

    def _merge_key(self) -> tuple:
        return ()

    def _merge_into(self, other: "LISTracker") -> None:
        raise NotImplementedError("LIS is order-sensitive; not mergeable")


class ApproxLISTracker(SynopsisBase):
    """LIS length lower bound with at most *s* retained (value, rank) tails.

    Entries keep the patience invariant — values and ranks both strictly
    increasing, where ``rank`` is the length of an increasing subsequence
    ending at or below ``value``. When the list exceeds *s*, interior
    entries are decimated; survivors keep their exact ranks, so the
    reported length never drops, and future elements may only be assigned
    slightly pessimistic ranks (a lower bound on the true LIS). While the
    LIS fits in the budget the answer is exact, and for monotone streams it
    stays exact at any budget.
    """

    def __init__(self, s: int = 256):
        if s < 4:
            raise ParameterError("budget s must be at least 4")
        self.s = s
        self.count = 0
        self._values: list[float] = []
        self._ranks: list[int] = []

    def update(self, item: float) -> None:
        self.count += 1
        value = float(item)
        pos = bisect.bisect_left(self._values, value)
        rank = (self._ranks[pos - 1] + 1) if pos > 0 else 1
        if pos == len(self._values):
            self._values.append(value)
            self._ranks.append(rank)
        elif rank >= self._ranks[pos]:
            # Tighter tail for an equal-or-better rank.
            self._values[pos] = value
            self._ranks[pos] = rank
        if len(self._values) > self.s:
            # Drop every other interior entry; keep first and last.
            keep = list(range(0, len(self._values) - 1, 2)) + [len(self._values) - 1]
            self._values = [self._values[i] for i in keep]
            self._ranks = [self._ranks[i] for i in keep]

    def lis_length(self) -> int:
        """Estimated LIS length (a lower bound; exact while under budget)."""
        return self._ranks[-1] if self._ranks else 0

    @property
    def memory_slots(self) -> int:
        """Retained tails (bounded by s+1)."""
        return len(self._values)

    def _merge_key(self) -> tuple:
        return (self.s,)

    def _merge_into(self, other: "ApproxLISTracker") -> None:
        raise NotImplementedError("LIS is order-sensitive; not mergeable")
