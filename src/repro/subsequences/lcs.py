"""Longest common subsequence (LCS) tools for stream windows.

Exact LCS is quadratic and order-sensitive, so streaming systems compute it
over recent windows [Sun & Woodruff 2007 studies the streaming complexity].
:func:`longest_common_subsequence` is the classic DP; :class:`WindowedLCS`
maintains ring buffers of two streams and reports the LCS of the live
windows on demand (similarity of two recent traffic patterns).
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


def longest_common_subsequence(a: Sequence, b: Sequence) -> int:
    """Exact LCS length via the O(|a|*|b|) dynamic program (row-compressed)."""
    if len(a) < len(b):
        a, b = b, a  # keep the DP row short
    prev = [0] * (len(b) + 1)
    for x in a:
        cur = [0] * (len(b) + 1)
        for j, y in enumerate(b, start=1):
            if x == y:
                cur[j] = prev[j - 1] + 1
            else:
                cur[j] = max(prev[j], cur[j - 1])
        prev = cur
    return prev[-1]


def lcs_similarity(a: Sequence, b: Sequence) -> float:
    """LCS length normalised by the longer input (1.0 = identical order)."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return longest_common_subsequence(a, b) / longest


class WindowedLCS(SynopsisBase):
    """LCS similarity of the recent windows of two synchronised streams."""

    def __init__(self, window: int = 128):
        if window <= 0:
            raise ParameterError("window must be positive")
        self.window = window
        self.count = 0
        self._a: deque = deque(maxlen=window)
        self._b: deque = deque(maxlen=window)

    def update(self, item: tuple) -> None:
        a, b = item
        self.count += 1
        self._a.append(a)
        self._b.append(b)

    def lcs_length(self) -> int:
        """LCS length of the two live windows."""
        return longest_common_subsequence(list(self._a), list(self._b))

    def similarity(self) -> float:
        """Normalised LCS similarity of the live windows."""
        return lcs_similarity(list(self._a), list(self._b))

    def _merge_key(self) -> tuple:
        return (self.window,)

    def _merge_into(self, other: "WindowedLCS") -> None:
        raise NotImplementedError("windowed LCS is position-bound; not mergeable")
