"""Subsequence analysis over streams (LIS / LCS).

Table 1 row "Finding Subsequences" — longest increasing / common
subsequences and similar-pattern search (application: traffic analysis).
"""

from repro.subsequences.lcs import (
    WindowedLCS,
    lcs_similarity,
    longest_common_subsequence,
)
from repro.subsequences.lis import (
    ApproxLISTracker,
    LISTracker,
    longest_increasing_subsequence,
)

__all__ = [
    "ApproxLISTracker",
    "LISTracker",
    "WindowedLCS",
    "lcs_similarity",
    "longest_common_subsequence",
    "longest_increasing_subsequence",
]
