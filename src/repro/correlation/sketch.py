"""Sketch-based correlation screening for many streams at once.

Computing all-pairs correlations over thousands of streams is quadratic in
the stream count per tick; the StatStream/BRAID-family fix (cf. [Guo, Sathe
& Aberer 2014] cited in Table 1) is to project each normalised window onto
a small set of shared random vectors — correlations are approximately
preserved inner products (Johnson–Lindenstrauss), so highly correlated
pairs can be screened in the sketch space using ``d`` numbers per stream.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.exceptions import MergeError, ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import make_np_rng


class CorrelationSketch(SynopsisBase):
    """Random-projection sketch of one stream's recent window.

    All sketches that should be comparable must share ``(window, d, seed)``
    so they project onto the same random basis.
    """

    def __init__(self, window: int = 256, d: int = 32, seed: int = 0):
        if window <= 0:
            raise ParameterError("window must be positive")
        if d <= 0:
            raise ParameterError("sketch dimension d must be positive")
        self.window = window
        self.d = d
        self.seed = seed
        self.count = 0
        self._buffer: deque[float] = deque(maxlen=window)
        # Shared basis: d x window, +-1 entries (Achlioptas projection).
        rng = make_np_rng(seed)
        self._basis = rng.choice([-1.0, 1.0], size=(d, window))

    def update(self, item: float) -> None:
        self.count += 1
        self._buffer.append(float(item))

    def _normalised_window(self) -> np.ndarray:
        arr = np.asarray(self._buffer, dtype=np.float64)
        if len(arr) < self.window:
            arr = np.concatenate([np.zeros(self.window - len(arr)), arr])
        arr = arr - arr.mean()
        norm = np.linalg.norm(arr)
        return arr / norm if norm > 0 else arr

    def sketch(self) -> np.ndarray:
        """The d-dimensional projection of the normalised window."""
        return self._basis @ self._normalised_window() / np.sqrt(self.d)

    def correlation(self, other: "CorrelationSketch") -> float:
        """Approximate Pearson correlation of the two recent windows."""
        if (other.window, other.d, other.seed) != (self.window, self.d, self.seed):
            raise MergeError("sketches must share window, dimension and seed")
        return float(np.clip(np.dot(self.sketch(), other.sketch()), -1.0, 1.0))

    def exact_correlation(self, other: "CorrelationSketch") -> float:
        """Exact Pearson of the buffered windows (baseline for screening)."""
        a = self._normalised_window()
        b = other._normalised_window()
        return float(np.dot(a, b))

    def _merge_key(self) -> tuple:
        return (self.window, self.d, self.seed)

    def _merge_into(self, other: "CorrelationSketch") -> None:
        raise NotImplementedError("window sketches are position-bound; not mergeable")


def correlated_pairs(
    sketches: list[CorrelationSketch], threshold: float = 0.8
) -> list[tuple[int, int, float]]:
    """Screen all pairs of *sketches*, returning (i, j, approx_corr) above
    |threshold| — the candidate set a system would verify exactly."""
    if not 0 < threshold <= 1:
        raise ParameterError("threshold must lie in (0, 1]")
    mat = np.stack([s.sketch() for s in sketches])
    sims = mat @ mat.T
    out = []
    for i in range(len(sketches)):
        for j in range(i + 1, len(sketches)):
            if abs(sims[i, j]) >= threshold:
                out.append((i, j, float(np.clip(sims[i, j], -1.0, 1.0))))
    return out
