"""Streaming Pearson correlation via co-moment accumulation.

One pass, O(1) memory per pair: Welford-style updates of means and
co-moments [Chan/Welford], numerically stable and mergeable — the building
block for "find data subsets which are highly correlated" (Table 1 row
"Correlation", application: fraud detection).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class StreamingCorrelation(SynopsisBase):
    """Online Pearson correlation of a stream of ``(x, y)`` pairs."""

    def __init__(self):
        self.count = 0
        self.mean_x = 0.0
        self.mean_y = 0.0
        self._m2_x = 0.0
        self._m2_y = 0.0
        self._cov = 0.0  # co-moment sum

    def update(self, item: tuple[float, float]) -> None:
        x, y = float(item[0]), float(item[1])
        self.count += 1
        dx = x - self.mean_x
        dy_old = y - self.mean_y
        self.mean_x += dx / self.count
        self.mean_y += dy_old / self.count
        dy_new = y - self.mean_y
        self._cov += dx * dy_new  # Welford cross-moment form
        self._m2_x += dx * (x - self.mean_x)
        self._m2_y += dy_old * dy_new

    def _merge_key(self) -> tuple:
        return ()

    def _merge_into(self, other: "StreamingCorrelation") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.__dict__.update(other.__dict__)
            return
        n1, n2 = self.count, other.count
        n = n1 + n2
        dx = other.mean_x - self.mean_x
        dy = other.mean_y - self.mean_y
        self._m2_x += other._m2_x + dx * dx * n1 * n2 / n
        self._m2_y += other._m2_y + dy * dy * n1 * n2 / n
        self._cov += other._cov + dx * dy * n1 * n2 / n
        self.mean_x += dx * n2 / n
        self.mean_y += dy * n2 / n
        self.count = n

    def variance_x(self) -> float:
        """Population variance of the x component."""
        return self._m2_x / self.count if self.count else 0.0

    def variance_y(self) -> float:
        """Population variance of the y component."""
        return self._m2_y / self.count if self.count else 0.0

    def covariance(self) -> float:
        """Population covariance of (x, y)."""
        return self._cov / self.count if self.count else 0.0

    def correlation(self) -> float:
        """Pearson correlation coefficient (0 when either side is constant)."""
        if self.count < 2:
            raise ParameterError("correlation needs at least 2 observations")
        denom = math.sqrt(self._m2_x * self._m2_y)
        return self._cov / denom if denom > 0 else 0.0
