"""Lagged cross-correlation over sliding windows.

"Detecting time correlations in time-series data streams" [Sayal 2004] and
composite-correlation work [Wang & Wang 2003]: given two synchronised
streams, find the lag (within ``max_lag``) at which they correlate most —
e.g. upstream traffic predicting downstream load. Maintains ring buffers of
the last ``window`` points and evaluates Pearson at each candidate lag.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class LagCorrelator(SynopsisBase):
    """Find ``argmax_lag corr(x[t - lag], y[t])`` over the recent window."""

    def __init__(self, window: int = 512, max_lag: int = 32):
        if window <= 0:
            raise ParameterError("window must be positive")
        if not 0 <= max_lag < window:
            raise ParameterError("max_lag must lie in [0, window)")
        self.window = window
        self.max_lag = max_lag
        self.count = 0
        self._x: deque[float] = deque(maxlen=window)
        self._y: deque[float] = deque(maxlen=window)

    def update(self, item: tuple[float, float]) -> None:
        x, y = float(item[0]), float(item[1])
        self.count += 1
        self._x.append(x)
        self._y.append(y)

    def correlation_at(self, lag: int) -> float:
        """Pearson correlation of x delayed by *lag* against current y."""
        if not 0 <= lag <= self.max_lag:
            raise ParameterError("lag out of range")
        n = len(self._x)
        if n - lag < 3:
            raise ParameterError("not enough points for this lag")
        x = np.asarray(self._x, dtype=np.float64)
        y = np.asarray(self._y, dtype=np.float64)
        a = x[: n - lag] if lag else x
        b = y[lag:]
        a = a - a.mean()
        b = b - b.mean()
        denom = float(np.linalg.norm(a) * np.linalg.norm(b))
        return float(np.dot(a, b) / denom) if denom > 0 else 0.0

    def best_lag(self) -> tuple[int, float]:
        """The lag in [0, max_lag] with the strongest |correlation|."""
        best_lag, best_corr = 0, 0.0
        for lag in range(self.max_lag + 1):
            if len(self._x) - lag < 3:
                break
            corr = self.correlation_at(lag)
            if abs(corr) > abs(best_corr):
                best_lag, best_corr = lag, corr
        return best_lag, best_corr

    def _merge_key(self) -> tuple:
        return (self.window, self.max_lag)

    def _merge_into(self, other: "LagCorrelator") -> None:
        raise NotImplementedError("lag buffers are position-bound; not mergeable")
