"""Correlation discovery in streams.

Table 1 row "Correlation" — find data subsets highly correlated to a given
set (application: fraud detection).
"""

from repro.correlation.lagged import LagCorrelator
from repro.correlation.pearson import StreamingCorrelation
from repro.correlation.sketch import CorrelationSketch, correlated_pairs

__all__ = [
    "CorrelationSketch",
    "LagCorrelator",
    "StreamingCorrelation",
    "correlated_pairs",
]
