"""Skewed token streams modelling tweets and trending hashtags."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng


def zipf_stream(
    n: int,
    universe: int = 10_000,
    skew: float = 1.1,
    seed: int = 0,
    prefix: str = "item",
) -> Iterator[str]:
    """Yield *n* tokens drawn Zipf(skew) from ``{prefix}{0..universe-1}``.

    Rank 0 is the most frequent token. ``skew`` must exceed 0; values near 1
    give the heavy-tailed shape typical of word/hashtag frequencies.
    """
    if n < 0:
        raise ParameterError("n must be non-negative")
    if universe <= 0:
        raise ParameterError("universe must be positive")
    if skew <= 0:
        raise ParameterError("skew must be positive")
    rng = make_np_rng(seed)
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = ranks**-skew
    weights /= weights.sum()
    draws = rng.choice(universe, size=n, p=weights)
    for rank in draws:
        yield f"{prefix}{int(rank)}"


def hashtag_stream(
    n: int,
    background_tags: int = 5_000,
    skew: float = 1.05,
    trending: dict[str, float] | None = None,
    seed: int = 0,
) -> Iterator[str]:
    """A hashtag stream: a Zipfian background plus injected trending tags.

    ``trending`` maps a tag name to the fraction of the stream it should
    occupy (e.g. ``{"#vldb": 0.05}``). Trending occurrences are interleaved
    uniformly at random, which is what a frequent-elements sketch must
    separate from the background.
    """
    trending = dict(trending or {})
    total_trend = sum(trending.values())
    if total_trend >= 1.0:
        raise ParameterError("trending fractions must sum to < 1")
    if any(f <= 0 for f in trending.values()):
        raise ParameterError("trending fractions must be positive")
    rng = make_np_rng(seed)
    background = list(
        zipf_stream(n, universe=background_tags, skew=skew, seed=seed, prefix="#tag")
    )
    tags = list(trending)
    if tags:
        probs = np.array([trending[t] for t in tags])
        mask = rng.random(n) < total_trend
        choices = rng.choice(len(tags), size=n, p=probs / probs.sum())
        for i in range(n):
            yield tags[choices[i]] if mask[i] else background[i]
    else:
        yield from background
