"""Click / visitor / session streams for audience-analysis workloads."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng


@dataclass(frozen=True)
class ClickEvent:
    """One page view: who clicked what, when."""

    timestamp: float
    user_id: str
    page: str


def visitor_stream(
    n: int, unique_visitors: int, revisit_skew: float = 0.8, seed: int = 0
) -> Iterator[str]:
    """*n* visitor ids with exactly ``unique_visitors`` distinct values.

    Revisit frequency is Zipf-skewed (a few power users dominate), the shape
    cardinality estimators must be robust to. Every one of the
    ``unique_visitors`` ids appears at least once when ``n`` allows.
    """
    if unique_visitors <= 0:
        raise ParameterError("unique_visitors must be positive")
    if n < unique_visitors:
        raise ParameterError("n must be >= unique_visitors to realise the cardinality")
    rng = make_np_rng(seed)
    ranks = np.arange(1, unique_visitors + 1, dtype=np.float64)
    weights = ranks**-revisit_skew
    weights /= weights.sum()
    extra = rng.choice(unique_visitors, size=n - unique_visitors, p=weights)
    ids = np.concatenate([np.arange(unique_visitors), extra])
    rng.shuffle(ids)
    for uid in ids:
        yield f"user{int(uid)}"


def click_stream(
    n: int,
    unique_visitors: int = 1_000,
    pages: int = 200,
    page_skew: float = 1.0,
    rate_per_sec: float = 100.0,
    seed: int = 0,
) -> Iterator[ClickEvent]:
    """A timestamped click stream with Poisson arrivals and Zipf page popularity."""
    if rate_per_sec <= 0:
        raise ParameterError("rate_per_sec must be positive")
    rng = make_np_rng(seed)
    users = list(visitor_stream(n, min(unique_visitors, n), seed=seed))
    ranks = np.arange(1, pages + 1, dtype=np.float64)
    weights = ranks**-page_skew
    weights /= weights.sum()
    page_ids = rng.choice(pages, size=n, p=weights)
    gaps = rng.exponential(1.0 / rate_per_sec, size=n)
    now = 0.0
    for i in range(n):
        now += float(gaps[i])
        yield ClickEvent(timestamp=now, user_id=users[i], page=f"/page/{int(page_ids[i])}")


def session_stream(
    sessions: int,
    mean_session_len: float = 8.0,
    seed: int = 0,
) -> Iterator[list[ClickEvent]]:
    """Yield complete user sessions (bursts of clicks sharing a user id).

    Session lengths are geometric; inside a session clicks arrive seconds
    apart, between sessions minutes pass — the pattern session-window
    operators must segment.
    """
    if sessions < 0:
        raise ParameterError("sessions must be non-negative")
    rng = make_np_rng(seed)
    now = 0.0
    for s in range(sessions):
        now += float(rng.exponential(300.0))  # inter-session gap, seconds
        length = 1 + int(rng.geometric(1.0 / mean_session_len))
        events = []
        for __ in range(length):
            now += float(rng.exponential(5.0))  # intra-session gap
            events.append(
                ClickEvent(timestamp=now, user_id=f"user{s}", page=f"/page/{int(rng.integers(100))}")
            )
        yield events
