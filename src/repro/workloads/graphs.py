"""Edge streams for semi-streaming graph algorithm workloads."""

from __future__ import annotations

from typing import Iterator

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng


def edge_stream(
    nodes: int, edges: int, seed: int = 0, allow_duplicates: bool = True
) -> Iterator[tuple[int, int]]:
    """*edges* uniform random undirected edges over ``range(nodes)``.

    Self-loops are excluded. With ``allow_duplicates=False`` the stream is a
    uniform simple graph (requires ``edges <= nodes*(nodes-1)/2``).
    """
    if nodes < 2:
        raise ParameterError("need at least 2 nodes")
    max_edges = nodes * (nodes - 1) // 2
    if not allow_duplicates and edges > max_edges:
        raise ParameterError(f"at most {max_edges} simple edges over {nodes} nodes")
    rng = make_np_rng(seed)
    seen: set[tuple[int, int]] = set()
    produced = 0
    while produced < edges:
        u = int(rng.integers(nodes))
        v = int(rng.integers(nodes))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if not allow_duplicates:
            if key in seen:
                continue
            seen.add(key)
        produced += 1
        yield key


def power_law_edge_stream(
    nodes: int, edges: int, skew: float = 1.2, seed: int = 0
) -> Iterator[tuple[int, int]]:
    """Edges whose endpoints are Zipf-distributed (hub-dominated web graph)."""
    if nodes < 2:
        raise ParameterError("need at least 2 nodes")
    if skew <= 0:
        raise ParameterError("skew must be positive")
    import numpy as np

    rng = make_np_rng(seed)
    ranks = np.arange(1, nodes + 1, dtype=np.float64)
    weights = ranks**-skew
    weights /= weights.sum()
    produced = 0
    while produced < edges:
        u, v = (int(x) for x in rng.choice(nodes, size=2, p=weights))
        if u == v:
            continue
        produced += 1
        yield (min(u, v), max(u, v))
