"""Sensor telemetry series with injected anomalies, seasonality and gaps."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng


@dataclass(frozen=True)
class AnnotatedSeries:
    """A series plus ground truth about what was injected into it."""

    values: np.ndarray
    anomaly_indices: tuple[int, ...] = ()
    missing_indices: tuple[int, ...] = ()
    clean: np.ndarray | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.values)


def random_walk_series(
    n: int, step_std: float = 1.0, start: float = 0.0, seed: int = 0
) -> np.ndarray:
    """A Gaussian random walk of length *n* (baseline telemetry signal)."""
    if n < 0:
        raise ParameterError("n must be non-negative")
    rng = make_np_rng(seed)
    return start + np.cumsum(rng.normal(0.0, step_std, size=n))


def seasonal_series(
    n: int,
    period: int = 96,
    amplitude: float = 10.0,
    trend: float = 0.0,
    noise_std: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """A trend + sinusoidal-seasonality + noise series (daily-cycle metric)."""
    if period <= 0:
        raise ParameterError("period must be positive")
    rng = make_np_rng(seed)
    t = np.arange(n, dtype=np.float64)
    return (
        trend * t
        + amplitude * np.sin(2 * np.pi * t / period)
        + rng.normal(0.0, noise_std, size=n)
    )


def sensor_stream_with_anomalies(
    n: int,
    anomaly_rate: float = 0.005,
    anomaly_magnitude: float = 8.0,
    base_std: float = 1.0,
    seed: int = 0,
) -> AnnotatedSeries:
    """White-noise telemetry with point anomalies of known location.

    Anomalies are spikes of ``anomaly_magnitude`` standard deviations with
    random sign — the classic injected-outlier benchmark for streaming
    detectors. Returns the series and the injected indices as ground truth.
    """
    if not 0 <= anomaly_rate < 1:
        raise ParameterError("anomaly_rate must lie in [0, 1)")
    rng = make_np_rng(seed)
    clean = rng.normal(0.0, base_std, size=n)
    values = clean.copy()
    count = int(round(n * anomaly_rate))
    indices = np.sort(rng.choice(n, size=count, replace=False)) if count else np.array([], dtype=int)
    signs = rng.choice([-1.0, 1.0], size=count)
    values[indices] += signs * anomaly_magnitude * base_std
    return AnnotatedSeries(
        values=values,
        anomaly_indices=tuple(int(i) for i in indices),
        clean=clean,
    )


def series_with_missing_values(
    n: int,
    missing_rate: float = 0.05,
    period: int = 64,
    seed: int = 0,
) -> AnnotatedSeries:
    """A smooth seasonal series where a fraction of points is masked NaN.

    Used by the data-prediction benches: a predictor sees the NaN positions
    and must reconstruct them; the clean series is the ground truth.
    """
    if not 0 <= missing_rate < 1:
        raise ParameterError("missing_rate must lie in [0, 1)")
    rng = make_np_rng(seed)
    clean = seasonal_series(n, period=period, amplitude=5.0, noise_std=0.3, seed=seed)
    values = clean.copy()
    count = int(round(n * missing_rate))
    indices = np.sort(rng.choice(n, size=count, replace=False)) if count else np.array([], dtype=int)
    values[indices] = np.nan
    return AnnotatedSeries(
        values=values,
        missing_indices=tuple(int(i) for i in indices),
        clean=clean,
    )
