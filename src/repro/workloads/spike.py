"""The traffic-spike workload: the elastic runtime's canonical stress.

The paper's motivating scenario for real-time scale-out is the traffic
spike — a breaking-news burst that multiplies per-tuple work for minutes,
then subsides. A topology provisioned for the spike wastes workers the
rest of the day; provisioned for the calm, it falls behind exactly when
the answers matter. This generator produces that shape, seeded and
phase-annotated:

* **calm** — key-only events (``value is None``): the cheap counting /
  membership path. One worker keeps up easily.
* **spike** — every event carries a measurement; the quantile stage's
  sorted-buffer inserts are ``O(n)`` in its buffer, so the per-tuple cost
  *grows* through the phase — a workload-relative pressure ramp that
  throttles the sources regardless of how fast the host is.
* **tail** — calm again; the spike's buffers linger, but nothing feeds
  them, so pressure vanishes and capacity should be handed back.

:func:`build_spike_topology` pairs the stream with the standard
keyed-analytics bolts (hot keys, audience, burst latency quantiles) whose
state is mergeable *and* splittable — the elastic runtime re-shards all
of them exactly (see ``tests/core/test_split_roundtrip.py``), so any
rescale schedule must fingerprint-match the fixed-parallelism baseline.
"""

from __future__ import annotations

import random

from repro.common.exceptions import ParameterError
from repro.frequency.count_min import CountMinSketch
from repro.cardinality.hyperloglog import HyperLogLog
from repro.platform.operators import FlatMapBolt, SynopsisBolt
from repro.platform.topology import ListSpout, Topology, TopologyBuilder
from repro.quantiles.exact import ExactQuantiles

#: The bolts whose parallelism an autoscaler should track with the
#: worker count (their state splits; splitting divides their work).
SPIKE_TRACKED_BOLTS = ("latency", "hot_keys", "audience")


def spike_records(
    n_calm: int = 3_000,
    n_spike: int = 10_000,
    n_tail: int = 5_000,
    n_keys: int = 64,
    seed: int = 7,
) -> list[tuple[str, float | None]]:
    """A calm → spike → tail event stream of ``(key, value)`` payloads.

    Calm/tail events carry ``value=None`` (cheap); spike events carry a
    uniform float measurement (heavy: each one lands in the quantile
    stage's sorted buffer). Deterministic per seed.
    """
    for name, count in (("n_calm", n_calm), ("n_spike", n_spike), ("n_tail", n_tail)):
        if count < 0:
            raise ParameterError(f"{name} must be non-negative")
    if n_keys <= 0:
        raise ParameterError("n_keys must be positive")
    rng = random.Random(seed)
    records: list[tuple[str, float | None]] = []
    for count, heavy in ((n_calm, False), (n_spike, True), (n_tail, False)):
        for __ in range(count):
            key = f"k{rng.randrange(n_keys)}"
            value = rng.random() if heavy else None
            records.append((key, value))
    return records


def _burst_fanout(amplify: int):
    """Spike events explode into *amplify* measurements; calm events die.

    This is the "per-tuple work multiplies during the burst" half of the
    spike story: a breaking-news event does not just arrive more often,
    each arrival fans out into more downstream records (retweets,
    impressions, per-edge timings). The fan-out happens *inside the
    workers*, so the pressure it creates is exactly the kind an elastic
    runtime can relieve by adding workers — unlike coordinator-side
    routing cost, which rescaling cannot touch.
    """

    def fanout(values: tuple) -> list[tuple]:
        if values[1] is None:
            return []
        return [(values[0], values[1] + i) for i in range(amplify)]

    return fanout


def build_spike_topology(
    records: list[tuple[str, float | None]],
    quantile_parallelism: int = 1,
    sketch_parallelism: int = 1,
    batch_size: int = 64,
    amplify: int = 8,
) -> Topology:
    """events → {hot_keys, audience} keyed; events → burst → latency.

    ::

        events ──fields(key)──> hot_keys  (CountMin,   par=sketch)
               ──fields(key)──> audience  (HyperLogLog, par=sketch)
               ──shuffle──────> burst     (fan spike events ×amplify,
                                  │        drop value-less events)
                                  └─fields(value)──> latency
                                         (ExactQuantiles, par=quantile)

    The quantile stage only sees spike-phase events — each amplified
    ``amplify``-fold by the ``burst`` fan-out — so its load, and with it
    the cluster's pressure signals, follows the workload's phases. All
    three synopsis bolts hold splittable state; rescaling their
    parallelism mid-run must leave the merged answers
    fingerprint-identical to any fixed-parallelism run.
    """
    if amplify <= 0:
        raise ParameterError("amplify must be positive")
    builder = TopologyBuilder()
    builder.set_spout("events", lambda: ListSpout(records))
    builder.set_bolt(
        "hot_keys",
        lambda: SynopsisBolt(
            lambda: CountMinSketch(512, 4), batch_size=batch_size
        ),
        parallelism=sketch_parallelism,
    ).fields("events", 0)
    builder.set_bolt(
        "audience",
        lambda: SynopsisBolt(
            lambda: HyperLogLog(precision=12), batch_size=batch_size
        ),
        parallelism=sketch_parallelism,
    ).fields("events", 0)
    builder.set_bolt(
        "burst", lambda: FlatMapBolt(_burst_fanout(amplify))
    ).shuffle("events")
    builder.set_bolt(
        "latency",
        lambda: SynopsisBolt(
            ExactQuantiles,
            extract=lambda values: values[1],
            batch_size=batch_size,
        ),
        parallelism=quantile_parallelism,
    ).fields("burst", 1)
    return builder.build()
