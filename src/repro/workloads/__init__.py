"""Synthetic workload generators standing in for production streams.

The paper motivates its algorithm taxonomy with Twitter-scale workloads
(tweets/hashtags, site audiences, sensor telemetry, click streams, web
graphs). Those traces are proprietary, so this package provides seeded
generators whose *distributional shape* — skew, cardinality, drift,
burstiness — is explicitly controlled, which is what the algorithms'
accuracy/space trade-offs actually depend on.
"""

from repro.workloads.graphs import edge_stream, power_law_edge_stream
from repro.workloads.sensors import (
    random_walk_series,
    seasonal_series,
    sensor_stream_with_anomalies,
    series_with_missing_values,
)
from repro.workloads.serving import (
    WorkloadResult,
    query_stream,
    run_closed_loop,
    run_closed_loop_sync,
)
from repro.workloads.spike import (
    SPIKE_TRACKED_BOLTS,
    build_spike_topology,
    spike_records,
)
from repro.workloads.text import hashtag_stream, zipf_stream
from repro.workloads.web import click_stream, session_stream, visitor_stream

__all__ = [
    "SPIKE_TRACKED_BOLTS",
    "WorkloadResult",
    "build_spike_topology",
    "click_stream",
    "edge_stream",
    "hashtag_stream",
    "power_law_edge_stream",
    "query_stream",
    "random_walk_series",
    "run_closed_loop",
    "run_closed_loop_sync",
    "seasonal_series",
    "sensor_stream_with_anomalies",
    "series_with_missing_values",
    "session_stream",
    "spike_records",
    "visitor_stream",
    "zipf_stream",
]
