"""The closed-loop "millions of users" serving workload.

N virtual users hammer a serving endpoint over keep-alive HTTP
connections, each issuing its next query only after the previous answer
arrives (closed-loop, so offered load self-regulates to the server's
capacity — the standard serving-benchmark shape). The query mix is
Zipf-skewed the same way the demo word stream is: hot words are hot
queries, which is exactly what makes a result cache pay.

Determinism: each user's query stream is an independent RNG derived
from ``derive_seed(seed, user_index)``, so the *set of queries issued*
is reproducible under a seed regardless of scheduling. Response digests
cover (op, result) pairs per user in issue order, so two runs against
the same frozen snapshot must produce bit-identical digests — the bench
uses that as its cached-vs-uncached equivalence check.

The client is stdlib-asyncio only, mirroring the server.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.common.exceptions import ParameterError
from repro.common.rng import derive_seed, make_rng

#: Default op mix (weights need not sum to 1; they are normalized).
#: Point lookups dominate, as in any real serving tier.
DEFAULT_MIX: tuple[tuple[str, float], ...] = (
    ("point", 0.55),
    ("topk", 0.20),
    ("cardinality", 0.10),
    ("range", 0.10),
    ("quantile", 0.05),
)

#: Which StreamSummary child each op targets in the serving demo summary.
_OP_SYNOPSIS = {
    "point": "freq",
    "topk": "topk",
    "cardinality": "uniques",
    "range": "lengths",
    "quantile": "lengths",
}


def query_stream(
    seed: int,
    user: int = 0,
    mix: tuple[tuple[str, float], ...] = DEFAULT_MIX,
) -> Iterator[dict[str, Any]]:
    """An endless, seeded, Zipf-skewed stream of wire query documents.

    *user* selects an independent derived RNG stream, so N virtual users
    under one seed issue uncorrelated (but reproducible) query mixes.
    """
    total = sum(weight for _op, weight in mix)
    if total <= 0:
        raise ParameterError("mix weights must sum to a positive value")
    rnd = make_rng(derive_seed(seed, user))
    while True:
        pick = rnd.random() * total
        for op, weight in mix:
            pick -= weight
            if pick < 0:
                break
        doc: dict[str, Any] = {"op": op, "synopsis": _OP_SYNOPSIS[op]}
        if op == "point":
            # The demo stream's own skew: quadratic mass toward w0.
            doc["item"] = f"w{int(rnd.random() ** 2 * 50)}"
        elif op == "topk":
            doc["k"] = (3, 5, 10)[int(rnd.random() * 3)]
        elif op == "quantile":
            doc["q"] = round(rnd.random(), 2)
        elif op == "range":
            lo = 1 + int(rnd.random() * 3)
            doc["lo"], doc["hi"] = lo, lo + 1 + int(rnd.random() * 2)
        yield doc


@dataclass
class WorkloadResult:
    """Aggregate outcome of one closed-loop run."""

    n_users: int
    n_queries: int = 0
    n_errors: int = 0
    n_cached: int = 0
    wall_seconds: float = 0.0
    latencies_s: list[float] = field(default_factory=list)
    op_counts: dict[str, int] = field(default_factory=dict)
    #: sha256 over every user's (op, result) sequence, users in index
    #: order — the bit-identical-responses equivalence witness.
    digest: str = ""
    epochs: set[int] = field(default_factory=set)
    snapshot_age_max_s: float = 0.0

    @property
    def qps(self) -> float:
        return self.n_queries / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        return self.n_cached / self.n_queries if self.n_queries else 0.0

    def latency_quantile(self, q: float) -> float:
        """The *q*-quantile of observed latencies (0.0 when empty)."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


class _HttpUser:
    """One keep-alive connection issuing queries in lockstep."""

    def __init__(
        self,
        host: str,
        port: int,
        queries: list[dict[str, Any]],
        clock: Callable[[], float],
    ):
        self.host = host
        self.port = port
        self.queries = queries
        self._clock = clock
        self.latencies_s: list[float] = []
        self.n_errors = 0
        self.n_cached = 0
        self.op_counts: dict[str, int] = {}
        self.epochs: set[int] = set()
        self.snapshot_age_max_s = 0.0
        self._sha = hashlib.sha256()

    @property
    def digest_update(self) -> bytes:
        return self._sha.digest()

    async def run(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            for doc in self.queries:
                body = json.dumps(doc).encode("utf-8")
                head = (
                    "POST /query HTTP/1.1\r\n"
                    f"Host: {self.host}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "\r\n"
                )
                start = self._clock()
                writer.write(head.encode("ascii") + body)
                await writer.drain()
                status, payload = await _read_response(reader)
                self.latencies_s.append(self._clock() - start)
                self.op_counts[doc["op"]] = self.op_counts.get(doc["op"], 0) + 1
                if status != 200 or not payload.get("ok"):
                    self.n_errors += 1
                    continue
                if payload.get("cached"):
                    self.n_cached += 1
                self.epochs.add(payload.get("epoch", -1))
                self.snapshot_age_max_s = max(
                    self.snapshot_age_max_s, payload.get("snapshot_age_s", 0.0)
                )
                self._sha.update(
                    json.dumps(
                        [doc["op"], payload.get("result")], sort_keys=True
                    ).encode("utf-8")
                )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass


async def _read_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, Any]]:
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    payload = await reader.readexactly(length) if length else b""
    try:
        return status, json.loads(payload)
    except json.JSONDecodeError:
        return status, {}


async def run_closed_loop(
    host: str,
    port: int,
    *,
    n_users: int = 8,
    queries_per_user: int = 50,
    seed: int = 7,
    mix: tuple[tuple[str, float], ...] = DEFAULT_MIX,
    clock: Callable[[], float] | None = None,
) -> WorkloadResult:
    """Run the seeded closed-loop workload against a live endpoint."""
    if n_users <= 0 or queries_per_user <= 0:
        raise ParameterError("n_users and queries_per_user must be positive")
    ticker = clock if clock is not None else time.perf_counter
    users = []
    for index in range(n_users):
        stream = query_stream(seed, index, mix)
        queries = [next(stream) for _ in range(queries_per_user)]
        users.append(_HttpUser(host, port, queries, ticker))
    start = ticker()
    await asyncio.gather(*(user.run() for user in users))
    wall = ticker() - start
    result = WorkloadResult(n_users=n_users, wall_seconds=wall)
    sha = hashlib.sha256()
    for user in users:
        result.n_queries += len(user.latencies_s)
        result.n_errors += user.n_errors
        result.n_cached += user.n_cached
        result.latencies_s.extend(user.latencies_s)
        result.epochs |= user.epochs
        result.snapshot_age_max_s = max(
            result.snapshot_age_max_s, user.snapshot_age_max_s
        )
        for op, count in user.op_counts.items():
            result.op_counts[op] = result.op_counts.get(op, 0) + count
        sha.update(user.digest_update)
    result.digest = sha.hexdigest()
    return result


def run_closed_loop_sync(host: str, port: int, **kwargs: Any) -> WorkloadResult:
    """:func:`run_closed_loop` from synchronous code (bench, tests)."""
    return asyncio.run(run_closed_loop(host, port, **kwargs))
