"""The cluster worker: one process, a shard of every bolt, a local loop.

A worker owns the bolt tasks its :class:`~repro.cluster.plan.ShardPlan`
assigned to it (Storm worker slots). Its life is a message loop over the
inbox queue:

``tuples`` / ``frames``
    A batch of deliveries ``(component, task, values, root, tuple_id, …)``.
    Under the queue transport the batch rides the message itself (as a
    pre-pickled blob, so the coordinator can account transported bytes);
    under the shm transport the message is only a *doorbell* — the actual
    batch is a columnar frame (:mod:`repro.cluster.columnar`) popped off
    the worker's shared-memory inbox ring (:mod:`repro.cluster.shm`).
    The worker processes each delivery through the owning bolt; emissions
    are routed with the worker's own grouping instances — targets the
    worker owns go onto the *local* deque (no process hop, the
    shard-affinity fast path), remote targets are buffered and returned
    to the coordinator for re-routing (via the outbox ring under shm).
    The reply carries XOR ack deltas per tuple tree, so the coordinator's
    acker tracks completion without per-hop round trips.
``snapshot`` / ``restore``
    Checkpoint capture/rollback: every owned bolt's ``snapshot()`` is
    shipped as :mod:`repro.core.stateship` bytes; restore rebuilds fresh
    bolts and applies the shipped state (or factory state when None).
``flush`` / ``query`` / ``stop``
    End-of-stream flushing per component (fault injection suspended, as in
    the local executor), merge-on-query state capture, and shutdown with a
    final metrics/span export.

Crash injection rides the same :class:`~repro.platform.faults.FaultInjector`
contract as the local executor: ``should_drop`` loses deliveries in
transit, ``note_processed`` fires a one-shot crash — realized here as a
hard ``os._exit``, so the parent sees a genuinely dead process, not an
exception.

Every message is epoch-tagged. After a rollback the coordinator bumps the
epoch; stale envelopes still sitting in a survivor's inbox are processed
(their replies are discarded upstream) and the subsequent ``restore``
overwrites any state they touched — the standard "ignore messages from a
previous incarnation" rule of checkpoint/rollback protocols.
"""

from __future__ import annotations

import itertools
import os
import pickle
import queue
import time
from collections import deque
from typing import Any

from repro.common.exceptions import ExecutionError
from repro.common.rng import derive_seed
from repro.core import stateship
from repro.obs.live import DeltaExporter
from repro.obs.metrics import MetricRegistry
from repro.obs.tracing import Span, next_span_id
from repro.platform.faults import NO_FAULTS, FaultInjector
from repro.platform.topology import Topology

from repro.cluster import columnar, obsbridge
from repro.cluster.plan import ShardPlan

#: Exit code used by injected crashes (distinguishable from real faults).
CRASH_EXIT_CODE = 23


def _tuple_id_factory(worker_id: int):
    """Worker-salted unique tuple ids (no collisions across processes)."""
    counter = itertools.count(1)
    salt = 0xC1A57E50 ^ (worker_id + 1)
    return lambda: derive_seed(salt, next(counter))


class ClusterWorker:
    """The in-process half of a worker; ``worker_main`` drives it."""

    def __init__(
        self,
        worker_id: int,
        topology: Topology,
        plan: ShardPlan,
        faults: FaultInjector | None = None,
        observe: bool = False,
        telemetry_interval: float | None = None,
        event_time_fn=None,
    ):
        self.worker_id = worker_id
        self.topology = topology
        self.plan = plan
        self.faults = faults or NO_FAULTS
        self.telemetry_interval = telemetry_interval
        self.epoch = 0
        self._next_tuple_id = _tuple_id_factory(worker_id)
        self._shards = plan.tasks_of(worker_id)
        self._bolts: dict[tuple[str, int], Any] = {}
        self._build_bolts()
        self._local: deque = deque()
        self._in_flush = False
        # Per-envelope reply state.
        self._remote: list[tuple] = []
        self._deltas: dict[int, int] = {}
        self._lost = 0
        self._processed_by_component: dict[str, int] = {}
        self._emitted_by_component: dict[str, int] = {}
        # Observability (private plane, exported through the bridge).
        self.registry = MetricRegistry() if observe else None
        self.spans: list[Span] = []
        # Live telemetry: change-only flushes plus per-component frontiers
        # (highest root id fully processed → offset-unit watermarks; an
        # event_time_fn lifts them into event-time units). All of it is
        # gated on the registry so unobserved runs pay nothing.
        self._exporter = DeltaExporter(self.registry) if observe else None
        self._event_time_fn = event_time_fn
        self._frontier: dict[str, float] = {}
        self._event_frontier: dict[str, float] = {}
        self._processed_total = 0
        self._telemetry_seq = 0
        self._last_telemetry = time.monotonic()
        #: Optional payload shipper (set by ``worker_main``). With it in
        #: place the drain loop ticks the flush gate every few entries, so
        #: the span-loss bound holds even when one envelope carries a whole
        #: checkpoint round's tuples.
        self.telemetry_sink: Any | None = None
        if self.registry is not None:
            self._m_processed = self.registry.counter(
                "repro_cluster_worker_tuples_processed_total",
                "Tuples processed by this worker",
                labelnames=("component",),
            )
            self._m_emitted = self.registry.counter(
                "repro_cluster_worker_tuples_emitted_total",
                "Tuples emitted by this worker's bolts",
                labelnames=("component",),
            )
            self._m_batch = self.registry.histogram(
                "repro_cluster_worker_batch_tuples",
                "Deliveries per inbox envelope",
            )

    def _build_bolts(self) -> None:
        for name, task in self._shards:
            comp = self.topology.components[name]
            bolt = comp.factory()
            bolt.prepare(task, comp.parallelism)
            self._bolts[(name, task)] = bolt

    # -- routing ----------------------------------------------------------

    def _route(self, source: str, values: tuple, root, trace) -> int:
        """Worker-side fan-out of one emission; returns delivered copies.

        Local targets go straight onto the local deque; remote targets are
        buffered for the coordinator. Every copy's tuple id is XORed into
        the root's ack delta *at emit* (anchoring) — including copies the
        fault injector then loses in transit. A dropped copy is anchored
        but never consumed, so its id is never XORed back out, the tree
        never completes, and the coordinator times out and replays: exactly
        Storm's at-least-once contract.
        """
        delivered = 0
        for consumer, grouping in self.topology.consumers_of(source):
            comp = self.topology.components[consumer]
            for task in grouping.targets_batch([values], comp.parallelism)[0]:
                tuple_id = self._next_tuple_id()
                if root is not None:
                    self._deltas[root] = self._deltas.get(root, 0) ^ tuple_id
                if not self._in_flush and self.faults.should_drop():
                    self._lost += 1
                    continue
                entry = (consumer, task, values, root, tuple_id, trace)
                dest = self.plan.worker_of(consumer, task)
                if dest == self.worker_id:
                    self._local.append(entry)
                else:
                    # Tagged with the destination so the coordinator can
                    # forward whole frames without decoding (star
                    # transport's second hop as a byte copy).
                    self._remote.append((dest, entry))
                delivered += 1
        return delivered

    # -- processing -------------------------------------------------------

    def _process_entry(self, entry: tuple) -> None:
        component, task, values, root, tuple_id, trace = entry
        bolt = self._bolts[(component, task)]
        emitted: list[tuple] = []
        emit = lambda *vals: emitted.append(vals)  # noqa: E731 - hot path
        span = None
        if trace is not None and self.registry is not None:
            trace_id, parent_span, attempt = trace
            started = time.perf_counter()
            span = Span(
                trace_id=trace_id,
                span_id=next_span_id(),
                parent_id=parent_span,
                component=f"bolt:{component}",
                kind="process",
                start=started,
                attempt=attempt,
                task=task,
                msg_id=root,
            )
        bolt.process(values, emit)
        if span is not None:
            span.duration = time.perf_counter() - span.start
            self.spans.append(span)
            trace = (span.trace_id, span.span_id, span.attempt)
        self._processed_by_component[component] = (
            self._processed_by_component.get(component, 0) + 1
        )
        if self.registry is not None:
            self._processed_total += 1
            # Frontier tracking for event-time watermarks: root ids are
            # coordinator-issued and monotone, so "highest root fully
            # processed" is this shard's offset-unit frontier.
            if root is not None and root > self._frontier.get(component, 0):
                self._frontier[component] = root
            if self._event_time_fn is not None:
                event_time = self._event_time_fn(component, values)
                if event_time is not None and event_time > self._event_frontier.get(
                    component, float("-inf")
                ):
                    self._event_frontier[component] = event_time
        fan_out = 0
        for values_out in emitted:
            self._emitted_by_component[component] = (
                self._emitted_by_component.get(component, 0) + 1
            )
            fan_out += self._route(component, values_out, root, trace)
        if span is not None:
            span.fan_out = fan_out
        if root is not None:
            # XOR out the consumed tuple id (Storm's acker algebra).
            self._deltas[root] = self._deltas.get(root, 0) ^ tuple_id
        if self.faults.note_processed():
            os._exit(CRASH_EXIT_CODE)

    def _drain_local(self) -> int:
        n = 0
        while self._local:
            self._process_entry(self._local.popleft())
            n += 1
            # A single frame can hold thousands of small tuples: without
            # this mid-drain tick a worker could process (and crash
            # through) a whole flush interval's worth of work between
            # envelope boundaries. Every-128 keeps the per-tuple cost to
            # one modulo; the time check lives behind the gate.
            if n % 128 == 0 and self.telemetry_sink is not None:
                self.maybe_ship_telemetry()
        return n

    def maybe_ship_telemetry(self) -> None:
        """Gated flush straight to :attr:`telemetry_sink` (no-op without one)."""
        if self.telemetry_sink is not None:
            payload = self.maybe_flush_telemetry()
            if payload is not None:
                self.telemetry_sink(payload)

    def _reply_payload(self, n_delivered: int) -> dict[str, Any]:
        reply = {
            "n": n_delivered,
            "remote": self._remote,  # (dest_worker, entry) pairs
            "deltas": list(self._deltas.items()),
            "lost": self._lost,
            "processed": dict(self._processed_by_component),
            "emitted": dict(self._emitted_by_component),
        }
        self._remote = []
        self._deltas = {}
        self._lost = 0
        self._processed_by_component = {}
        self._emitted_by_component = {}
        return reply

    # -- message handlers -------------------------------------------------

    def handle_tuples(self, entries: list[tuple]) -> dict[str, Any]:
        """Process an inbox envelope and its whole local cascade."""
        if self.registry is not None:
            self._m_batch.observe(len(entries))
        for entry in entries:
            self._local.append(entry)
        n = self._drain_local()
        if self.registry is not None:
            for component, count in self._processed_by_component.items():
                self._m_processed.labels(component=component).inc(count)
            for component, count in self._emitted_by_component.items():
                self._m_emitted.labels(component=component).inc(count)
        return self._reply_payload(n)

    def handle_flush(self, component: str) -> dict[str, Any]:
        """End-of-stream flush of this worker's shards of *component*."""
        self._in_flush = True
        try:
            for name, task in self._shards:
                if name != component:
                    continue
                bolt = self._bolts[(name, task)]
                emitted: list[tuple] = []
                bolt.flush(lambda *vals: emitted.append(vals))
                for values in emitted:
                    self._route(component, values, None, None)
            self._drain_local()
            return self._reply_payload(0)
        finally:
            self._in_flush = False

    def handle_snapshot(self) -> dict[tuple[str, int], bytes | None]:
        """Capture every owned bolt's checkpoint state as shipped bytes."""
        out: dict[tuple[str, int], bytes | None] = {}
        for key, bolt in self._bolts.items():
            state = bolt.snapshot()
            out[key] = None if state is None else stateship.capture({"state": state})
        return out

    def handle_restore(self, states: dict[tuple[str, int], bytes | None]) -> None:
        """Roll every owned bolt back to the shipped checkpoint (fresh
        factory state when the checkpoint predates the bolt's first
        snapshot or no checkpoint exists)."""
        self._local.clear()
        self._remote = []
        self._deltas = {}
        self._lost = 0
        self._build_bolts()  # fresh instances, factory-supplied callables
        for key, bolt in self._bolts.items():
            payload = states.get(key)
            if payload is not None:
                bolt.restore(stateship.restore(payload)["state"])

    def handle_query(self, component: str | None) -> dict[tuple[str, int], bytes]:
        """Ship the requested shards' snapshot state (merge-on-query)."""
        out: dict[tuple[str, int], bytes] = {}
        for (name, task), bolt in self._bolts.items():
            if component is not None and name != component:
                continue
            out[(name, task)] = stateship.capture({"state": bolt.snapshot()})
        return out

    def export_obs(self) -> tuple[list[dict], list[Span]]:
        """Snapshot this worker's metric samples and drain its spans."""
        metrics = (
            obsbridge.export_metrics(self.registry) if self.registry is not None else []
        )
        spans, self.spans = self.spans, []
        return metrics, spans

    def maybe_flush_telemetry(self, force: bool = False) -> dict[str, Any] | None:
        """Interval-gated delta telemetry flush; None when it is not time.

        This is the *only* sanctioned export path inside the worker loop
        (streamlint SL014 enforces it): the gate makes telemetry cost
        O(changed children / interval) instead of O(messages). Returns the
        flush payload — change-only metric records, drained spans, the
        per-component frontiers — or None when the interval has not
        elapsed, telemetry is disabled, or nothing changed. Flushes ship
        *cumulative* state, so a skipped or lost flush only delays
        freshness. ``force`` bypasses the gate (shutdown path).
        """
        if self._exporter is None:
            return None
        if not force and self.telemetry_interval is None:
            return None
        now = time.monotonic()
        if (
            not force
            and now - self._last_telemetry < (self.telemetry_interval or 0.0)
        ):
            return None
        self._last_telemetry = now
        records = self._exporter.collect()
        spans, self.spans = self.spans, []
        if not records and not spans and not force:
            return None  # idle worker: don't spam the results queue
        self._telemetry_seq += 1
        return {
            "seq": self._telemetry_seq,
            "pid": os.getpid(),
            "metrics": records,
            "spans": spans,
            "frontier": dict(self._frontier),
            "event_frontier": dict(self._event_frontier),
            "processed_total": self._processed_total,
        }


def _push_outbox(ring, frame: bytes, deadline: float = 30.0) -> None:
    """Push one frame to the outbox ring, waiting out backpressure.

    The coordinator drains outbox rings eagerly (including while it is
    itself blocked on a full inbox ring), so a full outbox clears unless
    the coordinator is gone or wedged — hence the orphan check and the
    hard deadline (a dead worker is recoverable upstream; silent data
    loss is not).
    """
    start = time.monotonic()
    while not ring.try_push(frame):
        if os.getppid() == 1:  # coordinator gone; nobody will ever drain
            os._exit(0)
        if time.monotonic() - start > deadline:
            raise ExecutionError(
                f"outbox ring full for {deadline:.0f}s; coordinator stalled"
            )
        time.sleep(0.0005)  # streamlint: disable=SL010 - bounded backpressure wait


def worker_main(
    worker_id: int,
    topology: Topology,
    plan: ShardPlan,
    inbox,
    results,
    faults: FaultInjector | None = None,
    observe: bool = False,
    channel=None,
    max_frame: int = 1 << 18,
    telemetry_interval: float | None = None,
    event_time_fn=None,
) -> None:
    """Child-process entry point: loop over *inbox* until ``stop``.

    Replies go to the shared *results* queue tagged with the worker id and
    the envelope's epoch, so the coordinator can discard replies from
    before a rollback. With *channel* (a :class:`repro.cluster.shm.ShmChannel`
    inherited through fork), tuple batches arrive as columnar frames on
    the inbox ring — the queue message is just a doorbell — and remote
    re-route entries leave on the outbox ring instead of riding the reply.

    With *telemetry_interval* set (and observation on), the loop also
    streams interval-gated delta telemetry — changed metrics, buffered
    spans, watermark frontiers — as ``("telemetry", …)`` messages, so the
    coordinator's view is live instead of shutdown-only and a crash loses
    at most one interval of spans.
    """
    worker = ClusterWorker(
        worker_id,
        topology,
        plan,
        faults=faults,
        observe=observe,
        telemetry_interval=telemetry_interval,
        event_time_fn=event_time_fn,
    )
    comp_ids, comp_names = columnar.component_table(plan.components)

    def maybe_ship_telemetry(force: bool = False) -> None:
        # The interval gate lives in maybe_flush_telemetry (SL014's
        # sanctioned path); calling this every loop turn is free.
        payload = worker.maybe_flush_telemetry(force=force)
        if payload is not None:
            results.put(("telemetry", worker_id, worker.epoch, payload))

    # Mid-drain flushes ship through the same queue, so the loss bound is
    # interval + a few tuples, not interval + a whole envelope.
    worker.telemetry_sink = lambda payload: results.put(
        ("telemetry", worker_id, worker.epoch, payload)
    )

    def ship_remote(reply: dict, epoch: int) -> None:
        """Move the reply's remote entries onto the data plane, with byte
        accounting (``out_bytes`` / ``out_pickled``) for the coordinator's
        transport stats.

        Under shm the entries are bucketed by destination worker and each
        frame is prefixed with a 2-byte dest id: the coordinator forwards
        the frame bytes straight into the destination's inbox ring — no
        decode, no re-encode, just a copy.
        """
        remote = reply.pop("remote")
        if channel is None:
            blob = pickle.dumps(remote, protocol=pickle.HIGHEST_PROTOCOL)
            reply["remote_blob"] = blob
            reply["out_bytes"] = len(blob)
            reply["out_pickled"] = len(blob)
            return
        frames = out_bytes = out_pickled = 0
        if remote:
            by_dest: dict[int, list[tuple]] = {}
            for dest, entry in remote:
                by_dest.setdefault(dest, []).append(entry)
            for dest, entries in by_dest.items():
                prefix = dest.to_bytes(2, "little")
                for frame, stats in columnar.encode_frames(
                    entries, epoch, comp_ids, max_frame
                ):
                    _push_outbox(channel.outbox, prefix + frame)
                    frames += 1
                    out_bytes += len(frame)
                    out_pickled += stats.pickled_bytes
        reply["remote_frames"] = frames
        reply["out_bytes"] = out_bytes
        reply["out_pickled"] = out_pickled

    while True:
        # bounded wait so the loop keeps coming around even if the
        # coordinator dies without sending "stop" (orphan check below)
        try:
            message = inbox.get(timeout=1.0)
        except queue.Empty:
            if os.getppid() == 1:  # coordinator gone; we were re-parented
                return
            maybe_ship_telemetry()  # idle tick: keep the health feed fresh
            continue
        kind, epoch = message[0], message[1]
        worker.epoch = max(worker.epoch, epoch)
        if kind == "tuples":
            entries = message[2]
            if isinstance(entries, (bytes, bytearray)):
                entries = pickle.loads(entries)
            reply = worker.handle_tuples(entries)
            ship_remote(reply, epoch)
            results.put(("done", worker_id, epoch, reply))
            maybe_ship_telemetry()
        elif kind == "frames":
            # Drain *everything* waiting, not just one frame: doorbell and
            # frame counts may skew around crash recovery (a reset ring
            # swallows frames, an aborted send leaves a doorbell-less
            # frame), and draining to empty re-aligns them — later
            # doorbells for frames already drained pop None and fall
            # through. One reply per frame keeps the credit accounting
            # exact.
            while (frame := channel.inbox.try_pop()) is not None:
                frame_epoch, entries, _khashes = columnar.decode_entries(
                    frame, comp_names
                )
                worker.epoch = max(worker.epoch, frame_epoch)
                reply = worker.handle_tuples(entries)
                ship_remote(reply, frame_epoch)
                results.put(("done", worker_id, frame_epoch, reply))
                # Tick the gate per frame, not per drain: a saturated ring
                # keeps this loop busy for whole checkpoint rounds, and
                # the span-loss bound (≤ one interval) holds only if the
                # flush clock keeps running *inside* the drain.
                maybe_ship_telemetry()
            maybe_ship_telemetry()
        elif kind == "flush":
            reply = worker.handle_flush(message[2])
            ship_remote(reply, epoch)
            results.put(("flush_ok", worker_id, epoch, reply))
            maybe_ship_telemetry()
        elif kind == "snapshot":
            results.put(("snapshot_ok", worker_id, epoch, worker.handle_snapshot()))
        elif kind == "restore":
            worker.handle_restore(message[2])
            results.put(("restore_ok", worker_id, epoch, None))
        elif kind == "query":
            results.put(("query_ok", worker_id, epoch, worker.handle_query(message[2])))
        elif kind == "stop":
            # The final export rides the same gated telemetry path (the
            # delta exporter ships whatever changed since the last flush,
            # which with no prior flushes is everything).
            maybe_ship_telemetry(force=True)
            results.put(("stopped", worker_id, epoch, None))
            return
        else:  # pragma: no cover - defensive
            results.put(("error", worker_id, epoch, f"unknown message {kind!r}"))
