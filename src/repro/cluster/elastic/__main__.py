"""``python -m repro.cluster.elastic`` — the autoscaled spike demo gate.

Runs the seeded traffic-spike workload on a 1-worker cluster with the
backpressure autoscaler enabled and verdicts the whole elasticity story
in one exit code: the cluster must ride the spike up to ``--max-workers``,
hand capacity back down to ``--min-workers`` in the tail, keep every
merged synopsis fingerprint-identical to a single-process reference run,
and leave zero shm segments behind. CI's ``elastic-smoke`` job is exactly
this command plus the flight-recorder artifact it writes.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.elastic import run_spike_demo


def build_parser() -> argparse.ArgumentParser:
    """The spike-demo argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-elastic",
        description="Autoscaled traffic-spike demo with a pass/fail gate.",
    )
    parser.add_argument("--calm", type=int, default=3_000, help="calm-phase events")
    parser.add_argument("--spike", type=int, default=10_000, help="spike-phase events")
    parser.add_argument("--tail", type=int, default=8_000, help="tail-phase events")
    parser.add_argument(
        "--amplify",
        type=int,
        default=48,
        help="burst fan-out per spike event (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument("--min-workers", type=int, default=2)
    parser.add_argument("--max-workers", type=int, default=8)
    parser.add_argument(
        "--tick-every",
        type=int,
        default=8,
        help="autoscaler cadence in pump iterations (default: %(default)s)",
    )
    parser.add_argument(
        "--flight",
        default=None,
        metavar="PATH",
        help="write the coordinator flight recording (rescale + autoscale "
        "events) to this JSON-lines file",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the demo; exit 0 only when the full elasticity gate passes."""
    args = build_parser().parse_args(argv)
    outcome = run_spike_demo(
        n_calm=args.calm,
        n_spike=args.spike,
        n_tail=args.tail,
        seed=args.seed,
        amplify=args.amplify,
        min_workers=args.min_workers,
        max_workers=args.max_workers,
        tick_every=args.tick_every,
        flight_path=args.flight,
    )
    trajectory = "→".join(str(w) for w in outcome["workers_path"])
    print(f"workers        {trajectory}")
    print(f"rescales       {outcome['rescales']}")
    print(f"wall time      {outcome['seconds']:.2f}s")
    print(f"worst rescale  {outcome['rescale_latency_s'] * 1000:.0f}ms")
    print(f"in flight max  {outcome['tuples_in_flight']}")
    print(f"lag recovery   {outcome['lag_recovery_s']:.2f}s")
    print(f"fingerprints   {'MATCH' if outcome['equivalent'] else 'MISMATCH'}")
    print(
        "shm leaks      "
        + (", ".join(outcome["leaked_segments"]) or "none")
    )
    if not outcome["passed"]:
        print("elastic gate: FAILED", file=sys.stderr)
        return 1
    print("elastic gate: passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
