"""Backpressure-driven autoscaling policy (ROADMAP item 3's control loop).

Heron made backpressure a first-class, *observable* signal precisely so
that operators (human or automated) could react to it; this module is the
automated half. The coordinator feeds the autoscaler the same typed
:class:`~repro.obs.health.HealthSnapshot` stream that ``repro-obs top``
renders, and the autoscaler answers with a typed
:class:`AutoscaleDecision` the coordinator applies through
:func:`~repro.cluster.elastic.migrate.perform_rescale`.

**Signals.** All pressure signals are *workload-relative*, not wall-clock:
``spout_throttled`` counts pump rounds where the credit window was full
(workers can't keep up with the coordinator's routing rate),
``backpressure_waits`` counts full-ring stalls in the data plane, and ring
occupancy is the instantaneous fill fraction. Their deltas between ticks
are what the policy thresholds — a cluster is "pressured" when the
current tick throttled sources or stalled rings, "idle" when it did
neither and the rings are near-empty.

**Hysteresis.** Scaling is expensive (a barrier plus a full
capture/restore round), so the policy demands *consecutive* pressured
ticks before scaling up, more consecutive idle ticks before scaling down,
and a cooldown after every rescale during which all streaks reset — three
separate anti-flap guards. In the band between pressured and idle both
streaks reset, so a borderline workload holds steady.

**Targets.** Scale up doubles the worker count, scale down halves it
(clamped to the policy bounds) — the classic multiplicative-
increase/decrease that converges in O(log n) rescales. Bolts listed in
``track_parallelism`` have their task count follow the worker count, so
splitting genuinely divides their per-shard work.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.common.exceptions import ParameterError
from repro.obs.health import HealthSnapshot

from repro.cluster.elastic.migrate import RescaleReport

#: Fraction of the at-rescale lag below which the backlog counts as
#: recovered (fills RescaleReport.lag_recovery_s).
_LAG_RECOVERED_FRACTION = 0.1


@dataclass(frozen=True)
class PressurePolicy:
    """Thresholds and bounds for :class:`BackpressureAutoscaler`."""

    min_workers: int = 1
    max_workers: int = 8
    #: Consecutive pressured ticks before a scale-up fires.
    up_consecutive: int = 2
    #: Consecutive idle ticks before a scale-down fires (deliberately
    #: laxer than up: adding capacity late drops tuples on the floor of
    #: the backlog, removing it late just wastes a worker).
    down_consecutive: int = 4
    #: Ticks after any rescale during which no decision fires.
    cooldown_ticks: int = 3
    #: Ring fill fraction at/above which a tick counts as pressured.
    high_occupancy: float = 0.5
    #: Ring fill fraction at/below which a tick can count as idle.
    low_occupancy: float = 0.05
    #: Bolts whose parallelism follows the worker count (one task per
    #: worker), so rescales re-shard their synopsis state.
    track_parallelism: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.min_workers <= 0:
            raise ParameterError("min_workers must be positive")
        if self.max_workers < self.min_workers:
            raise ParameterError("max_workers must be >= min_workers")
        if self.up_consecutive <= 0 or self.down_consecutive <= 0:
            raise ParameterError("streak thresholds must be positive")
        if self.cooldown_ticks < 0:
            raise ParameterError("cooldown_ticks must be >= 0")
        if not 0.0 <= self.low_occupancy <= self.high_occupancy <= 1.0:
            raise ParameterError(
                "need 0 <= low_occupancy <= high_occupancy <= 1"
            )


@dataclass(frozen=True)
class AutoscaleDecision:
    """One autoscaler verdict for one health tick."""

    seq: int
    action: str  # "up" | "down" | "hold"
    n_workers: int
    parallelism: dict[str, int] = field(default_factory=dict)
    reason: str = ""
    pressured: bool = False
    idle: bool = False

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-ready dict (flight-recorder event payload)."""
        return asdict(self)


class BackpressureAutoscaler:
    """Turns the health stream into scale-up/-down decisions.

    Deliberately executor-agnostic (like :class:`HealthMonitor`): it
    consumes snapshots and the current cluster shape, and returns
    decisions — the coordinator's ``_maybe_autoscale`` owns applying
    them. ``tick_every`` throttles how often the coordinator consults it,
    in pump iterations, keeping the cadence workload-relative and
    deterministic rather than wall-clock.
    """

    def __init__(self, policy: PressurePolicy | None = None, tick_every: int = 50):
        if tick_every <= 0:
            raise ParameterError("tick_every must be positive")
        self.policy = policy or PressurePolicy()
        self.tick_every = tick_every
        self.decisions: list[AutoscaleDecision] = []
        self._seq = 0
        self._cooldown = 0
        self._pressure_streak = 0
        self._idle_streak = 0
        self._last_backpressure: int | None = None
        self._last_throttled: int | None = None
        # Lag-recovery watch: armed by note_applied after a scale-up,
        # resolved by the first tick whose lag is back under target.
        self._watch_report: RescaleReport | None = None
        self._watch_clock = 0.0
        self._watch_target = 0.0

    # -- decision loop -----------------------------------------------------

    def observe(
        self,
        snapshot: HealthSnapshot,
        n_workers: int,
        parallelism: dict[str, int],
    ) -> AutoscaleDecision:
        """Fold one health tick into the policy state; return the verdict."""
        policy = self.policy
        backpressure_delta = (
            snapshot.backpressure_waits - self._last_backpressure
            if self._last_backpressure is not None
            else 0
        )
        throttled_delta = (
            snapshot.spout_throttled - self._last_throttled
            if self._last_throttled is not None
            else 0
        )
        self._last_backpressure = snapshot.backpressure_waits
        self._last_throttled = snapshot.spout_throttled
        occupancy = snapshot.max_ring_occupancy()
        pressured = (
            throttled_delta > 0
            or backpressure_delta > 0
            or occupancy >= policy.high_occupancy
        )
        idle = (
            throttled_delta == 0
            and backpressure_delta == 0
            and occupancy <= policy.low_occupancy
        )
        self._resolve_lag_watch(
            snapshot,
            drained=(
                throttled_delta == 0
                and backpressure_delta == 0
                and snapshot.in_flight == 0
            ),
        )
        self._seq += 1
        action, target, reason = "hold", n_workers, "steady"
        if self._cooldown > 0:
            self._cooldown -= 1
            self._pressure_streak = 0
            self._idle_streak = 0
            reason = f"cooldown ({self._cooldown} ticks left)"
        elif pressured:
            self._pressure_streak += 1
            self._idle_streak = 0
            if self._pressure_streak >= policy.up_consecutive:
                if n_workers < policy.max_workers:
                    action = "up"
                    target = min(policy.max_workers, n_workers * 2)
                    reason = (
                        f"pressured {self._pressure_streak} ticks "
                        f"(throttled +{throttled_delta}, "
                        f"backpressure +{backpressure_delta}, "
                        f"occupancy {occupancy:.0%})"
                    )
                else:
                    reason = "pressured but at max_workers"
            else:
                reason = (
                    f"pressure streak {self._pressure_streak}"
                    f"/{policy.up_consecutive}"
                )
        elif idle:
            self._idle_streak += 1
            self._pressure_streak = 0
            if self._idle_streak >= policy.down_consecutive:
                if n_workers > policy.min_workers:
                    action = "down"
                    target = max(policy.min_workers, n_workers // 2)
                    reason = f"idle {self._idle_streak} ticks"
                else:
                    reason = "idle but at min_workers"
            else:
                reason = (
                    f"idle streak {self._idle_streak}"
                    f"/{policy.down_consecutive}"
                )
        else:
            # The hysteresis band: neither pressured nor idle. Both
            # streaks reset so borderline load cannot creep into a flap.
            self._pressure_streak = 0
            self._idle_streak = 0
        new_parallelism = dict(parallelism)
        if action != "hold":
            for name in policy.track_parallelism:
                if name in new_parallelism:
                    new_parallelism[name] = target
        decision = AutoscaleDecision(
            seq=self._seq,
            action=action,
            n_workers=target,
            parallelism=new_parallelism if action != "hold" else {},
            reason=reason,
            pressured=pressured,
            idle=idle,
        )
        self.decisions.append(decision)
        return decision

    def note_applied(
        self, decision: AutoscaleDecision, report: RescaleReport, clock: float
    ) -> None:
        """A decision was carried out: arm cooldown and the lag watch."""
        self._cooldown = self.policy.cooldown_ticks
        self._pressure_streak = 0
        self._idle_streak = 0
        if decision.action == "up":
            self._watch_report = report
            self._watch_clock = clock
            self._watch_target = 0.0  # set from the next tick's peak lag

    def _resolve_lag_watch(
        self, snapshot: HealthSnapshot, drained: bool
    ) -> None:
        """Stamp ``lag_recovery_s`` on the watched scale-up's report.

        Recovered means the watermark backlog fell back under a fraction
        of its post-rescale peak — or the cluster is provably *drained*
        (nothing in flight, nothing throttled or stalled this tick),
        which covers operators whose watermark froze because the workload
        phase stopped feeding them.
        """
        if self._watch_report is None:
            return
        lag = snapshot.max_lag()
        if lag <= self._watch_target or drained:
            self._watch_report.lag_recovery_s = max(
                0.0, snapshot.clock - self._watch_clock
            )
            self._watch_report = None
            return
        if self._watch_target == 0.0:
            # First post-rescale look at the backlog: that is the peak
            # the recovery clock measures against.
            self._watch_target = lag * _LAG_RECOVERED_FRACTION

    # -- introspection -----------------------------------------------------

    @property
    def last_decision(self) -> AutoscaleDecision | None:
        """The most recent verdict (None before the first tick)."""
        return self.decisions[-1] if self.decisions else None

    def describe(self) -> dict[str, Any]:
        """JSON-ready policy-loop state for health snapshots and the TUI."""
        last = self.last_decision
        return {
            "ticks": self._seq,
            "cooldown_remaining": self._cooldown,
            "pressure_streak": self._pressure_streak,
            "idle_streak": self._idle_streak,
            "min_workers": self.policy.min_workers,
            "max_workers": self.policy.max_workers,
            "last_decision": None if last is None else last.to_dict(),
        }
