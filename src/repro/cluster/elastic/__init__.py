"""Elastic runtime: live rescaling of a running cluster topology.

Table 2's systems treat topology parallelism as fixed at submission time
— resizing Storm/Heron means kill, resubmit, replay. This subpackage
makes the :class:`~repro.cluster.coordinator.ClusterExecutor` elastic
instead, built from three pieces the repo already trusts:

* :mod:`repro.cluster.elastic.migrate` — the rescale protocol: quiesce at
  a :func:`~repro.cluster.elastic.migrate.migration_barrier`, capture
  every shard, re-shard resized bolts with ``merge`` + ``split``
  (falling back to drain-and-restart for synopses that cannot split),
  rewire rings/plan/workers under an epoch fence, restore, and
  re-baseline the checkpoint at the *current* offsets — no replay.
* :mod:`repro.cluster.elastic.autoscaler` — the policy loop: consumes
  the typed health stream (throttle/backpressure deltas, ring
  occupancy), answers with typed decisions under hysteresis + cooldown.
* The ``split`` contract itself lives on
  :class:`~repro.common.mergeable.SynopsisBase`, property-tested
  registry-wide: ``merge(split(s, n)...) ≡ s`` bit-identically.
"""

from repro.cluster.elastic.autoscaler import (
    AutoscaleDecision,
    BackpressureAutoscaler,
    PressurePolicy,
)
from repro.cluster.elastic.migrate import (
    RescaleReport,
    migration_barrier,
    perform_rescale,
    reshard_states,
)

__all__ = [
    "AutoscaleDecision",
    "BackpressureAutoscaler",
    "PressurePolicy",
    "RescaleReport",
    "migration_barrier",
    "perform_rescale",
    "reshard_states",
]
