"""Live state migration: rescale a running cluster without replay.

The rescale protocol is a checkpoint-restore specialised to *resizing*.
Heron's and Storm's answer to a hot topology that outgrows its container
plan is "kill it, resubmit with more parallelism, replay from the source"
— minutes of downtime and a full re-read of retained history. Here the
coordinator already owns everything a faster answer needs: a quiescence
barrier (credit-based drain), per-shard state capture (``stateship``
snapshots), an epoch fence that makes old-incarnation traffic inert, and
— new in this subsystem — a ``split`` contract on every mergeable synopsis
(:meth:`repro.common.mergeable.SynopsisBase.split`) that is the exact
inverse of the merge the serving layer already trusts.

The protocol, in barrier order:

1. **Barrier** — drain every outstanding envelope (the same quiescence
   predicate checkpoints use). At the barrier the cluster state *is* a
   consistent cut: nothing is in flight, every buffer is empty.
2. **Capture** — snapshot every ``(bolt, task)`` shard on every worker,
   exactly the checkpoint capture path.
3. **Re-shard** — for each bolt whose parallelism changes, fold its task
   partials with ``merge`` and deal them back out with ``split(new_p)``.
   Synopses without a mathematically valid split
   (:class:`~repro.common.exceptions.SplitUnsupported`) fall back to
   *drain-and-restart*: task 0 parks the fully merged state, sibling
   tasks start factory-fresh — correct for anything mergeable, since
   partitioned accumulation + merge-on-query is the library's core
   equivalence. Bolts with unchanged parallelism move their payloads
   byte-for-byte (any state shape, synopsis or not).
4. **Rewire** — stop the old worker set cleanly (sealing each telemetry
   incarnation), re-plan the topology over the new worker count,
   reset retained shm rings / destroy retired ones / create fresh ones
   for growth, bump the epoch, and fork the new worker set.
5. **Restore** — deal the re-sharded payloads by the new plan and restore
   each worker, exactly the rollback path. Under exactly-once the restore
   set becomes the new checkpoint baseline with the *current* spout
   offsets, so the sources never rewind: no replay, no duplicates, and a
   later crash rolls back to post-rescale state.

Everything that touches captured state runs inside
:func:`migration_barrier` — streamlint's SL016 rule enforces that
discipline statically.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator

import queue as queue_mod

from repro.common.exceptions import (
    ExecutionError,
    ParameterError,
    SplitUnsupported,
)
from repro.common.mergeable import SynopsisBase
from repro.core import stateship

from repro.cluster import columnar
from repro.cluster.plan import plan_topology
from repro.cluster.shm import ShmChannel

#: Re-shard strategies recorded per resized bolt (surfaced in the
#: rescale report, the flight recorder and ``repro-obs top``).
STRATEGY_SPLIT = "split"
STRATEGY_DRAIN_RESTART = "drain_restart"
STRATEGY_STATELESS = "stateless"


@dataclass
class RescaleReport:
    """One completed rescale, timed phase by phase.

    ``lag_recovery_s`` is filled in *after* the fact by the autoscaler
    (the first post-rescale health tick whose lag is back under target);
    it stays None for manual rescales nobody is watching.
    """

    seq: int
    reason: str
    trigger: str  # "manual" | "autoscale_up" | "autoscale_down"
    from_workers: int
    to_workers: int
    parallelism_before: dict[str, int] = field(default_factory=dict)
    parallelism_after: dict[str, int] = field(default_factory=dict)
    #: bolt -> STRATEGY_* for every bolt whose parallelism changed.
    strategies: dict[str, str] = field(default_factory=dict)
    in_flight_at_request: int = 0
    barrier_s: float = 0.0
    capture_s: float = 0.0
    restore_s: float = 0.0
    total_s: float = 0.0
    moved_state_bytes: int = 0
    epoch: int = 0
    lag_recovery_s: float | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-ready dict (flight-recorder event payload)."""
        return asdict(self)


@contextmanager
def migration_barrier(executor: Any) -> Iterator[None]:
    """Quiesce the cluster and hold it quiet for the body of the ``with``.

    Entering drains every outstanding envelope (the checkpoint barrier);
    once it yields, no tuple is in flight, every routing buffer is empty
    and every worker is idle, so captured state forms a consistent cut.
    If a loss surfaced while draining the rescale must not proceed on a
    torn cut — the barrier raises and the pump's recovery path runs
    instead.

    The body must not feed spouts or flush buffers; it may stop, spawn
    and message workers. All migration state surgery (``merge``,
    ``split``, ``restore``) belongs inside this block — SL016 checks
    exactly that.
    """
    executor._drain_outstanding()
    if executor._recover_requested:
        raise ExecutionError(
            "cluster is recovering; rescale aborted before the barrier"
        )
    yield


def reshard_states(
    topology: Any,
    states: dict[tuple[str, int], bytes | None],
    new_parallelism: dict[str, int],
) -> tuple[dict[tuple[str, int], bytes | None], dict[str, str]]:
    """Re-deal captured shard payloads onto the new task sets.

    *states* maps every current ``(bolt, task)`` to its stateship payload
    (None for stateless shards). Bolts absent from *new_parallelism* pass
    through untouched; resized bolts are merged and re-split (or parked
    on task 0 when the synopsis cannot split). Returns the new payload
    map plus the strategy chosen per resized bolt.
    """
    out = dict(states)
    strategies: dict[str, str] = {}
    for name, new_p in new_parallelism.items():
        old_p = topology.components[name].parallelism
        payloads = [out.pop((name, task), None) for task in range(old_p)]
        partials = [
            stateship.restore(payload)["state"]
            for payload in payloads
            if payload is not None
        ]
        partials = [state for state in partials if state is not None]
        if not partials:
            # Stateless (or never-snapshotted) bolt: every new task
            # starts fresh, which is what its old tasks were.
            for task in range(new_p):
                out[(name, task)] = None
            strategies[name] = STRATEGY_STATELESS
            continue
        if not all(isinstance(state, SynopsisBase) for state in partials):
            raise ExecutionError(
                f"cannot rescale bolt {name!r}: its snapshot state is not "
                "a mergeable synopsis (change worker count instead, which "
                "moves shards without re-sharding them)"
            )
        merged = partials[0]
        for partial in partials[1:]:
            merged.merge(partial)
        try:
            shards: list[SynopsisBase | None] = list(merged.split(new_p))
            strategies[name] = STRATEGY_SPLIT
        except SplitUnsupported:
            # Drain-and-restart: the merged history parks on task 0 and
            # the siblings accumulate fresh — merge-on-query folds both
            # back together, so queries stay exact for anything mergeable.
            shards = [merged] + [None] * (new_p - 1)
            strategies[name] = STRATEGY_DRAIN_RESTART
        for task, shard in enumerate(shards):
            out[(name, task)] = (
                None if shard is None else stateship.capture({"state": shard})
            )
    return out, strategies


def _capture_all(executor: Any) -> dict[tuple[str, int], bytes | None]:
    """Snapshot every shard on every worker (the checkpoint capture)."""
    for worker_id in range(executor.n_workers):
        executor._inboxes[worker_id].put(("snapshot", executor.epoch))
    states: dict[tuple[str, int], bytes | None] = {}
    for payload in executor._await_all("snapshot_ok").values():
        states.update(payload)
    return states


def _stop_workers(executor: Any) -> None:
    """Stop the old worker set cleanly and seal its telemetry streams.

    Mirrors :meth:`ClusterExecutor.close` minus the channel teardown:
    final telemetry flushes are absorbed, then every incarnation is
    sealed so the respawned set's fresh counters stack on the right
    base. A worker that dies mid-stop is simply dropped — its state was
    captured at the barrier, so nothing is lost.
    """
    alive = [
        w for w in range(executor.n_workers) if executor._processes[w].is_alive()
    ]
    for worker_id in alive:
        executor._inboxes[worker_id].put(("stop", executor.epoch))
    pending = set(alive)
    deadline = time.perf_counter() + executor.reply_timeout
    while pending and time.perf_counter() < deadline:
        executor._discard_outbox_frames()
        try:
            kind, worker_id, __, payload = executor._results_get(0.1)
        except queue_mod.Empty:
            pending = {w for w in pending if executor._processes[w].is_alive()}
            continue
        if kind == "telemetry":
            executor._absorb_telemetry(worker_id, payload)
        elif kind == "stopped":
            pending.discard(worker_id)
    for process in executor._processes:
        process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - defensive
            process.terminate()
            process.join(timeout=2.0)
    if executor._absorber is not None:
        for worker_id in range(executor.n_workers):
            executor._absorber.seal_worker(worker_id)


def _rewire(
    executor: Any, new_workers: int, new_parallelism: dict[str, int]
) -> None:
    """Re-plan, re-ring and respawn onto the new cluster shape.

    Retained workers' shm rings are reset (any residue is dead epoch
    traffic), retired workers' segments are destroyed *now* so
    ``leaked_segments()`` stays clean, and grown workers get fresh rings
    — which must exist before the forks, since children inherit the
    mappings. The epoch bump fences any straggler traffic from the old
    incarnation.
    """
    old_workers = executor.n_workers
    for name, parallelism in new_parallelism.items():
        executor.topology.components[name].parallelism = parallelism
    # The credit window bounds *frames* in flight, and every spout batch
    # fans into ~one frame per destination worker — so the window is
    # per-worker capacity in disguise. Scale it with the worker count,
    # or a grown cluster throttles its sources on routing fan-out alone
    # and the autoscaler reads its own scale-up as sustained pressure.
    executor.max_outstanding = max(
        1, round(executor.max_outstanding * new_workers / old_workers)
    )
    if executor.transport == "shm":
        for worker_id in range(min(old_workers, new_workers)):
            executor._channels[worker_id].reset()
        for worker_id in range(new_workers, old_workers):
            executor._channels[worker_id].destroy()
        del executor._channels[new_workers:]
        for worker_id in range(old_workers, new_workers):
            executor._channels.append(
                ShmChannel(worker_id, executor.ring_capacity)
            )
    for inbox in executor._inboxes:
        inbox.cancel_join_thread()
    executor._inboxes = []
    executor._processes = []
    executor._results = [executor._mp.Queue() for __ in range(new_workers)]
    executor._results_rr = 0
    executor.n_workers = new_workers
    executor.plan = plan_topology(executor.topology, new_workers)
    executor._comp_ids, executor._comp_names = columnar.component_table(
        executor.plan.components
    )
    executor._buffers = [[] for __ in range(new_workers)]
    executor.epoch += 1
    executor._outstanding = 0
    for worker_id in range(new_workers):
        executor._spawn_worker(worker_id)


def _restore_all(
    executor: Any, states: dict[tuple[str, int], bytes | None]
) -> tuple[dict[int, dict[tuple[str, int], bytes | None]], int]:
    """Deal payloads by the new plan and restore every worker."""
    per_worker: dict[int, dict[tuple[str, int], bytes | None]] = {
        worker_id: {} for worker_id in range(executor.n_workers)
    }
    moved = 0
    for (name, task), payload in states.items():
        per_worker[executor.plan.worker_of(name, task)][(name, task)] = payload
        if payload is not None:
            moved += len(payload)
    for worker_id in range(executor.n_workers):
        executor._inboxes[worker_id].put(
            ("restore", executor.epoch, per_worker[worker_id])
        )
    executor._await_all("restore_ok")
    return per_worker, moved


def perform_rescale(
    executor: Any,
    n_workers: int | None = None,
    parallelism: dict[str, int] | None = None,
    reason: str = "manual",
    trigger: str = "manual",
) -> RescaleReport | None:
    """Rescale *executor* to *n_workers* / per-bolt *parallelism*, live.

    Must run on the thread driving the worker queues (the pump loop, or
    the caller under the control lock when no pump is active) — use
    :meth:`ClusterExecutor.rescale` from other threads. Returns the
    timed :class:`RescaleReport`, or None when the request is a no-op.
    Raises :class:`ExecutionError` if the cluster is mid-recovery (the
    caller retries after recovery completes).
    """
    new_workers = executor.n_workers if n_workers is None else n_workers
    if new_workers <= 0:
        raise ParameterError("n_workers must be positive")
    requested = dict(parallelism or {})
    for name, new_p in requested.items():
        comp = executor.topology.components.get(name)
        if comp is None or comp.kind != "bolt":
            raise ParameterError(f"no bolt named {name!r}")
        if new_p <= 0:
            raise ParameterError(f"parallelism for {name!r} must be positive")
    changed = {
        name: new_p
        for name, new_p in requested.items()
        if executor.topology.components[name].parallelism != new_p
    }
    if new_workers == executor.n_workers and not changed:
        return None
    executor._ensure_started()
    report = RescaleReport(
        seq=len(executor.rescale_reports) + 1,
        reason=reason,
        trigger=trigger,
        from_workers=executor.n_workers,
        to_workers=new_workers,
        parallelism_before={
            comp.name: comp.parallelism
            for comp in executor.topology.components.values()
            if comp.kind == "bolt"
        },
        in_flight_at_request=executor._outstanding,
    )
    started = time.perf_counter()
    with migration_barrier(executor):
        report.barrier_s = time.perf_counter() - started
        mark = time.perf_counter()
        states = _capture_all(executor)
        states, report.strategies = reshard_states(
            executor.topology, states, changed
        )
        report.capture_s = time.perf_counter() - mark
        _stop_workers(executor)
        _rewire(executor, new_workers, changed)
        mark = time.perf_counter()
        per_worker, report.moved_state_bytes = _restore_all(executor, states)
        report.restore_s = time.perf_counter() - mark
        if executor.semantics == "exactly_once":
            # Re-baseline: the restored cut is the new checkpoint, taken
            # at the *current* offsets — the sources never rewind, so the
            # rescale replays nothing, and a later crash rolls back to
            # post-rescale state.
            executor._checkpoint = {
                "workers": per_worker,
                "offsets": {
                    name: [spout.offset for spout in partitions]
                    for name, partitions in executor._spouts.items()
                },
            }
            executor._pulls_since_checkpoint = 0
    report.parallelism_after = {
        comp.name: comp.parallelism
        for comp in executor.topology.components.values()
        if comp.kind == "bolt"
    }
    report.epoch = executor.epoch
    report.total_s = time.perf_counter() - started
    executor.rescale_reports.append(report)
    executor._event("rescale")
    if executor.flight is not None:
        executor.flight.record_event("rescale", report.to_dict())
    if executor._health is not None:
        executor._health.reconfigure(
            executor.n_workers, executor._operator_owners()
        )
        executor._publish_health(reason="rescale")
    return report
