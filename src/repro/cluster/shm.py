"""Shared-memory SPSC ring buffers: the cluster's zero-copy data plane.

Each worker gets a :class:`ShmChannel` — two single-producer /
single-consumer byte rings over one ``multiprocessing.shared_memory``
segment apiece:

* the **inbox** ring (coordinator → worker) carries routed tuple-batch
  frames (:mod:`repro.cluster.columnar`);
* the **outbox** ring (worker → coordinator) carries the worker's
  remote re-route traffic back for star-transport forwarding.

The coordinator creates every segment before forking workers, so the
children inherit the mapped buffers directly — no name handshake, no
pickling of handles. Control traffic (doorbells, acks, checkpoint
barriers, crash/respawn signals) stays on ``multiprocessing`` queues;
only bulk tuple data rides the rings.

**Ring layout.** A 16-byte header holds two little-endian ``uint64``
counters — ``head`` (bytes ever written) and ``tail`` (bytes ever read),
both monotonic; ``head - tail`` is the used byte count and indices wrap
modulo the capacity. Frames are ``[u32 length][payload]`` and may wrap
around the end of the data area (reads/writes split into two slices).
The producer writes the payload *first* and publishes ``head`` last, so
a reader can never observe a torn frame: a crash mid-write leaves the
partial payload unpublished and therefore invisible — recovery simply
:meth:`SpscRing.reset`\\ s the ring. Ring-full is surfaced to the caller
(``try_push`` returns False) so the transport layer can apply its
blocking-with-deadline backpressure policy and export the stall via
``repro.obs`` gauges.

**Lifecycle.** Segments are owned by the creating (coordinator) process:
:meth:`SpscRing.destroy` drops the numpy views, closes the mapping and
unlinks the segment (idempotently). An ``atexit`` safety net destroys
any ring the owner forgot, so even an aborted run leaves ``/dev/shm``
clean; :func:`leaked_segments` is the audit used by tests and the CLI.
Ring handles are process-local plumbing, never operator state — they are
registered unshippable with :mod:`repro.core.stateship`, so a bolt that
accidentally captures one fails loudly at checkpoint time instead of
shipping a dangling pointer.
"""

from __future__ import annotations

import atexit
import itertools
import os
import struct
from typing import Any

import numpy as np

from repro.common.exceptions import ExecutionError, ParameterError
from repro.common.serialization import register_unshippable

try:  # pragma: no cover - exercised implicitly on POSIX
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - non-POSIX fallback probing
    _shared_memory = None

#: Prefix of every segment this module creates (leak audits key on it).
SEGMENT_PREFIX = "repro_shm"

_HEADER_BYTES = 16
_LEN = struct.Struct("<I")
_ring_counter = itertools.count(1)

#: Rings created (and not yet destroyed) by this process, for the
#: atexit safety net. Keyed by segment name.
_live_rings: dict[str, "SpscRing"] = {}


def shm_available() -> bool:
    """True when POSIX shared memory is usable on this platform."""
    return _shared_memory is not None


def _segment_name(suffix: str) -> str:
    return f"{SEGMENT_PREFIX}_{os.getpid()}_{next(_ring_counter)}_{suffix}"


def leaked_segments(names: list[str] | None = None) -> list[str]:
    """Segments still present in ``/dev/shm``.

    With *names*, checks exactly those segments; otherwise reports every
    segment created by this process (by pid-stamped prefix).
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    if names is not None:
        return [n for n in names if os.path.exists(os.path.join(shm_dir, n))]
    mine = f"{SEGMENT_PREFIX}_{os.getpid()}_"
    return sorted(n for n in os.listdir(shm_dir) if n.startswith(mine))


@atexit.register
def _destroy_leftover_rings() -> None:  # pragma: no cover - exit path
    for ring in list(_live_rings.values()):
        ring.destroy()


class SpscRing:
    """A single-producer/single-consumer byte ring in shared memory."""

    def __init__(self, capacity: int = 1 << 20, suffix: str = "ring"):
        if not shm_available():  # pragma: no cover - non-POSIX
            raise ExecutionError("shared memory is unavailable on this platform")
        if capacity <= _LEN.size:
            raise ParameterError("ring capacity must exceed the frame header")
        self.capacity = capacity
        self.name = _segment_name(suffix)
        self._owner_pid = os.getpid()
        self._shm = _shared_memory.SharedMemory(
            name=self.name, create=True, size=_HEADER_BYTES + capacity
        )
        self._idx = np.frombuffer(self._shm.buf, dtype=np.uint64, count=2)
        self._data = np.frombuffer(
            self._shm.buf, dtype=np.uint8, offset=_HEADER_BYTES
        )
        self._idx[:] = 0
        self._destroyed = False
        _live_rings[self.name] = self  # streamlint: disable=SL007 - atexit registry

    # -- byte plumbing -----------------------------------------------------

    def _write(self, at: int, data: bytes) -> None:
        offset = at % self.capacity
        n = len(data)
        arr = np.frombuffer(data, dtype=np.uint8)
        end = offset + n
        if end <= self.capacity:
            self._data[offset:end] = arr
        else:
            split = self.capacity - offset
            self._data[offset:] = arr[:split]
            self._data[: n - split] = arr[split:]

    def _read(self, at: int, n: int) -> bytes:
        offset = at % self.capacity
        end = offset + n
        if end <= self.capacity:
            return self._data[offset:end].tobytes()
        split = self.capacity - offset
        return self._data[offset:].tobytes() + self._data[: end - self.capacity].tobytes()

    # -- SPSC protocol -----------------------------------------------------

    def used_bytes(self) -> int:
        """Bytes currently enqueued (head - tail)."""
        return int(self._idx[0]) - int(self._idx[1])

    def free_bytes(self) -> int:
        """Bytes of remaining ring capacity."""
        return self.capacity - self.used_bytes()

    def try_push(self, payload: bytes) -> bool:
        """Append one frame; False (without side effects) when full."""
        need = _LEN.size + len(payload)
        if need > self.capacity:
            raise ParameterError(
                f"frame of {len(payload)} bytes exceeds ring capacity "
                f"{self.capacity}"
            )
        head = int(self._idx[0])
        if self.capacity - (head - int(self._idx[1])) < need:
            return False
        self._write(head, _LEN.pack(len(payload)))
        self._write(head + _LEN.size, payload)
        # Publish last: a reader either sees the whole frame or nothing.
        self._idx[0] = head + need
        return True

    def try_pop(self) -> bytes | None:
        """Remove and return the oldest frame, or None when empty."""
        head = int(self._idx[0])
        tail = int(self._idx[1])
        if head == tail:
            return None
        (n,) = _LEN.unpack(self._read(tail, _LEN.size))
        payload = self._read(tail + _LEN.size, n)
        self._idx[1] = tail + _LEN.size + n
        return payload

    def reset(self) -> None:
        """Discard every enqueued frame (crash recovery; both sides idle)."""
        self._idx[:] = 0

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (does not remove the segment)."""
        if self._shm is None:
            return
        self._idx = None
        self._data = None
        self._shm.close()
        self._shm = None
        _live_rings.pop(self.name, None)  # streamlint: disable=SL007 - atexit registry

    def destroy(self) -> None:
        """Close and unlink the segment (owner side; idempotent)."""
        if self._destroyed:
            return
        self._destroyed = True
        if self._shm is None:
            return
        shm = self._shm
        self._idx = None
        self._data = None
        self._shm = None
        _live_rings.pop(self.name, None)  # streamlint: disable=SL007 - atexit registry
        if os.getpid() == self._owner_pid:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        shm.close()

    def __getstate__(self):
        from repro.common.exceptions import SerializationError

        raise SerializationError(
            "SpscRing handles are process-local transport state and cannot "
            "be pickled or shipped; workers inherit rings through fork"
        )


class ShmChannel:
    """The per-worker ring pair (inbox + outbox) plus its audit names."""

    def __init__(self, worker_id: int, capacity: int):
        self.worker_id = worker_id
        self.inbox = SpscRing(capacity, suffix=f"w{worker_id}_in")
        self.outbox = SpscRing(capacity, suffix=f"w{worker_id}_out")

    @property
    def segment_names(self) -> list[str]:
        return [self.inbox.name, self.outbox.name]

    def reset(self) -> None:
        """Discard both rings' contents (crash recovery, worker dead)."""
        self.inbox.reset()
        self.outbox.reset()

    def destroy(self) -> None:
        """Unlink both segments (owner side; idempotent)."""
        self.inbox.destroy()
        self.outbox.destroy()

    def __getstate__(self):
        from repro.common.exceptions import SerializationError

        raise SerializationError(
            "ShmChannel handles are process-local transport state and "
            "cannot be pickled or shipped; workers inherit channels "
            "through fork"
        )


def _refuse_to_ship(value: Any) -> Any:
    raise_type = type(value).__name__
    from repro.common.exceptions import SerializationError

    raise SerializationError(
        f"{raise_type} is process-local shared-memory transport state and "
        "is excluded from shipped operator state; keep ring handles out of "
        "bolt snapshots"
    )


# Transport handles must never ride a checkpoint or a merge-on-query
# payload: stateship refuses them loudly instead of shipping a pointer.
register_unshippable(SpscRing, _refuse_to_ship)
register_unshippable(ShmChannel, _refuse_to_ship)
