"""``python -m repro.cluster`` — see :mod:`repro.cluster.cli`."""

from repro.cluster.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
