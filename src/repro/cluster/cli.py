"""``repro-cluster`` / ``python -m repro.cluster`` entry point.

Runs the obs demo topology (words → split → keyed count + sketch) across
N worker processes, optionally crashing one mid-run, and prints:

* the shard plan (which worker owns which task),
* the run summary (throughput, replays, checkpoints, recoveries),
* the merged top-k from the sketch bolt's shard partials (merge-on-query),
* a cross-check against the single-process ``LocalExecutor`` — the merged
  Count-Min/HLL/Space-Saving fingerprints must match bit-for-bit,
* a transport summary (bytes over shm rings vs pickled over queues) and a
  ``/dev/shm`` leak audit — any segment this process failed to unlink
  makes the run exit non-zero.

CI's ``cluster-smoke`` and ``shm-smoke`` jobs run exactly this with two
workers and an injected crash under exactly-once semantics: the demo
recovering, still fingerprint-matching the sequential run, and leaving
``/dev/shm`` clean is the subsystem's end-to-end proof.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.fingerprint import state_fingerprint
from repro.cluster.coordinator import ClusterExecutor
from repro.cluster.shm import leaked_segments
from repro.obs.context import Observability
from repro.obs.demo import build_demo_topology, demo_records
from repro.platform.executor import LocalExecutor
from repro.platform.faults import FaultInjector


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-cluster`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Run the demo topology across N worker processes.",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes (default: %(default)s)",
    )
    parser.add_argument(
        "--records",
        type=int,
        default=2_000,
        help="source sentences to stream (default: %(default)s)",
    )
    parser.add_argument(
        "--semantics",
        choices=("at_most_once", "at_least_once", "exactly_once"),
        default="exactly_once",
        help="delivery semantics (default: %(default)s)",
    )
    parser.add_argument(
        "--crash-worker",
        type=int,
        default=None,
        metavar="W",
        help="inject a one-shot crash into worker W mid-run",
    )
    parser.add_argument(
        "--crash-after",
        type=int,
        default=400,
        help="tuples processed on the crashing worker before it dies "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=500,
        help="spout tuples between checkpoints (default: %(default)s)",
    )
    parser.add_argument(
        "--transport",
        choices=("shm", "queue"),
        default="shm",
        help="data-plane transport (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload seed (default: %(default)s)"
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the single-process fingerprint cross-check",
    )
    parser.add_argument(
        "--telemetry-interval",
        type=float,
        default=None,
        metavar="S",
        help="worker telemetry flush period in seconds (default: the obs "
        "plane default; 0 disables live telemetry)",
    )
    parser.add_argument(
        "--flight",
        metavar="PATH",
        default=None,
        help="dump the flight recorder (JSON lines) here on worker crash "
        "or fingerprint mismatch",
    )
    parser.add_argument(
        "--health-log",
        metavar="PATH",
        default=None,
        help="append health snapshots (JSON lines) here as the run "
        "progresses — `repro-obs top --snapshots PATH` renders them",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the demo; exit non-zero when the cluster/sequential states differ."""
    args = build_parser().parse_args(argv)
    records = demo_records(args.records, args.seed)
    obs = Observability.create(sample_rate=0.05, seed=args.seed)
    topology = build_demo_topology(records)

    worker_faults = None
    if args.crash_worker is not None:
        worker_faults = {
            args.crash_worker: FaultInjector(crash_after=args.crash_after, seed=args.seed)
        }

    executor = ClusterExecutor(
        topology,
        n_workers=args.workers,
        semantics=args.semantics,
        checkpoint_interval=args.checkpoint_interval,
        worker_faults=worker_faults,
        obs=obs,
        transport=args.transport,
        telemetry_interval=args.telemetry_interval,
        flight_path=args.flight,
        health_log=args.health_log,
    )
    print(executor.plan.describe())
    with executor:
        metrics = executor.run()
        merged = executor.merged_synopsis("sketch")
        stats = dict(executor.transport_stats)
    # Post-close snapshot: the workers' final forced flushes have been
    # absorbed, so watermarks and totals are settled.
    health = executor.last_health
    summary = metrics.summary()
    print(
        f"\nrun: {summary['throughput_tps']} tuples/s, "
        f"replays={summary['replays']} checkpoints={summary['checkpoints']} "
        f"recoveries={summary['recoveries']}"
    )
    print(
        f"transport: {stats['transport']} — "
        f"{stats['data_bytes_shm']} B over shm rings "
        f"({stats['data_frames']} frames), "
        f"{stats['data_bytes_queue']} B pickled over queues, "
        f"{stats['backpressure_waits']} backpressure waits"
    )
    if health is not None:
        flushes = sum(w.flushes for w in health.workers)
        print(
            f"telemetry: {flushes} flushes absorbed "
            f"(interval {executor.telemetry_interval}s), "
            f"max operator lag {health.max_lag():.0f}, "
            f"peak ring occupancy {health.max_ring_occupancy() * 100:.1f}%"
        )

    # Teardown audit: every shared-memory segment this process created
    # must be unlinked by now — a leak here is a bug even when the run
    # itself succeeded (CI's shm-smoke job fails on it).
    leaked = leaked_segments()
    if leaked:
        print(f"LEAKED shm segments: {leaked}")
        return 1
    print(f"merged uniques ≈ {merged['uniques'].estimate():.0f}")
    print("merged top-5:", [k for k, __ in merged["topk"].top(5)])

    if args.no_verify:
        return 0

    # Cross-check: the merged shard partials must equal the single-process
    # run's state bit-for-bit (same topology, same records).
    local = LocalExecutor(build_demo_topology(records), semantics="at_most_once")
    local.run()
    reference = local.bolt_instances("sketch")[0].synopsis
    matches = state_fingerprint(merged) == state_fingerprint(reference)
    print(f"fingerprint vs single-process: {'MATCH' if matches else 'MISMATCH'}")
    if not matches and executor.flight is not None and args.flight:
        # The other dump trigger besides a crash: wrong answers deserve a
        # post-mortem artifact too.
        executor.flight.record_event("mismatch", {"bolt": "sketch"})
        executor.flight.dump(args.flight, reason="mismatch")
        print(f"flight recorder dumped to {args.flight}")
    return 0 if matches else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
