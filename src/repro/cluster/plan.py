"""Shard planning: map (bolt, task) pairs onto worker processes.

Mirrors Storm's scheduler assigning executors to worker slots (and Samza's
partition→container mapping): every bolt contributes ``parallelism`` tasks,
and tasks are dealt round-robin across workers so each worker carries a
near-equal share of every component — the layout that makes strong scaling
work when one component dominates the cost.

The plan is pure data and deterministic: the same topology and worker
count always produce the same assignment, so a respawned worker rebuilds
exactly the shard set its predecessor owned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.exceptions import ParameterError
from repro.platform.topology import Topology


@dataclass(frozen=True)
class ShardPlan:
    """An immutable task→worker assignment for one topology run."""

    n_workers: int
    assignments: dict[tuple[str, int], int] = field(default_factory=dict)

    def worker_of(self, component: str, task: int) -> int:
        """The worker owning shard ``(component, task)``."""
        try:
            return self.assignments[(component, task)]
        except KeyError:
            raise ParameterError(f"no shard ({component!r}, {task})") from None

    def tasks_of(self, worker: int) -> list[tuple[str, int]]:
        """Every ``(component, task)`` shard assigned to *worker*, in
        deterministic (component, task) order."""
        return sorted(key for key, w in self.assignments.items() if w == worker)

    @property
    def components(self) -> list[str]:
        """Sharded component names, sorted."""
        return sorted({name for name, __ in self.assignments})

    def describe(self) -> str:
        """Human-readable worker→shards table (the CLI's plan view)."""
        lines = [f"shard plan: {len(self.assignments)} tasks on {self.n_workers} workers"]
        for worker in range(self.n_workers):
            shards = ", ".join(f"{c}[{t}]" for c, t in self.tasks_of(worker))
            lines.append(f"  worker {worker}: {shards or '(idle)'}")
        return "\n".join(lines)


def plan_topology(topology: Topology, n_workers: int) -> ShardPlan:
    """Deal every bolt task across *n_workers* round-robin.

    Tasks are enumerated in topology declaration order, task index minor,
    and dealt onto workers in turn — so every component's tasks spread
    across workers instead of clumping (bolt parallelism 4 on 4 workers
    puts one task on each).
    """
    if n_workers <= 0:
        raise ParameterError("worker count must be positive")
    assignments: dict[tuple[str, int], int] = {}
    slot = 0
    for comp in topology.components.values():
        if comp.kind != "bolt":
            continue
        for task in range(comp.parallelism):
            assignments[(comp.name, task)] = slot % n_workers
            slot += 1
    return ShardPlan(n_workers=n_workers, assignments=assignments)
